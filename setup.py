"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments where the ``wheel`` package is unavailable
(``pip install -e . --no-build-isolation`` falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
