#!/usr/bin/env python3
"""Reproduce the paper's comparative study on UNSW-NB15 (Table V).

Pelican is compared against the eight baselines of Table V — AdaBoost,
SVM (RBF), HAST-IDS, CNN, LSTM, MLP, Random Forest and LuNet — on synthetic
UNSW-NB15 traffic, reporting DR / ACC / FAR for every model next to the
paper's published numbers.

Run with::

    python examples/unswnb15_comparative_study.py                      # all nine models
    python examples/unswnb15_comparative_study.py --models adaboost mlp pelican
    python examples/unswnb15_comparative_study.py --scale smoke        # quick plumbing run
"""

import argparse

from repro.core import get_scale
from repro.experiments import TABLE5_MODEL_ORDER, table5


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="bench", choices=["smoke", "bench", "full"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--models",
        nargs="*",
        default=None,
        choices=TABLE5_MODEL_ORDER,
        help="subset of Table V models to evaluate (default: all nine)",
    )
    arguments = parser.parse_args()
    scale = get_scale(arguments.scale)

    print(
        f"comparative study on UNSW-NB15 at scale '{scale.name}' "
        f"({scale.n_records} records, {scale.epochs} epochs per deep model)"
    )
    result = table5(
        scale=scale, seed=arguments.seed, include_models=arguments.models or None
    )
    print()
    print(result.render())

    measured = {row["model"]: row for row in result.rows}
    if "pelican" in measured:
        best_accuracy = max(row["acc_percent"] for row in result.rows)
        pelican_row = measured["pelican"]
        print()
        print(
            "Pelican: DR {dr:.2f} %, ACC {acc:.2f} %, FAR {far:.2f} % "
            "({gap:+.2f} accuracy points vs the best model in this run)".format(
                dr=pelican_row["dr_percent"],
                acc=pelican_row["acc_percent"],
                far=pelican_row["far_percent"],
                gap=pelican_row["acc_percent"] - best_accuracy,
            )
        )


if __name__ == "__main__":
    main()
