#!/usr/bin/env python3
"""Cross-dataset fleet: one NSL-KDD and one UNSW-NB15 detector, one feed.

The paper trains and evaluates its detectors per corpus; a deployment runs
both behind a single front door and routes each sensor's traffic to the
detector trained on its schema.  This example wires that fleet end to end:

1. train a small :class:`repro.core.PelicanDetector` per corpus,
2. build the two-shard, dataset-routed
   :class:`repro.serving.ShardedDetectionService` with
   :func:`repro.scenarios.build_fleet_service`,
3. drive it with :func:`repro.scenarios.fleet_scenario` — NSL-KDD- and
   UNSW-NB15-schema batches interleaved round-robin, each corpus running a
   benign baseline, a DoS burst and a low-and-slow reconnaissance ramp,
4. read the merged fleet report, the per-shard breakdown and the per-phase
   DR/FAR table (phases come back prefixed with their corpus, e.g.
   ``nsl-kdd:dos-burst``).

Run with::

    python examples/cross_dataset_fleet.py
"""

from repro.core import PelicanDetector
from repro.data import (
    NSLKDD_SCHEMA,
    UNSWNB15_SCHEMA,
    load_nslkdd,
    load_unswnb15,
)
from repro.scenarios import build_fleet_service, fleet_scenario


def train(schema, records):
    detector = PelicanDetector(
        schema, num_blocks=2, epochs=4, batch_size=96, dropout_rate=0.3, seed=0
    )
    print(f"training the {schema.name} detector on {len(records)} records ...")
    detector.fit(records, verbose=1)
    return detector


def print_phase_table(report) -> None:
    print(f"{'phase':<28s} {'records':>8s} {'DR':>8s} {'FAR':>8s} {'ACC':>8s}")
    for phase, phase_report in report.phase_reports.items():
        print(
            f"{phase:<28s} {phase_report.total:>8d} "
            f"{phase_report.detection_rate:>8.2%} "
            f"{phase_report.false_alarm_rate:>8.2%} "
            f"{phase_report.accuracy:>8.2%}"
        )


def main() -> None:
    detectors = {
        "nsl-kdd": train(NSLKDD_SCHEMA, load_nslkdd(n_records=600, seed=1)),
        "unsw-nb15": train(UNSWNB15_SCHEMA, load_unswnb15(n_records=600, seed=1)),
    }

    fleet = build_fleet_service(
        detectors, max_batch_size=128, flush_interval=0.02, window=8192
    )
    stream = fleet_scenario(batch_size=64, seed=7)
    corpora = " + ".join(schema.name for schema in stream.schemas)
    print(
        f"\nserving {stream.total_records} interleaved records ({corpora}) "
        "across the dataset-routed fleet ..."
    )
    report = fleet.run_stream(stream, num_workers=2)

    print(report)
    for name, shard_report in report.shard_reports.items():
        print(f"  {name:<12s} {shard_report}")
    print()
    print_phase_table(report)


if __name__ == "__main__":
    main()
