#!/usr/bin/env python3
"""Streaming detection: serve a seeded flood scenario through a fitted detector.

End-to-end use of the :mod:`repro.serving` subsystem:

1. train a small :class:`repro.core.PelicanDetector` on synthetic NSL-KDD
   traffic (exactly like ``examples/quickstart.py``),
2. wrap it in a :class:`repro.serving.DetectionService` — micro-batching
   queue, cached preprocessing and the graph-free ``fast=True`` forward pass,
3. drive it with a :class:`repro.data.TrafficStream` flood scenario: steady
   benign baseline, SYN/UDP/HTTP-flood-style bursts and a gradual-drift tail,
4. read the per-phase rolling DR/FAR and the throughput headline numbers.

Run with::

    python examples/streaming_detection.py
"""

from repro.core import PelicanDetector
from repro.data import NSLKDD_SCHEMA, TrafficStream, load_nslkdd, nslkdd_generator
from repro.serving import DetectionService


def main() -> None:
    # 1. A modest detector: 2 residual blocks, a few epochs — enough for the
    #    stream's binary attack/normal structure to be clearly learnable.
    train_records = load_nslkdd(n_records=800, seed=1)
    detector = PelicanDetector(
        NSLKDD_SCHEMA,
        num_blocks=2,
        epochs=5,
        batch_size=96,
        dropout_rate=0.3,
        seed=0,
    )
    print(f"training on {len(train_records)} records ...")
    detector.fit(train_records, verbose=1)

    # 2. The service: batches of up to 128 records, 20 ms age trigger, a
    #    512-record rolling ACC/DR/FAR window, fast-path inference.
    service = DetectionService(
        detector, max_batch_size=128, flush_interval=0.02, window=512
    )

    # 3. The scenario: ~30 batches of 64 records — benign baseline, three
    #    flood bursts at 70 % attack traffic, then drift.  Fully seeded, so
    #    every run replays the identical stream.
    stream = TrafficStream.flood_scenario(
        nslkdd_generator(), batch_size=64, seed=11
    )
    print(f"serving {stream.total_records} records in {stream.total_batches} batches ...")
    report = service.run_stream(stream)

    # 4. Results: headline throughput plus the per-phase quality breakdown —
    #    the flood phases should show a high detection rate, the benign
    #    phases a low false-alarm rate.
    print()
    print(report)
    print()
    print(f"{'phase':<18s} {'records':>8s} {'DR':>8s} {'FAR':>8s} {'ACC':>8s}")
    for phase, phase_report in report.phase_reports.items():
        print(
            f"{phase:<18s} {phase_report.total:>8d} "
            f"{phase_report.detection_rate:>8.2%} "
            f"{phase_report.false_alarm_rate:>8.2%} "
            f"{phase_report.accuracy:>8.2%}"
        )


if __name__ == "__main__":
    main()
