#!/usr/bin/env python3
"""Reproduce the paper's four-network NSL-KDD evaluation (Tables II & III).

Trains Plain-21, Residual-21, Plain-41 and Residual-41 (Pelican) on synthetic
NSL-KDD traffic at a reduced scale and prints:

* Table II style TP / FP counts,
* Table III style DR / ACC / FAR percentages,
* the Fig. 5(c)/(d) loss curves as ASCII plots.

Run with::

    python examples/nslkdd_evaluation.py            # 'bench' scale (~1 minute)
    python examples/nslkdd_evaluation.py --scale smoke   # seconds, plumbing only
"""

import argparse

from repro.core import get_scale
from repro.experiments import figure5, run_four_network_study
from repro.experiments.paper_values import TABLE2_TP_FP, TABLE3_NSLKDD


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="bench", choices=["smoke", "bench", "full"])
    parser.add_argument("--seed", type=int, default=0)
    arguments = parser.parse_args()
    scale = get_scale(arguments.scale)

    print(f"running the four-network study on NSL-KDD at scale '{scale.name}' "
          f"({scale.n_records} records, {scale.epochs} epochs)")
    study = run_four_network_study("nsl-kdd", scale=scale, seed=arguments.seed)

    print()
    print("Table II (NSL-KDD rows) — true attacks detected vs false alarms")
    print(f"{'network':>14s} {'TP':>8s} {'FP':>8s} {'paper TP':>10s} {'paper FP':>10s}")
    for name, result in study.results.items():
        paper = TABLE2_TP_FP["nsl-kdd"][name]
        print(f"{name:>14s} {result.report.tp:>8d} {result.report.fp:>8d} "
              f"{paper['tp']:>10d} {paper['fp']:>10d}")

    print()
    print("Table III — testing performance on NSL-KDD")
    print(f"{'network':>14s} {'DR%':>8s} {'ACC%':>8s} {'FAR%':>8s}   (paper: DR/ACC/FAR)")
    for name, result in study.results.items():
        row = result.as_row()
        paper = TABLE3_NSLKDD[name]
        print(f"{name:>14s} {row['dr_percent']:>8.2f} {row['acc_percent']:>8.2f} "
              f"{row['far_percent']:>8.2f}   ({paper['dr']}/{paper['acc']}/{paper['far']})")

    print()
    curves = figure5("nsl-kdd", scale=scale, seed=arguments.seed)
    print(curves["train"])
    print()
    print(curves["test"])


if __name__ == "__main__":
    main()
