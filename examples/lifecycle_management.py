"""Detector lifecycle end to end: checkpoint, shadow trial, drift-triggered
hot-swap.

The script walks the three lifecycle primitives on top of the streaming
service:

1. **Checkpoint** — a fitted detector is bundled into a single ``.npz``
   archive and restored into a scoring-identical copy (bitwise-equal
   ``predict(fast=True)``).
2. **Shadow deployment** — a challenger scores the same flood scenario the
   primary serves, into its own monitors; the comparison report says
   whether it should take over.
3. **Drift supervision** — the retrain-recovery scenario drifts attack
   traffic towards the benign region (evasion drift) until DR collapses;
   a :class:`DriftSupervisor` notices on its rolling window, retrains a
   challenger on its replay buffer of drifted batches, and hot-swaps it in
   on a batch boundary without dropping a record.

Run:  PYTHONPATH=src python examples/lifecycle_management.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import PelicanDetector
from repro.data import NSLKDD_SCHEMA, load_nslkdd, nslkdd_generator
from repro.scenarios import flood_scenario, retrain_recovery_scenario
from repro.serving import (
    DetectionService,
    DetectorCheckpoint,
    DriftPolicy,
    DriftSupervisor,
    ShadowDeployment,
)


def main() -> None:
    print("=== Training the primary detector (1 block, scaled down) ===")
    detector = PelicanDetector(
        NSLKDD_SCHEMA, num_blocks=1, epochs=2, batch_size=64,
        dropout_rate=0.3, seed=0,
    )
    detector.fit(load_nslkdd(n_records=500, seed=0))
    generator = nslkdd_generator()

    # ------------------------------------------------------------------ #
    print("\n=== 1. Checkpoint: one archive, scoring-identical restore ===")
    held_out = load_nslkdd(n_records=200, seed=9)
    with tempfile.TemporaryDirectory() as tmp:
        path = DetectorCheckpoint.capture(detector).save(
            Path(tmp) / "pelican-v1"
        )
        size_kb = path.stat().st_size / 1024
        restored = DetectorCheckpoint.load(path).restore()
        identical = np.array_equal(
            restored.predict_proba(held_out, fast=True),
            detector.predict_proba(held_out, fast=True),
        )
    print(f"archive: {path.name} ({size_kb:.0f} KiB)")
    print(f"restored predict(fast=True) bitwise-identical: {identical}")

    # ------------------------------------------------------------------ #
    print("\n=== 2. Shadow deployment: trial a challenger on live traffic ===")
    challenger = detector.clone_architecture(seed=7)
    challenger.fit(load_nslkdd(n_records=500, seed=3))
    primary = DetectionService(
        detector, max_batch_size=64, flush_interval=0.0, window=1 << 20
    )
    shadow = ShadowDeployment(primary, challenger)
    report = shadow.run_stream(flood_scenario(generator, batch_size=64, seed=1))
    print(f"primary:    {report.primary}")
    print(f"challenger: {report.challenger}")
    print(f"comparison: {report.comparison}")
    print(f"challenger wins: {report.comparison.challenger_wins()}")

    # ------------------------------------------------------------------ #
    print("\n=== 3. Drift supervision: evasion drift, retrain, hot-swap ===")
    stream = retrain_recovery_scenario(generator, batch_size=64, seed=0)

    unsupervised = DetectionService(
        detector, max_batch_size=64, flush_interval=0.0, window=512
    ).run_stream(stream)
    print("without a supervisor:")
    for phase, quality in unsupervised.phase_reports.items():
        print(f"  {phase:<16s} DR={quality.detection_rate:6.2%} "
              f"FAR={quality.false_alarm_rate:6.2%}")

    service = DetectionService(
        detector, max_batch_size=64, flush_interval=0.0, window=512
    )
    supervisor = DriftSupervisor(
        service,
        DriftPolicy(
            dr_floor=0.80, far_ceiling=0.20, min_records=256,
            # After a swap, let a window's worth of traffic flow before
            # re-evaluating: the rolling window still remembers the old
            # model's pre-swap mistakes.
            cooldown_records=512,
        ),
        background=False,   # retrain inline at the batch boundary
        replay_records=2048,
    )
    outcome = supervisor.run_stream(stream)
    print("with the supervisor:")
    for event in outcome.events:
        print(f"  {event}")
    if outcome.promoted:
        print(f"  recovery: {outcome.recovery_batches} batches "
              f"({outcome.recovery_seconds:.2f}s of service time)")
    for phase, quality in outcome.report.phase_reports.items():
        print(f"  {phase:<16s} DR={quality.detection_rate:6.2%} "
              f"FAR={quality.false_alarm_rate:6.2%}")
    print(f"records served across the swap: {outcome.report.records} "
          f"(stream emits {stream.total_records}; zero dropped)")


if __name__ == "__main__":
    main()
