#!/usr/bin/env python3
"""Concurrent sharded serving: worker pools and multi-detector routing.

Builds on ``examples/streaming_detection.py`` — same fitted detector, same
seeded scenarios — and shows the three concurrent execution models of
:mod:`repro.serving`:

1. **Worker pool** — the flood scenario scored on a 4-thread
   :class:`repro.serving.WorkerPool`.  Scoring fans out across threads and
   the age trigger fires on a background timer, yet the quality report is
   record-for-record identical to a synchronous run (results commit in
   submission order).
2. **Process pool** — the same flood scenario on a 2-process
   :class:`repro.serving.ProcessWorkerPool`: each child rehydrates a
   scoring-identical detector from a checkpoint and scores off the GIL, so
   the pool scales with real cores — and the report still matches the
   worker-pool (and synchronous) run count for count.  The pool's data
   plane is selectable: the default ``transport="queue"`` pickles batches
   onto per-child queues, while ``transport="shm"`` writes them into
   per-child shared-memory slot rings so only small control tokens cross
   the queues — with an identical report either way.
3. **Sharded fleet** — the probe-sweep scenario routed across two detector
   shards with a ``class-family`` :class:`repro.serving.ShardRouter`: a
   "volumetric" shard for normal/DoS traffic and a "stealth" shard for the
   reconnaissance-style families, each shard on its own 2-worker pool.  The
   per-shard and merged rolling/per-phase reports come back in one
   :class:`repro.serving.ServiceReport`.

Run with::

    python examples/concurrent_serving.py
"""

from repro.core import PelicanDetector
from repro.data import NSLKDD_SCHEMA, TrafficStream, load_nslkdd, nslkdd_generator
from repro.serving import (
    DetectionService,
    ProcessWorkerPool,
    ShardedDetectionService,
    ShardRouter,
    WorkerPool,
)


def print_phase_table(report) -> None:
    print(f"{'phase':<18s} {'records':>8s} {'DR':>8s} {'FAR':>8s} {'ACC':>8s}")
    for phase, phase_report in report.phase_reports.items():
        print(
            f"{phase:<18s} {phase_report.total:>8d} "
            f"{phase_report.detection_rate:>8.2%} "
            f"{phase_report.false_alarm_rate:>8.2%} "
            f"{phase_report.accuracy:>8.2%}"
        )


def main() -> None:
    train_records = load_nslkdd(n_records=800, seed=1)
    detector = PelicanDetector(
        NSLKDD_SCHEMA, num_blocks=2, epochs=5, batch_size=96,
        dropout_rate=0.3, seed=0,
    )
    print(f"training on {len(train_records)} records ...")
    detector.fit(train_records, verbose=1)

    # ------------------------------------------------------------------ #
    # 1. Worker pool over the flood scenario.
    # ------------------------------------------------------------------ #
    flood = TrafficStream.flood_scenario(nslkdd_generator(), batch_size=64, seed=11)
    service = DetectionService(
        detector, max_batch_size=128, flush_interval=0.02, window=512
    )
    print(f"\nserving {flood.total_records} flood-scenario records on 4 workers ...")
    report = WorkerPool(service, num_workers=4).run_stream(flood)
    print(report)
    print_phase_table(report)

    # ------------------------------------------------------------------ #
    # 2. Process pool over the same flood scenario.
    # ------------------------------------------------------------------ #
    print(
        f"\nserving {flood.total_records} flood-scenario records on "
        "2 child processes (checkpoint-rehydrated) ..."
    )
    process_service = DetectionService(
        detector, max_batch_size=128, flush_interval=0.02, window=512
    )
    process_report = ProcessWorkerPool(process_service, num_workers=2).run_stream(flood)
    print(process_report)
    threads = (report.rolling.tp, report.rolling.tn, report.rolling.fp, report.rolling.fn)
    procs = (
        process_report.rolling.tp, process_report.rolling.tn,
        process_report.rolling.fp, process_report.rolling.fn,
    )
    print(f"confusion counts match the thread-pool run: {threads == procs}")

    # ------------------------------------------------------------------ #
    # 2b. Same pool, shared-memory transport.
    # ------------------------------------------------------------------ #
    # transport="shm" swaps the data plane under the same pool: batches are
    # written in place into per-child SharedMemory slot rings (numeric
    # columns zero-copy, categoricals as vocabulary codes) and children
    # score in place, so the control queues carry only tokens.  Batches
    # that exceed the slot capacity fall back to the pickled path; the
    # counters below show which path each batch took.
    print(
        f"\nserving {flood.total_records} flood-scenario records on "
        "2 child processes over the shared-memory transport ..."
    )
    shm_service = DetectionService(
        detector, max_batch_size=128, flush_interval=0.02, window=512
    )
    shm_pool = ProcessWorkerPool(shm_service, num_workers=2, transport="shm")
    shm_report = shm_pool.run_stream(flood)
    print(shm_report)
    shm_counts = (
        shm_report.rolling.tp, shm_report.rolling.tn,
        shm_report.rolling.fp, shm_report.rolling.fn,
    )
    counters = shm_pool.transport_counters()
    print(f"confusion counts match the queue-transport run: {procs == shm_counts}")
    print(
        f"batches through shared-memory slots: {counters['slot_batches']}, "
        f"pickled fallbacks: {counters['inline_batches']}"
    )

    # ------------------------------------------------------------------ #
    # 3. Class-family sharding over the probe-sweep scenario.
    # ------------------------------------------------------------------ #
    sweep = TrafficStream.probe_sweep_scenario(
        nslkdd_generator(), batch_size=64, seed=11
    )
    # In a deployment the routing key would come from an upstream coarse
    # classifier; the synthetic stream routes on its ground-truth labels.
    router = ShardRouter(
        2, "class-family",
        assignment={"normal": 0, "dos": 0, "probe": 1, "r2l": 1, "u2r": 1},
    )
    fleet = ShardedDetectionService(
        [
            DetectionService(detector, max_batch_size=128, flush_interval=0.02)
            for _ in range(2)
        ],
        router,
        names=["volumetric", "stealth"],
    )
    print(
        f"\nserving {sweep.total_records} probe-sweep records across "
        "2 class-family shards (2 workers each) ..."
    )
    merged = fleet.run_stream(sweep, num_workers=2)
    print(merged)
    for name, shard_report in merged.shard_reports.items():
        print(f"  {name:<12s} {shard_report}")
    print()
    print_phase_table(merged)


if __name__ == "__main__":
    main()
