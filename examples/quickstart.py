#!/usr/bin/env python3
"""Quickstart: train a Pelican intrusion detector on synthetic NSL-KDD traffic.

This is the smallest end-to-end use of the library's public API:

1. draw a synthetic NSL-KDD sample (the offline stand-in for the real corpus),
2. fit a :class:`repro.core.PelicanDetector` (a scaled-down Residual network),
3. inspect detection rate, accuracy and false-alarm rate on held-out traffic,
4. look at a few per-record predictions.

Run with::

    python examples/quickstart.py
"""

from repro.core import PelicanDetector
from repro.data import NSLKDD_SCHEMA, load_nslkdd


def main() -> None:
    # 1. Data: 1,000 records following the NSL-KDD schema (41 raw features,
    #    5 classes).  The paper uses the full 148,516-record corpus; the
    #    synthetic generator reproduces its schema and class structure.
    train_records = load_nslkdd(n_records=800, seed=1)
    test_records = load_nslkdd(n_records=200, seed=2)
    print(f"training on {len(train_records)} records: {train_records.class_counts()}")

    # 2. Detector: 3 residual blocks (13 parameter layers) instead of the
    #    paper's 10 so the example finishes in well under a minute on a CPU.
    #    All other hyper-parameters default to the paper's Table I settings.
    detector = PelicanDetector(
        NSLKDD_SCHEMA,
        num_blocks=3,
        epochs=6,
        batch_size=96,
        dropout_rate=0.3,
        seed=0,
    )
    detector.fit(train_records, verbose=1)

    # 3. Evaluation: the paper's three metrics (Section V-B).
    report = detector.evaluate(test_records)
    print()
    print("held-out performance")
    print(f"  detection rate  (DR):  {report.detection_rate:6.2%}")
    print(f"  accuracy        (ACC): {report.accuracy:6.2%}")
    print(f"  false-alarm rate (FAR): {report.false_alarm_rate:6.2%}")
    print(f"  TP={report.tp}  FP={report.fp}  TN={report.tn}  FN={report.fn}")

    # 4. Per-record predictions.
    sample = test_records.subset(range(10))
    predictions = detector.predict(sample)
    print()
    print("first ten records (true -> predicted):")
    for true_label, predicted_label in zip(sample.labels, predictions):
        marker = "ok " if true_label == predicted_label else "MISS"
        print(f"  [{marker}] {true_label:>8s} -> {predicted_label}")


if __name__ == "__main__":
    main()
