#!/usr/bin/env python3
"""Raw-event ingestion: serve a SYN flood from packet events, not feature rows.

The paper's detector consumes NSL-KDD-style feature rows; a deployed IDS
consumes *packets*.  This example runs the full ingestion front-end
(:mod:`repro.ingest`) in front of the serving stack:

1. train a small :class:`repro.core.PelicanDetector` on synthetic NSL-KDD
   traffic,
2. build the packet-level scenario preset
   (:func:`repro.scenarios.syn_flood_event_scenario`): a benign-baseline /
   SYN-flood / recovery arc *lowered to packet events* — DoS records become
   2-packet unidirectional SYN bursts against one victim host,
3. serve the raw packets with
   :meth:`repro.serving.DetectionService.run_event_stream` — the service's
   flow-feature extractor aggregates 5-tuple flows (vectorized, no
   per-packet Python) into schema rows and scores them,
4. verify the determinism contract: the same events scored through the
   record plane produce bit-identical confusion counts, and read the
   events-vs-rows / time-in-extractor accounting.

Run with::

    python examples/raw_event_ingestion.py
"""

from repro.core import PelicanDetector
from repro.data import NSLKDD_SCHEMA, load_nslkdd, nslkdd_generator
from repro.scenarios import syn_flood_event_scenario
from repro.serving import DetectionService


def main() -> None:
    # 1. A modest detector (cf. examples/streaming_detection.py).
    train_records = load_nslkdd(n_records=800, seed=1)
    detector = PelicanDetector(
        NSLKDD_SCHEMA,
        num_blocks=2,
        epochs=5,
        batch_size=96,
        dropout_rate=0.3,
        seed=0,
    )
    print(f"training on {len(train_records)} records ...")
    detector.fit(train_records, verbose=1)

    # 2. The packet-level preset.  `event_batches()` exposes the raw packet
    #    traces; iterating the stream itself yields ordinary feature batches
    #    (each trace aggregated back through a replay-mode extractor).
    event_stream = syn_flood_event_scenario(
        nslkdd_generator(), batch_size=64, seed=11
    )
    total_events = sum(len(eb.events) for eb in event_stream.event_batches())
    print(
        f"lowered {event_stream.total_records} records to "
        f"{total_events} packet events in {event_stream.total_batches} batches"
    )

    # 3. Serve the packets.  The service attaches a FlowFeatureExtractor on
    #    first use: 5-tuple flow assembly, FIN-based closure, trailing-window
    #    connection context, then the ordinary micro-batching scoring path.
    service = DetectionService(
        detector, max_batch_size=128, flush_interval=0.0, window=1 << 20
    )
    report = service.run_event_stream(event_stream)
    print()
    print(report)
    print()
    print(f"{'phase':<18s} {'records':>8s} {'DR':>8s} {'FAR':>8s}")
    for phase, phase_report in report.phase_reports.items():
        print(
            f"{phase:<18s} {phase_report.total:>8d} "
            f"{phase_report.detection_rate:>8.2%} "
            f"{phase_report.false_alarm_rate:>8.2%}"
        )

    # The ingress accounting: how much of the work was flow aggregation.
    stats = service.event_extractor.stats_row()
    print()
    print(
        f"extractor: {stats['events_seen']} events -> "
        f"{stats['rows_emitted']} rows, {stats['flows_closed']} flows closed, "
        f"{stats['extract_seconds'] * 1e3:.1f} ms aggregating, "
        f"window port entropy {stats['port_entropy']:.2f} bits"
    )

    # 4. The determinism contract, checked live: the featurized record plane
    #    scores the identical confusion counts.
    reference = DetectionService(
        detector, max_batch_size=128, flush_interval=0.0, window=1 << 20
    ).run_stream(event_stream.stream)
    got = (report.rolling.tp, report.rolling.tn,
           report.rolling.fp, report.rolling.fn)
    want = (reference.rolling.tp, reference.rolling.tn,
            reference.rolling.fp, reference.rolling.fn)
    print()
    print(f"event-plane counts  (tp, tn, fp, fn): {got}")
    print(f"record-plane counts (tp, tn, fp, fn): {want}")
    assert got == want, "event and record planes disagree"
    print("bit-identical across planes — the ingestion front-end is transparent")


if __name__ == "__main__":
    main()
