#!/usr/bin/env python3
"""Fleet control plane: autoscaling and a staged canary rollout.

Builds on ``examples/concurrent_serving.py`` — same corpus, same seeded
scenario style — and drives a replica fleet through the two control loops
of :class:`repro.serving.FleetController`:

1. **Utilization-driven autoscaling** — the overload preset (calm →
   sustained surge → cooldown) served on a two-shard replica fleet whose
   per-shard worker pools start at one thread.  At every stream batch
   boundary the controller polls each pool's
   :class:`repro.serving.PoolStats` and resizes between the
   :class:`repro.serving.AutoscalePolicy` bounds; every decision lands in
   the report's fleet timeline.  The run's confusion counts are then
   checked against an uncontrolled fixed-size run (autoscaling is
   invisible in reports), and the *recorded schedule* is replayed to show
   the run reproduces decision for decision.
2. **Staged canary rollout** — a challenger rehydrated from a
   :class:`repro.serving.DetectorCheckpoint` shadows the canary shard's
   traffic on the rollout-drift preset, passes the
   :class:`repro.serving.ShadowComparison` gate, and is hot-swapped shard
   by shard with a stagger while the controller watches post-swap rolling
   DR.  A second, deliberately broken challenger then demonstrates the
   rollback path: it promotes through a permissive gate, collapses DR,
   and every already-swapped shard reverts to its primary.

Run with::

    python examples/fleet_control_plane.py
"""

from repro.core import PelicanDetector
from repro.data import NSLKDD_SCHEMA, load_nslkdd, nslkdd_generator
from repro.scenarios import (
    build_replica_fleet,
    overload_scenario,
    rollout_drift_scenario,
)
from repro.serving import (
    AutoscalePolicy,
    DetectorCheckpoint,
    FleetController,
    RolloutPolicy,
)


def counts(report):
    rolling = report.rolling
    return (rolling.tp, rolling.tn, rolling.fp, rolling.fn)


def print_timeline(outcome) -> None:
    for event in outcome.events:
        print(f"    {event}")


def build_fleet(detector):
    return build_replica_fleet(
        detector, 2, max_batch_size=64, flush_interval=0.0, window=1 << 20
    )


def poisoned_challenger(detector):
    """A checkpoint-rehydrated challenger with its head zeroed out: it
    predicts the normal class for everything, so post-swap DR collapses."""
    challenger = DetectorCheckpoint.capture(detector).restore()
    head = challenger.network.layers[-1]
    normal_index = challenger.preprocessor.label_encoder.classes_.index(
        challenger.schema.normal_class
    )
    head.kernel.data[...] = 0.0
    head.bias.data[...] = 0.0
    head.bias.data[normal_index] = 10.0
    return challenger


def main() -> None:
    train_records = load_nslkdd(n_records=800, seed=1)
    detector = PelicanDetector(
        NSLKDD_SCHEMA, num_blocks=2, epochs=5, batch_size=96,
        dropout_rate=0.3, seed=0,
    )
    print(f"training on {len(train_records)} records ...")
    detector.fit(train_records, verbose=1)
    generator = nslkdd_generator()

    # ------------------------------------------------------------------ #
    print("\n=== 1. utilization-driven autoscaling (overload preset) ===")
    stream = overload_scenario(generator, batch_size=96, seed=3)
    controller = FleetController(
        build_fleet(detector),
        num_workers=1,
        autoscale=AutoscalePolicy(
            min_workers=1, max_workers=3,
            scale_up_backlog=0.01, scale_down_backlog=0.005,
        ),
    )
    outcome = controller.run_stream(stream)
    print(f"  {len(outcome.events)} fleet events:")
    print_timeline(outcome)

    baseline = build_fleet(detector).run_stream(stream)
    print(f"  autoscaled counts:   {counts(outcome.report)}")
    print(f"  uncontrolled counts: {counts(baseline)}")
    assert counts(outcome.report) == counts(baseline)

    replayed = FleetController(
        build_fleet(detector), num_workers=1, schedule=outcome.schedule()
    ).run_stream(stream)
    assert counts(replayed.report) == counts(outcome.report)
    assert replayed.schedule() == outcome.schedule()
    print("  replaying the recorded schedule reproduces the run bit for bit")

    # ------------------------------------------------------------------ #
    print("\n=== 2. staged canary rollout (rollout-drift preset) ===")
    rollout_stream = rollout_drift_scenario(generator, batch_size=96, seed=5)
    fleet = build_fleet(detector)
    controller = FleetController(
        fleet, num_workers=2,
        rollout=RolloutPolicy(
            shadow_batches=3, stagger_batches=2, min_watch_records=64
        ),
    )
    challenger = DetectorCheckpoint.capture(detector).restore()
    controller.request_rollout(challenger)
    outcome = controller.run_stream(rollout_stream)
    print_timeline(outcome)
    assert outcome.promoted and outcome.completed
    assert all(shard.detector is challenger for shard in fleet.shards)
    print("  challenger serving on every shard")

    # ------------------------------------------------------------------ #
    print("\n=== 3. automatic rollback on post-swap DR collapse ===")
    fleet = build_fleet(detector)
    primaries = [shard.detector for shard in fleet.shards]
    controller = FleetController(
        fleet, num_workers=2,
        rollout=RolloutPolicy(
            shadow_batches=2, stagger_batches=1,
            # Permissive gate: the broken challenger gets promoted, so the
            # post-swap watch (DR floor 0.5) has something to catch.
            min_dr_gain=-1.0, max_far_regression=1.0,
            dr_floor=0.5, min_watch_records=200,
        ),
    )
    controller.request_rollout(poisoned_challenger(detector))
    outcome = controller.run_stream(rollout_stream)
    print_timeline(outcome)
    assert outcome.rolled_back and not outcome.completed
    assert [shard.detector for shard in fleet.shards] == primaries
    print("  every swapped shard reverted to its primary")


if __name__ == "__main__":
    main()
