#!/usr/bin/env python3
"""Reproduce the paper's motivational experiment (Fig. 2) and its fix.

Part 1 — degradation: LuNet (the plain CNN+GRU stack) is trained at increasing
depth on UNSW-NB15; beyond a moderate depth its accuracy stops improving and
starts to fall, which is the problem statement of the paper.

Part 2 — residual learning: the same depths are retrained with residual blocks
(the Pelican family), showing that the identity shortcuts remove the
degradation.

Run with::

    python examples/depth_degradation_study.py --depths 1 3 5 --scale smoke
    python examples/depth_degradation_study.py                     # bench scale
"""

import argparse

from repro.core import (
    Trainer,
    build_residual_network,
    compile_for_paper,
    get_scale,
    parameter_layer_count,
    scaled_config,
)
from repro.data import get_schema, load_unswnb15
from repro.experiments import figure2
from repro.experiments.results import ascii_plot
from repro.preprocessing import IDSPreprocessor


def residual_sweep(block_counts, scale, seed):
    """Train residual networks over the same depth sweep as Fig. 2."""
    schema = get_schema("unsw-nb15")
    records = load_unswnb15(n_records=scale.n_records, seed=seed)
    split = IDSPreprocessor(schema).holdout_split(
        records, test_fraction=1.0 / scale.n_splits, seed=seed
    )
    config = scaled_config("unsw-nb15", scale)
    trainer = Trainer(config, validation_during_training=False)

    accuracies = []
    for blocks in block_counts:
        network = compile_for_paper(
            build_residual_network(blocks, split.num_classes, config, seed=seed), config
        )
        trainer.train(network, split)
        accuracies.append(float(network.evaluate(split.test.inputs, split.test.targets)["accuracy"]))
    return accuracies


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="bench", choices=["smoke", "bench", "full"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--depths", type=int, nargs="*", default=[1, 2, 4, 6, 8, 10],
        help="block counts to sweep (4*blocks+1 parameter layers each)",
    )
    arguments = parser.parse_args()
    scale = get_scale(arguments.scale)

    print(f"Part 1 — plain (LuNet) depth sweep on UNSW-NB15 at scale '{scale.name}'")
    plain = figure2(
        dataset="unsw-nb15", scale=scale, block_counts=arguments.depths, seed=arguments.seed
    )
    print(plain.curves())
    verdict = "observed" if plain.degradation_observed() else "not observed"
    print(f"depth degradation: {verdict}")

    print()
    print("Part 2 — the same depths with residual blocks")
    residual_accuracy = residual_sweep(arguments.depths, scale, arguments.seed)
    layers = [float(parameter_layer_count(blocks)) for blocks in arguments.depths]
    print(
        ascii_plot(
            layers,
            {
                "plain (LuNet) testing acc": plain.testing_accuracy,
                "residual testing acc": residual_accuracy,
            },
        )
    )
    deepest = arguments.depths[-1]
    print(
        f"at {parameter_layer_count(deepest)} parameter layers: "
        f"plain={plain.testing_accuracy[-1]:.3f} vs residual={residual_accuracy[-1]:.3f}"
    )


if __name__ == "__main__":
    main()
