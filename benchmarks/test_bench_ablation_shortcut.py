"""A-SHORTCUT — ablation: residual shortcut placement.

The paper takes the shortcut from the output of the block's first BN layer
(Fig. 4(b)) rather than from the raw block input.  This ablation trains the
same residual network with both placements and reports DR/ACC/FAR for each.
"""

from bench_utils import emit

from repro.experiments import ablate_shortcut_placement

#: Moderate depth keeps the ablation affordable while still being deep enough
#: for the shortcut to matter.
ABLATION_BLOCKS = 3


def test_ablation_shortcut_placement(run_once, scale, seed):
    table = run_once(
        ablate_shortcut_placement,
        dataset="unsw-nb15",
        scale=scale,
        num_blocks=ABLATION_BLOCKS,
        seed=seed,
    )
    emit(table)

    models = {row["model"] for row in table.rows}
    assert models == {"shortcut-from-bn", "shortcut-from-input"}
    for row in table.rows:
        assert 0.0 <= row["acc_percent"] <= 100.0
        assert 0.0 <= row["far_percent"] <= 100.0
