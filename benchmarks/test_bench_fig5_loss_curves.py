"""E-FIG5 — Fig. 5 (a-d): training and testing loss curves of the four networks.

The paper's claims encoded here:

* for networks of the same depth, the residual network reaches a (much) lower
  training loss than the plain network;
* adding layers to the *plain* network makes its loss worse (Plain-41 above
  Plain-21), while the residual family tolerates the extra depth;
* the same orderings hold on both datasets.
"""

import pytest
from bench_utils import emit

from repro.experiments import figure5


@pytest.mark.parametrize("dataset", ["unsw-nb15", "nsl-kdd"])
def test_fig5_loss_curves(run_once, scale, seed, check_claims, dataset):
    curves = run_once(figure5, dataset=dataset, scale=scale, seed=seed)
    emit(curves["train"])
    emit(curves["test"])

    train_final = curves["train"].final_values()
    test_final = curves["test"].final_values()
    assert set(train_final) == {"plain-21", "residual-21", "plain-41", "residual-41"}
    assert set(test_final) == set(train_final)
    if not check_claims:
        return

    # Residual beats plain at equal depth (training loss), Fig. 5 (a)/(c).
    assert train_final["residual-21"] < train_final["plain-21"]
    assert train_final["residual-41"] < train_final["plain-41"]

    # The plain family degrades with depth; the residual family does not
    # degrade anywhere near as much.
    assert train_final["plain-41"] > train_final["plain-21"]
    assert train_final["residual-41"] < train_final["plain-21"]

    # On the held-out portion the deep residual network still beats the deep
    # plain network, Fig. 5 (b)/(d).
    assert test_final["residual-41"] < test_final["plain-41"]
