"""A-DROPOUT — ablation: dropout rate.

Section V-G argues that the high dropout rate (0.6) is needed against
overfitting on the small IDS corpora.  This ablation sweeps 0.0 / 0.3 / 0.6 on
the same residual network and reports DR/ACC/FAR for each rate.
"""

from bench_utils import emit

from repro.experiments import ablate_dropout

ABLATION_BLOCKS = 3
RATES = (0.0, 0.3, 0.6)


def test_ablation_dropout_rate(run_once, scale, seed):
    table = run_once(
        ablate_dropout,
        dataset="unsw-nb15",
        scale=scale,
        rates=RATES,
        num_blocks=ABLATION_BLOCKS,
        seed=seed,
    )
    emit(table)

    models = {row["model"] for row in table.rows}
    assert models == {f"dropout-{rate}" for rate in RATES}
    for row in table.rows:
        assert 0.0 <= row["acc_percent"] <= 100.0
        assert row["dr_percent"] >= 0.0
