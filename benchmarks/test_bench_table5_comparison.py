"""E-TAB5 — Table V: Pelican vs classical techniques on UNSW-NB15.

The paper's comparative study pits Pelican against AdaBoost, SVM (RBF),
HAST-IDS, CNN, LSTM, MLP, Random Forest and LuNet.  The shape to reproduce:
the boosting/kernel baselines trail badly, the deep spatio-temporal models
cluster in the middle, and Pelican delivers the strongest detection with the
lowest false-alarm band.  (At this reduced data scale the tree ensemble is
relatively stronger than in the paper — see EXPERIMENTS.md.)
"""

from bench_utils import emit

from repro.experiments import table5


def test_table5_comparative_study(run_once, scale, seed, check_claims):
    table = run_once(table5, scale=scale, seed=seed)
    emit(table)
    assert len(table.rows) == 9
    if not check_claims:
        return

    accuracy = {row["model"]: row["acc_percent"] for row in table.rows}
    far = {row["model"]: row["far_percent"] for row in table.rows}
    detection = {row["model"]: row["dr_percent"] for row in table.rows}

    # The weak classical baselines trail Pelican, as in the paper.
    assert accuracy["pelican"] > accuracy["adaboost"]
    assert accuracy["pelican"] > accuracy["svm-rbf"]

    # Pelican's false-alarm rate stays in the low band ("much low false alarm
    # rate" is the paper's headline; 1.30 % at full scale).  The reduced-scale
    # run is noisier, so the band is asserted rather than strict first place.
    assert far["pelican"] < 15.0
    assert far["pelican"] < far["adaboost"] + 5.0

    # Pelican detects the overwhelming majority of attacks (paper: 97.75 %).
    assert detection["pelican"] > 85.0
