"""Scenario-suite benchmark: every preset, every execution model.

Trains one small detector per corpus (the same service scale as the
serving-throughput bench), sweeps the full scenario library with
:class:`repro.scenarios.ScenarioSuite` — flood, probe-sweep,
imbalance-shift, slow-dos and retrain-recovery under the synchronous,
worker-pool, process-pool (checkpoint-rehydrated child processes) and
replica-sharded execution models, plus the cross-dataset fleet preset on
a dataset-routed two-shard service (inline and with per-shard worker
pools) — and writes the per-scenario, per-phase DR/FAR/throughput rows to
``BENCH_scenarios.json`` at the repository root.  That file is the
scenario-regression baseline future PRs diff against, alongside
``BENCH_serving.json``.

The suite additionally exercises the fleet control plane: the ``overload``
preset on an autoscaled replica fleet (recording scaling-event counts and
cross-checking the confusion counts against an uncontrolled run) and the
``rollout-drift`` preset with a checkpoint-rehydrated challenger driven
through the staged canary rollout (recording stage timings and per-stage
DR); and runs the ``retrain-recovery`` preset under a
:class:`repro.serving.lifecycle.DriftSupervisor` (rolling window 512,
inline retrain on the replay buffer) and the baseline records the
lifecycle row: the event timeline (drift detected → retrain → promoted),
the per-batch rolling DR/FAR curves and the recovery time in batches and
seconds.

Hard assertions: for every scenario the execution models must agree on the
confusion counts bit for bit (the serving tier's ordering guarantee), and
every phase of every preset must be attributed.  Quality claims
(``check_claims`` scales only): the flood preset's flood phases keep
DR ≥ 90 % while the benign baseline's FAR stays under 15 %; the slow-dos
low-and-slow phase — 8 % attack mix, far below volumetric thresholds — is
still detected at DR ≥ 80 %; and the supervised retrain-recovery run must
actually recover — promotion happens and the post-swap recovery-window DR
beats the unsupervised (no lifecycle) run's by ≥ 20 points.
"""

import json
from pathlib import Path

from bench_utils import emit
from repro.core import PelicanDetector
from repro.data import NSLKDD_SCHEMA, UNSWNB15_SCHEMA, load_nslkdd, load_unswnb15
from repro.scenarios import ScenarioSuite

BATCH_SIZE = 64
NUM_WORKERS = 2
REPLICA_SHARDS = 2
TRAIN_RECORDS = 500
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_scenarios.json"


def _train(schema, loader, seed):
    detector = PelicanDetector(
        schema, num_blocks=1, epochs=2, batch_size=64, dropout_rate=0.3,
        seed=seed,
    )
    detector.fit(loader(n_records=TRAIN_RECORDS, seed=seed))
    return detector


def _run_suite(seed):
    detectors = {
        "nsl-kdd": _train(NSLKDD_SCHEMA, load_nslkdd, seed),
        "unsw-nb15": _train(UNSWNB15_SCHEMA, load_unswnb15, seed),
    }
    suite = ScenarioSuite(
        detectors,
        batch_size=BATCH_SIZE,
        seed=seed,
        num_workers=NUM_WORKERS,
        replica_shards=REPLICA_SHARDS,
        include_fleet_control=True,
        include_lifecycle=True,
    )
    return suite.run()


def _counts(row):
    overall = row["overall"]
    return (overall["tp"], overall["tn"], overall["fp"], overall["fn"])


def _render(results) -> str:
    lines = [
        "Scenario suite (batch %d, %d workers, %d replica shards)"
        % (results["batch_size"], results["num_workers"], results["replica_shards"]),
        f"{'scenario':<17s} {'model':<16s} {'records':>8s} {'rec/s':>10s} "
        f"{'DR':>7s} {'FAR':>7s} {'ACC':>7s}",
    ]
    for name, entry in results["scenarios"].items():
        for model, row in entry["models"].items():
            overall = row["overall"]
            lines.append(
                f"{name:<17s} {model:<16s} {row['records']:>8d} "
                f"{row['throughput_rps']:>10,.0f} {overall['dr']:>7.2%} "
                f"{overall['far']:>7.2%} {overall['acc']:>7.2%}"
            )
        first = next(iter(entry["models"].values()))
        for phase, quality in first["phases"].items():
            lines.append(
                f"    {phase:<29s} {quality['records']:>8d} {'':>10s} "
                f"{quality['dr']:>7.2%} {quality['far']:>7.2%} "
                f"{quality['acc']:>7.2%}"
            )
    fleet_control = results.get("fleet_control")
    if fleet_control:
        lines.append("fleet control plane (FleetController)")
        for preset in ("overload", "rollout"):
            row = fleet_control[preset]
            lines.append(
                f"  {preset}: {row['report']['records']} rec, "
                f"{row['scaling_events']} scaling events, "
                f"promoted={row['promoted']}, completed={row['completed']}, "
                f"rolled_back={row['rolled_back']}"
            )
            if row["stage_timings_s"]:
                timings = ", ".join(f"{t:.3f}s" for t in row["stage_timings_s"])
                lines.append(f"    stage timings: {timings}")
            for phase, quality in row["report"]["phases"].items():
                lines.append(
                    f"    {phase:<29s} {quality['records']:>8d} {'':>10s} "
                    f"{quality['dr']:>7.2%} {quality['far']:>7.2%} "
                    f"{quality['acc']:>7.2%}"
                )
    lifecycle = results.get("lifecycle")
    if lifecycle:
        lines.append(
            "lifecycle (retrain-recovery under DriftSupervisor, "
            f"window {lifecycle['window']})"
        )
        for event in lifecycle["events"]:
            detail = ", ".join(
                f"{k}={v}" for k, v in event["detail"].items()
            )
            lines.append(
                f"    batch {event['batch_index']:>3d} "
                f"({event['records_seen']:>6d} rec) {event['kind']}"
                + (f"  [{detail}]" if detail else "")
            )
        if lifecycle["promoted"]:
            lines.append(
                f"    recovery: {lifecycle['recovery_batches']} batches, "
                f"{lifecycle['recovery_seconds']:.2f}s"
            )
        for phase, quality in lifecycle["report"]["phases"].items():
            lines.append(
                f"    {phase:<29s} {quality['records']:>8d} {'':>10s} "
                f"{quality['dr']:>7.2%} {quality['far']:>7.2%} "
                f"{quality['acc']:>7.2%}"
            )
    return "\n".join(lines)


def test_scenario_suite(run_once, seed, check_claims):
    results = run_once(_run_suite, seed)
    emit(_render(results))
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")

    scenarios = results["scenarios"]
    assert set(scenarios) == {
        "flood", "probe-sweep", "imbalance-shift", "slow-dos",
        "retrain-recovery", "fleet",
    }
    for name, entry in scenarios.items():
        rows = entry["models"]
        assert len(rows) >= 2, f"{name}: fewer than two execution models"
        counts = {_counts(row) for row in rows.values()}
        assert len(counts) == 1, (
            f"{name}: execution models disagree on the confusion counts"
        )
        for model, row in rows.items():
            assert row["records"] == entry["total_records"], (
                f"{name}/{model}: dropped records"
            )
            phase_total = sum(q["records"] for q in row["phases"].values())
            assert phase_total == entry["total_records"], (
                f"{name}/{model}: phase attribution lost records"
            )

    fleet_control = results["fleet_control"]
    overload = fleet_control["overload"]
    assert overload["report"]["records"] == overload["total_records"], (
        "autoscaled overload run dropped records"
    )
    assert overload["scaling_events"] >= 1, (
        "the overload preset never forced a scaling event"
    )
    assert overload["counts_equal_uncontrolled"], (
        "autoscaling moved the confusion counts"
    )
    rollout = fleet_control["rollout"]
    assert rollout["report"]["records"] == rollout["total_records"], (
        "staged rollout run dropped records"
    )
    assert rollout["promoted"] and rollout["completed"], (
        f"staged rollout did not complete: {rollout['events']}"
    )
    swaps = rollout["event_counts"].get("swap", 0)
    assert swaps == REPLICA_SHARDS, (
        f"expected {REPLICA_SHARDS} stage swaps, saw {swaps}"
    )
    assert len(rollout["stage_timings_s"]) == swaps - 1
    assert all(t >= 0.0 for t in rollout["stage_timings_s"])

    lifecycle = results["lifecycle"]
    assert lifecycle["report"]["records"] == lifecycle["total_records"], (
        "lifecycle run dropped records across the hot-swap"
    )
    assert len(lifecycle["dr_curve"]) == lifecycle["total_batches"]

    if check_claims:
        assert lifecycle["triggered"] and lifecycle["promoted"], (
            f"drift supervisor never recovered: {lifecycle['events']}"
        )
        unsupervised_dr = scenarios["retrain-recovery"]["models"][
            "synchronous"
        ]["phases"]["recovery-window"]["dr"]
        supervised_dr = lifecycle["report"]["phases"]["recovery-window"]["dr"]
        assert supervised_dr >= unsupervised_dr + 0.20, (
            f"supervised recovery-window DR {supervised_dr:.2%} does not "
            f"beat the unsupervised {unsupervised_dr:.2%} by 20 points"
        )

        flood = scenarios["flood"]["models"]["synchronous"]["phases"]
        for phase in ("syn-flood", "udp-flood", "http-flood"):
            assert flood[phase]["dr"] >= 0.90, (
                f"flood {phase}: DR {flood[phase]['dr']:.2%} below 90%"
            )
        assert flood["benign-baseline"]["far"] <= 0.15, (
            f"flood baseline FAR {flood['benign-baseline']['far']:.2%} above 15%"
        )
        slow = scenarios["slow-dos"]["models"]["synchronous"]["phases"]
        assert slow["low-and-slow"]["dr"] >= 0.80, (
            "slow-rate DoS went undetected: DR "
            f"{slow['low-and-slow']['dr']:.2%} below 80%"
        )
