"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at a reduced
scale (see ``repro.core.config.SCALES``) and prints the measured values next
to the paper-reported ones.  The scale is selectable with::

    REPRO_BENCH_SCALE=smoke pytest benchmarks/ --benchmark-only   # fast plumbing check
    pytest benchmarks/ --benchmark-only                           # default 'bench' scale
    REPRO_BENCH_SCALE=full  pytest benchmarks/ --benchmark-only   # larger, slower run

Training happens exactly once per benchmark (pedantic mode, one round); the
four-network study behind Fig. 5 and Tables II-IV is trained once per dataset
and shared across those benchmarks through the in-process cache.
"""

import os
import sys
from pathlib import Path

import pytest

SRC_DIR = Path(__file__).resolve().parent.parent / "src"
if str(SRC_DIR) not in sys.path:
    sys.path.insert(0, str(SRC_DIR))


def _selected_scale():
    from repro.core.config import get_scale

    return get_scale(os.environ.get("REPRO_BENCH_SCALE", "bench"))


@pytest.fixture(scope="session")
def scale():
    """The workload preset used by every benchmark in this session."""
    return _selected_scale()


@pytest.fixture(scope="session")
def seed():
    """Shared seed so all benchmarks draw the same synthetic populations."""
    return 0


@pytest.fixture(scope="session")
def check_claims(scale):
    """Whether to assert the paper's qualitative claims.

    At the 'smoke' scale the networks are 1-2 blocks trained for 2 epochs —
    enough to exercise the code path but far too little training for the
    orderings to be stable — so the claim assertions only run at 'bench' and
    larger scales.
    """
    return scale.name not in ("smoke",)


@pytest.fixture()
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing.

    The experiments train neural networks for minutes; repeating them for
    statistical timing would multiply the runtime without adding information,
    so every benchmark uses a single round.
    """

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
