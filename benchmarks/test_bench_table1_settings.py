"""E-TAB1 — Table I: parameter settings.

Verifies that the configuration registry used by every other experiment is
exactly the paper's Table I (filters, kernel size, recurrent units, dropout,
epochs, learning rate, batch size for both datasets).
"""

from bench_utils import emit

from repro.experiments import table1


def test_table1_parameter_settings(run_once):
    table = run_once(table1)
    emit(table)
    assert len(table.rows) == 7
    assert all(row["matches_paper"] for row in table.rows)
