"""E-TAB3 — Table III: testing performance on NSL-KDD (DR / ACC / FAR).

Paper shape to reproduce: both residual networks outperform both plain
networks, and the deep plain network (Plain-41) is the weakest of the four.
"""

from bench_utils import emit

from repro.experiments import table3


def test_table3_nslkdd_performance(run_once, scale, seed, check_claims):
    table = run_once(table3, scale=scale, seed=seed)
    emit(table)
    assert len(table.rows) == 4
    if not check_claims:
        return

    accuracy = {row["model"]: row["acc_percent"] for row in table.rows}
    detection = {row["model"]: row["dr_percent"] for row in table.rows}

    # Residual networks beat the equally deep plain networks.
    assert accuracy["residual-41"] > accuracy["plain-41"]
    assert accuracy["residual-21"] >= accuracy["plain-21"] - 1.0

    # Depth degradation hits the plain family: Plain-41 is the weakest.
    assert accuracy["plain-41"] == min(accuracy.values())

    # NSL-KDD is the easy dataset: the residual networks sit in the high band
    # the paper reports (99 %+ there; ≥ 90 % at this reduced scale).
    assert accuracy["residual-41"] > 90.0
    assert detection["residual-41"] > 90.0
