"""E-TAB4 — Table IV: testing performance on UNSW-NB15 (DR / ACC / FAR).

Paper shape to reproduce: UNSW-NB15 is markedly harder than NSL-KDD (accuracy
drops from the high-90s to the 80s), the deep plain network degrades, and the
residual networks keep both the highest accuracy and the lowest false-alarm
rates of the four.
"""

from bench_utils import emit

from repro.experiments import table3, table4


def test_table4_unswnb15_performance(run_once, scale, seed, check_claims):
    table = run_once(table4, scale=scale, seed=seed)
    emit(table)
    assert len(table.rows) == 4
    if not check_claims:
        return

    accuracy = {row["model"]: row["acc_percent"] for row in table.rows}
    far = {row["model"]: row["far_percent"] for row in table.rows}

    # Residual beats plain at the full 41-layer depth, and Plain-41 degrades.
    assert accuracy["residual-41"] > accuracy["plain-41"]
    assert accuracy["plain-41"] == min(accuracy.values())

    # The best residual network has a false-alarm rate no worse than the plain
    # networks (the paper's Table IV shows 1.30 % vs 2.37 / 4.29 %).  A plain
    # network that has degraded into predicting (almost) everything as normal
    # gets a trivially low FAR, so only plain networks that still detect a
    # majority of attacks are meaningful FAR comparators.
    detection = {row["model"]: row["dr_percent"] for row in table.rows}
    comparable_plain_fars = [
        far[name] for name in ("plain-21", "plain-41") if detection[name] > 50.0
    ]
    if comparable_plain_fars:
        assert far["residual-41"] <= min(comparable_plain_fars) + 1.0

    # UNSW-NB15 is the harder dataset: accuracy sits well below the NSL-KDD
    # values produced by the same networks (paper: ~86 % vs ~99 %).
    nsl = table3(scale=scale, seed=seed)
    nsl_accuracy = {row["model"]: row["acc_percent"] for row in nsl.rows}
    assert accuracy["residual-41"] < nsl_accuracy["residual-41"]
