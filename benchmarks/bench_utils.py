"""Helpers shared by the benchmark modules."""


def emit(result) -> None:
    """Print a rendered experiment result into the benchmark output.

    Benchmarks run with ``-s``-less pytest capture; printed tables still show
    up in the captured output section and in ``bench_output.txt`` when the
    suite is run with ``tee``.
    """
    print()
    print(result)
