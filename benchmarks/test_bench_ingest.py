"""Raw-event ingestion benchmark: flow-feature extraction throughput.

Measures the vectorized ingestion front-end (:mod:`repro.ingest`) on the
``syn-flood-events`` preset, at three levels:

* **extraction only** — packet events through
  :class:`~repro.ingest.FlowFeatureExtractor` (replay mode), reported as
  events/s and feature rows/s (best of 3);
* **round trip** — the aggregated rows are asserted bit-identical to the
  featurized stream the events were lowered from (the determinism
  contract; the per-event oracle equivalence behind the vectorized
  aggregation itself is fuzz-asserted in tier-1,
  ``tests/ingest/test_flow_table_fuzz.py``);
* **end-to-end serving split** —
  :meth:`~repro.serving.DetectionService.run_event_stream` over a fitted
  detector, splitting wall time into time-in-extractor vs
  time-in-detector from the ingress extractor's own accounting.

The rows are merged into the ``"ingest"`` section of
``BENCH_serving.json`` (the serving benchmark owns the sibling sections
and both write merge-preserving).
"""

import json
import time
from pathlib import Path

import numpy as np

from bench_utils import emit
from repro.core import PelicanDetector
from repro.data import NSLKDD_SCHEMA, load_nslkdd, nslkdd_generator
from repro.ingest import FlowFeatureExtractor
from repro.scenarios import syn_flood_event_scenario
from repro.serving import DetectionService

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"
REPEATS = 3

#: Stream shape per scale: (batch_size, baseline_batches, flood_batches).
_SHAPES = {"smoke": (64, 2, 2), "bench": (256, 8, 8), "full": (512, 16, 16)}


def _measure_extraction(event_stream, event_batches):
    """Extraction-only timing over pre-lowered packet traces."""
    total_events = sum(len(eb.events) for eb in event_batches)

    def run():
        extractor = FlowFeatureExtractor(
            event_stream.schema, window=event_stream.window
        )
        for eb in event_batches:
            extractor.extract(eb.events, final=True)
        return extractor

    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        extractor = run()
        best = min(best, time.perf_counter() - started)
    assert extractor.rows_emitted == event_stream.total_records
    return {
        "events": total_events,
        "rows": extractor.rows_emitted,
        "extract_s": best,
        "events_per_s": total_events / best,
        "rows_per_s": extractor.rows_emitted / best,
        "events_per_row": total_events / extractor.rows_emitted,
    }


def _round_trip_bit_exact(event_stream):
    for got, want in zip(event_stream, event_stream.stream):
        if not (
            np.array_equal(got.records.numeric, want.records.numeric)
            and list(got.records.labels) == list(want.records.labels)
        ):
            return False
    return True


def _measure_serving_split(detector, event_stream):
    """run_event_stream wall time, split extractor vs detector."""
    service = DetectionService(
        detector, max_batch_size=event_stream.batch_size,
        flush_interval=0.0, window=1 << 20,
    )
    started = time.perf_counter()
    report = service.run_event_stream(event_stream)
    total = time.perf_counter() - started
    stats = service.event_extractor.stats_row()
    extract = stats["extract_seconds"]
    return {
        "records": report.records,
        "total_s": total,
        "extract_s": extract,
        "detect_s": total - extract,
        "extract_fraction": extract / total,
        "throughput_rps": report.throughput,
        "events_seen": stats["events_seen"],
        "flows_closed": stats["flows_closed"],
    }


def _render(row):
    lines = ["Raw-event ingestion ({} preset)".format(row["preset"])]
    ex = row["extraction"]
    lines.append(
        "  extraction: {:,} events -> {:,} rows in {:.3f} s "
        "({:,.0f} events/s, {:,.0f} rows/s)".format(
            ex["events"], ex["rows"], ex["extract_s"],
            ex["events_per_s"], ex["rows_per_s"],
        )
    )
    lines.append(
        "  round trip bit-exact vs featurized stream: {}".format(
            row["round_trip_bit_exact"]
        )
    )
    sv = row["serving"]
    lines.append(
        "  serving split: {:.3f} s total = {:.3f} s extractor "
        "({:.1%}) + {:.3f} s detector; {:,.0f} rec/s".format(
            sv["total_s"], sv["extract_s"], sv["extract_fraction"],
            sv["detect_s"], sv["throughput_rps"],
        )
    )
    return "\n".join(lines)


def test_ingest_throughput(run_once, scale, seed, check_claims):
    batch_size, baseline, flood = _SHAPES.get(scale.name, _SHAPES["bench"])

    def experiment():
        generator = nslkdd_generator()
        event_stream = syn_flood_event_scenario(
            generator, batch_size=batch_size, seed=seed,
            baseline_batches=baseline, flood_batches=flood,
        )
        event_batches = list(event_stream.event_batches())
        detector = PelicanDetector(
            NSLKDD_SCHEMA, num_blocks=1, epochs=2, batch_size=64,
            dropout_rate=0.3, seed=seed,
        )
        detector.fit(load_nslkdd(n_records=400, seed=11))
        return {
            "preset": "syn-flood-events",
            "scale": scale.name,
            "batch_size": batch_size,
            "batches": event_stream.total_batches,
            "extraction": _measure_extraction(event_stream, event_batches),
            "round_trip_bit_exact": _round_trip_bit_exact(event_stream),
            "serving": _measure_serving_split(detector, event_stream),
        }

    row = run_once(experiment)
    emit(_render(row))
    merged = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    merged["ingest"] = row
    RESULT_PATH.write_text(json.dumps(merged, indent=2) + "\n")

    # The contract half of the row is scale-independent.
    assert row["round_trip_bit_exact"], (
        "event lowering + flow aggregation no longer reproduces the "
        "featurized stream bit for bit"
    )
    if check_claims:
        ex = row["extraction"]
        # Vectorized floor: the flow table must stay packet-loop-free.  A
        # per-event Python path runs an order of magnitude below this.
        assert ex["events_per_s"] >= 100_000, (
            f"extraction throughput {ex['events_per_s']:,.0f} events/s "
            "below the 100k vectorization floor"
        )
        # Ingestion must not dominate serving: the extractor's share of the
        # end-to-end wall clock stays below the detector's.
        fraction = row["serving"]["extract_fraction"]
        assert fraction < 0.5, (
            f"extractor consumed {fraction:.1%} of the serving wall clock"
        )
