"""E-TAB2 — Table II: total true attacks detected (TP) vs total false alarms (FP).

The paper's qualitative claim: the deep residual network (Residual-41) detects
at least as many attacks as the plain networks while raising no more false
alarms than the deep plain network.  Absolute counts differ (synthetic data,
reduced scale); the orderings are the comparable part.
"""

from bench_utils import emit

from repro.experiments import table2


def test_table2_true_attacks_vs_false_alarms(run_once, scale, seed, check_claims):
    table = run_once(table2, scale=scale, seed=seed)
    emit(table)

    rows = {(row["dataset"], row["model"]): row for row in table.rows}
    assert len(rows) == 8
    if not check_claims:
        return

    for dataset in ("nsl-kdd", "unsw-nb15"):
        residual41 = rows[(dataset, "residual-41")]
        plain41 = rows[(dataset, "plain-41")]
        # Residual-41 detects at least as many attacks as the equally deep
        # plain network and does not raise more false alarms than it.
        assert residual41["tp"] >= plain41["tp"]
        assert residual41["fp"] <= max(plain41["fp"], rows[(dataset, "plain-21")]["fp"])
