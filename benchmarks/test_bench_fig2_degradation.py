"""E-FIG2 — Fig. 2: the depth-degradation motivational experiment.

LuNet (the plain CNN+GRU stack) is trained at increasing depth on UNSW-NB15.
The paper's observation: accuracy does not keep improving with depth — beyond
a moderate number of parameter layers it *degrades*, which is the motivation
for residual learning.
"""

from bench_utils import emit

from repro.experiments import figure2

#: Block counts swept by the benchmark (5 … 41 parameter layers).  A subset of
#: the full 1..10 sweep keeps the benchmark's runtime manageable while still
#: covering the shallow, middle and deep ends of the paper's x-axis.
BLOCK_COUNTS = [1, 2, 3, 5, 7, 10]


def test_fig2_lunet_depth_degradation(run_once, scale, seed, check_claims):
    result = run_once(
        figure2,
        dataset="unsw-nb15",
        scale=scale,
        block_counts=BLOCK_COUNTS,
        seed=seed,
    )
    emit(result.curves())

    assert result.parameter_layers == [4 * blocks + 1 for blocks in BLOCK_COUNTS]
    assert len(result.testing_accuracy) == len(BLOCK_COUNTS)
    if not check_claims:
        return

    # The paper's qualitative claim: the deepest plain network is worse than
    # the best shallower one (testing accuracy degrades with depth).
    assert result.degradation_observed()
    # And the degradation is substantial, not a rounding artefact.
    assert max(result.testing_accuracy) - result.testing_accuracy[-1] > 0.02
