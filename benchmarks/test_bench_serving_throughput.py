"""Serving throughput benchmark: graph vs. fast path, and execution models.

Measures, for each of the four Section V-C networks, a batch-256 forward
pass on the tape (graph) path and on the graph-free inference path, asserts
the fast path reproduces the graph-path probabilities (atol 1e-6) at a
≥ 2x speedup, and then measures the serving tier end-to-end over a seeded
flood scenario in each execution model: the synchronous
:class:`repro.serving.DetectionService`, a thread :class:`WorkerPool` at
1/2/4 workers, a :class:`ProcessWorkerPool` at 1/2/4 checkpoint-rehydrated
child processes — on both the pickled-queue and the zero-copy
shared-memory transports — and a 2-shard replica
:class:`ShardedDetectionService` (2 workers per shard).  Every concurrent
run's confusion counts are asserted bitwise-equal to the single-service
run, and the shm rows record their slot/inline batch counters so the JSON
proves the zero-copy path actually carried the traffic.

Scaling claims are core-count-gated: thread-pool scaling is *recorded*
(``speedup_vs_single`` per worker count) and warned about when a
multi-core host stays below 1.5x — the Python-level preprocessing holds
the GIL, so threads cannot prove multi-core scaling.  The process pool is
the multi-core proof: on hosts with ≥ 4 cores the 4-process run is hard
asserted at ≥ 1.5x the synchronous throughput; on smaller hosts the curve
is recorded and the assertion auto-skips (a single core timeshares the
same arithmetic and pays the IPC on top).  The numbers are written to
``BENCH_serving.json`` at the repository root.
"""

import json
import os
import time
import warnings
from pathlib import Path

import numpy as np
import pytest

from bench_utils import emit
from repro.core import PelicanDetector, build_network, scaled_config
from repro.core.pelican import PAPER_BLOCK_COUNTS
from repro.data import NSLKDD_SCHEMA, TrafficStream, load_nslkdd, nslkdd_generator
from repro.serving import (
    DetectionService,
    ProcessWorkerPool,
    ShardedDetectionService,
    WorkerPool,
)

BATCH_SIZE = 256
REPEATS = 3
WORKER_COUNTS = (1, 2, 4)
ROLLING_WINDOW = 4096  # wider than the stream so count comparisons are exact
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

# Transport latency probe: paced (submit, drain, repeat) round trips on a
# 1-child pool per transport, interleaved so ambient load hits both equally.
# Paced rounds isolate the per-batch transport cost from backlog queueing;
# the probe batch is large because the transports differ by bytes moved.
# Each repeat's p95 still carries scheduler noise comparable to the
# structural gap, so the claim compares best-of-repeats — min-of-5 pins
# each transport near its noise floor, where the gap is stable.
PROBE_BATCH = 256
PROBE_ROUNDS = 150
PROBE_REPEATS = 5


def _best_time(function, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - started)
    return best


def _measure_networks(scale, seed):
    config = scaled_config("nsl-kdd", scale)
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(BATCH_SIZE, 1, config.filters))
    rows = {}
    for name, paper_blocks in PAPER_BLOCK_COUNTS.items():
        network = build_network(
            num_blocks=scale.scale_blocks(paper_blocks),
            num_classes=len(NSLKDD_SCHEMA.classes),
            config=config,
            residual=name.startswith("residual"),
            name=f"bench-{name}",
            seed=seed,
        )
        graph_probabilities = network.predict(x)            # also builds the layers
        fast_probabilities = network.predict(x, fast=True)
        graph_time = _best_time(lambda: network.predict(x))
        fast_time = _best_time(lambda: network.predict(x, fast=True))
        rows[name] = {
            "batch_size": BATCH_SIZE,
            "graph_s": graph_time,
            "fast_s": fast_time,
            "speedup": graph_time / fast_time,
            "fast_throughput_rps": BATCH_SIZE / fast_time,
            "max_abs_diff": float(
                np.abs(graph_probabilities - fast_probabilities).max()
            ),
        }
    return rows


def _service_row(report):
    return {
        "records": report.records,
        "batches": report.batches,
        "throughput_rps": report.throughput,
        "mean_latency_s": report.mean_latency,
        "p95_latency_s": report.p95_latency,
    }


def _counts(report):
    rolling = report.rolling
    return (rolling.tp, rolling.tn, rolling.fp, rolling.fn)


def _transport_probe(detector, records):
    """Best-of-N interleaved paced p95 round trip per transport at x1.

    The stream rows above measure the transports under backlog, where p95
    is dominated by queueing; this probe drains between submissions, so
    the round trip is encode + IPC + score + reply and the p95 columns
    compare the data planes themselves.  Taking the best probe per
    transport (like ``_best_time``) filters scheduler bursts on shared
    hosts — single repeats overlap under load, their minima do not —
    and interleaving keeps slow phases common to both."""
    batch = records.subset(range(PROBE_BATCH))

    def paced_service():
        return DetectionService(
            detector, max_batch_size=PROBE_BATCH, flush_interval=0.0,
            window=ROLLING_WINDOW,
        )

    p95s = {"queue": [], "shm": []}
    for _ in range(PROBE_REPEATS):
        pools = {
            transport: ProcessWorkerPool(
                paced_service(), num_workers=1, transport=transport
            ).start()
            for transport in p95s
        }
        samples = {transport: [] for transport in p95s}
        try:
            for _ in range(10):  # warm the children and both data planes
                for pool in pools.values():
                    pool.submit(batch)
                    pool.join()
                    pool.poll()
            for _ in range(PROBE_ROUNDS):
                for transport, pool in pools.items():
                    results = pool.submit(batch)
                    pool.join()
                    results += pool.poll()
                    samples[transport].extend(r.latency for r in results)
        finally:
            for pool in pools.values():
                pool.close()
        for transport, latencies in samples.items():
            p95s[transport].append(float(np.percentile(latencies, 95)))
    return {
        "batch_records": PROBE_BATCH,
        "rounds": PROBE_ROUNDS,
        "repeats": PROBE_REPEATS,
        "queue_p95_s": min(p95s["queue"]),
        "shm_p95_s": min(p95s["shm"]),
        "queue_p95_repeats_s": p95s["queue"],
        "shm_p95_repeats_s": p95s["shm"],
    }


def _measure_service(seed):
    records = load_nslkdd(n_records=500, seed=seed)
    detector = PelicanDetector(
        NSLKDD_SCHEMA, num_blocks=1, epochs=2, batch_size=64,
        dropout_rate=0.3, seed=seed,
    )
    detector.fit(records)
    stream = TrafficStream.flood_scenario(
        nslkdd_generator(), batch_size=64, seed=seed
    )

    def fresh_service():
        return DetectionService(
            detector, max_batch_size=128, flush_interval=0.0,
            window=ROLLING_WINDOW,
        )

    single_report = fresh_service().run_stream(stream)
    results = _service_row(single_report)

    results["workers"] = {}
    for num_workers in WORKER_COUNTS:
        pool = WorkerPool(fresh_service(), num_workers=num_workers)
        report = pool.run_stream(stream)
        row = _service_row(report)
        row["speedup_vs_single"] = report.throughput / single_report.throughput
        results["workers"][str(num_workers)] = row
        assert _counts(report) == _counts(single_report), (
            f"worker pool ({num_workers} workers) changed the confusion counts"
        )

    # The process pool runs on both data planes: pickled per-child queues
    # and the zero-copy shared-memory slot rings (the p95 column is the one
    # the shm transport is built to cut — latency is the parent-measured
    # round trip, so the serialization hop is visible in it).  The x1 rows
    # are measured interleaved, best of N, because the transports differ by
    # tens of microseconds per batch and a single run's p95 on a shared
    # host is dominated by ambient scheduling noise.
    def _process_row(num_workers, transport):
        pool = ProcessWorkerPool(
            fresh_service(), num_workers=num_workers, transport=transport
        )
        report = pool.run_stream(stream)
        row = _service_row(report)
        row["speedup_vs_single"] = report.throughput / single_report.throughput
        assert _counts(report) == _counts(single_report), (
            f"process pool ({num_workers} workers, {transport}) changed "
            "the confusion counts"
        )
        if transport == "shm":
            row["transport_counters"] = pool.transport_counters()
            assert row["transport_counters"]["slot_batches"] > 0, (
                "shm rows measured without any slot traffic"
            )
        return row

    sections = {"queue": "process_workers", "shm": "process_workers_shm"}
    results["process_workers"] = {}
    results["process_workers_shm"] = {}
    repeats = {"queue": [], "shm": []}
    for _ in range(REPEATS):
        for transport in sections:
            repeats[transport].append(_process_row(1, transport))
    for transport, rows in repeats.items():
        best = min(rows, key=lambda row: row["p95_latency_s"])
        best["p95_repeats_s"] = [row["p95_latency_s"] for row in rows]
        results[sections[transport]]["1"] = best
    for num_workers in WORKER_COUNTS[1:]:
        for transport, section in sections.items():
            results[section][str(num_workers)] = _process_row(
                num_workers, transport
            )

    results["transport_probe"] = _transport_probe(detector, records)

    sharded = ShardedDetectionService.replicated(
        detector, 2, max_batch_size=128, flush_interval=0.0,
        window=ROLLING_WINDOW,
    )
    sharded_report = sharded.run_stream(stream, num_workers=2)
    results["sharded"] = {
        "shards": 2,
        "workers_per_shard": 2,
        **_service_row(sharded_report),
        "counts_match_single": _counts(sharded_report) == _counts(single_report),
    }
    assert results["sharded"]["counts_match_single"], (
        "sharded merged confusion counts diverged from the single-service run"
    )
    return results


def _render(results) -> str:
    lines = [
        "Serving throughput (batch %d, best of %d)" % (BATCH_SIZE, REPEATS),
        f"{'network':<14s} {'graph ms':>10s} {'fast ms':>10s} {'speedup':>9s} {'max diff':>10s}",
    ]
    for name, row in results["networks"].items():
        lines.append(
            f"{name:<14s} {row['graph_s'] * 1e3:>10.1f} {row['fast_s'] * 1e3:>10.1f} "
            f"{row['speedup']:>8.1f}x {row['max_abs_diff']:>10.1e}"
        )
    service = results["service"]
    lines.append(
        "stream service: {:,.0f} rec/s over {} records "
        "(p95 batch latency {:.1f} ms)".format(
            service["throughput_rps"],
            service["records"],
            service["p95_latency_s"] * 1e3,
        )
    )
    for num_workers, row in service["workers"].items():
        lines.append(
            "  worker pool x{}: {:,.0f} rec/s ({:.2f}x single-thread)".format(
                num_workers,
                row["throughput_rps"],
                row["throughput_rps"] / service["throughput_rps"],
            )
        )
    for num_workers, row in service["process_workers"].items():
        lines.append(
            "  process pool x{}: {:,.0f} rec/s ({:.2f}x single-thread, "
            "p95 {:.1f} ms)".format(
                num_workers,
                row["throughput_rps"],
                row["throughput_rps"] / service["throughput_rps"],
                row["p95_latency_s"] * 1e3,
            )
        )
    for num_workers, row in service["process_workers_shm"].items():
        counters = row["transport_counters"]
        lines.append(
            "  shm process pool x{}: {:,.0f} rec/s ({:.2f}x single-thread, "
            "p95 {:.1f} ms, {} slot / {} inline batches)".format(
                num_workers,
                row["throughput_rps"],
                row["throughput_rps"] / service["throughput_rps"],
                row["p95_latency_s"] * 1e3,
                counters["slot_batches"],
                counters["inline_batches"],
            )
        )
    probe = service["transport_probe"]
    lines.append(
        "  transport probe x1 (paced, {}-record batches, best of {}): "
        "queue p95 {:.2f} ms vs shm p95 {:.2f} ms".format(
            probe["batch_records"],
            probe["repeats"],
            probe["queue_p95_s"] * 1e3,
            probe["shm_p95_s"] * 1e3,
        )
    )
    sharded = service["sharded"]
    lines.append(
        "  sharded {}x{} workers: {:,.0f} rec/s (counts match: {})".format(
            sharded["shards"],
            sharded["workers_per_shard"],
            sharded["throughput_rps"],
            sharded["counts_match_single"],
        )
    )
    return "\n".join(lines)


def test_serving_throughput(run_once, scale, seed, check_claims):
    def experiment():
        return {
            "scale": scale.name,
            "networks": _measure_networks(scale, seed),
            "service": _measure_service(seed),
        }

    results = run_once(experiment)
    emit(_render(results))
    # Merge-write: other benchmarks own sibling sections of the same file
    # (e.g. the ingestion front-end's "ingest" row), so preserve them.
    merged = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    merged.update(results)
    RESULT_PATH.write_text(json.dumps(merged, indent=2) + "\n")

    for name, row in results["networks"].items():
        assert row["max_abs_diff"] < 1e-6, (
            f"{name}: fast path diverged from the graph path "
            f"({row['max_abs_diff']:.2e})"
        )
    if check_claims:
        for name, row in results["networks"].items():
            assert row["speedup"] >= 2.0, (
                f"{name}: fast path speedup {row['speedup']:.2f}x below the "
                "2x serving target"
            )
        # Concurrency can only beat the serial path when there are cores to
        # run on; a single-core host timeshares the same arithmetic (plus
        # IPC for the process pool), so the scaling claims auto-skip there
        # and the curve is recorded either way.
        if (os.cpu_count() or 1) >= 4:
            # Thread scaling stays GIL-limited (Python preprocessing), so a
            # shortfall is a warning, not a red bench.
            scaling = results["service"]["workers"]["4"]["speedup_vs_single"]
            if scaling < 1.5:
                warnings.warn(
                    f"4-worker pool reached only {scaling:.2f}x the "
                    "single-thread throughput (target 1.5x) on this host",
                    stacklevel=1,
                )
            # The process pool scores off the GIL: this is the multi-core
            # proof, hard asserted where the cores exist.
            process_scaling = results["service"]["process_workers"]["4"][
                "speedup_vs_single"
            ]
            assert process_scaling >= 1.5, (
                f"4-process pool reached only {process_scaling:.2f}x the "
                "single-thread throughput (target 1.5x) on a "
                f"{os.cpu_count()}-core host"
            )
        # The shm data plane's core-count-free claim: at x1 the two
        # backends run identical child compute on identical batches, so the
        # paced probe's p95 round trip isolates the transport itself — the
        # slot write must beat pickling the batch through a queue on *any*
        # host.
        probe = results["service"]["transport_probe"]
        assert probe["shm_p95_s"] < probe["queue_p95_s"], (
            f"shm transport paced p95 at x1 ({probe['shm_p95_s'] * 1e3:.2f} "
            f"ms) is not below the queue backend's "
            f"({probe['queue_p95_s'] * 1e3:.2f} ms)"
        )


@pytest.mark.multicore(4)
def test_shm_process_pool_scales_on_multicore(check_claims):
    """The ≥ 3x-at-x4 gate for the zero-copy data plane, armed only where
    four real cores exist (the ``multicore`` skip) — reads the rows the
    main benchmark just wrote to ``BENCH_serving.json``."""
    if not check_claims:
        pytest.skip("claims are not checked at the smoke scale")
    results = json.loads(RESULT_PATH.read_text())
    scaling = results["service"]["process_workers_shm"]["4"]["speedup_vs_single"]
    assert scaling >= 3.0, (
        f"shm process pool x4 reached only {scaling:.2f}x the single-thread "
        f"throughput (target 3x) on a {os.cpu_count()}-core host"
    )
