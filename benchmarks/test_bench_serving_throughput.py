"""Serving throughput benchmark: graph path vs. the ``fast=True`` path.

Measures, for each of the four Section V-C networks, a batch-256 forward
pass on the tape (graph) path and on the graph-free inference path, asserts
the fast path reproduces the graph-path probabilities (atol 1e-6) at a
≥ 2x speedup, and then measures a :class:`repro.serving.DetectionService`
end-to-end over a seeded flood scenario.  The numbers are written to
``BENCH_serving.json`` at the repository root as the serving baseline that
later scaling PRs (async workers, sharding) compare against.
"""

import json
import time
from pathlib import Path

import numpy as np

from bench_utils import emit
from repro.core import PelicanDetector, build_network, scaled_config
from repro.core.pelican import PAPER_BLOCK_COUNTS
from repro.data import NSLKDD_SCHEMA, TrafficStream, load_nslkdd, nslkdd_generator
from repro.serving import DetectionService

BATCH_SIZE = 256
REPEATS = 3
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"


def _best_time(function, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - started)
    return best


def _measure_networks(scale, seed):
    config = scaled_config("nsl-kdd", scale)
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(BATCH_SIZE, 1, config.filters))
    rows = {}
    for name, paper_blocks in PAPER_BLOCK_COUNTS.items():
        network = build_network(
            num_blocks=scale.scale_blocks(paper_blocks),
            num_classes=len(NSLKDD_SCHEMA.classes),
            config=config,
            residual=name.startswith("residual"),
            name=f"bench-{name}",
            seed=seed,
        )
        graph_probabilities = network.predict(x)            # also builds the layers
        fast_probabilities = network.predict(x, fast=True)
        graph_time = _best_time(lambda: network.predict(x))
        fast_time = _best_time(lambda: network.predict(x, fast=True))
        rows[name] = {
            "batch_size": BATCH_SIZE,
            "graph_s": graph_time,
            "fast_s": fast_time,
            "speedup": graph_time / fast_time,
            "fast_throughput_rps": BATCH_SIZE / fast_time,
            "max_abs_diff": float(
                np.abs(graph_probabilities - fast_probabilities).max()
            ),
        }
    return rows


def _measure_service(seed):
    records = load_nslkdd(n_records=500, seed=seed)
    detector = PelicanDetector(
        NSLKDD_SCHEMA, num_blocks=1, epochs=2, batch_size=64,
        dropout_rate=0.3, seed=seed,
    )
    detector.fit(records)
    service = DetectionService(detector, max_batch_size=128, flush_interval=0.0)
    stream = TrafficStream.flood_scenario(
        nslkdd_generator(), batch_size=64, seed=seed
    )
    report = service.run_stream(stream)
    return {
        "records": report.records,
        "batches": report.batches,
        "throughput_rps": report.throughput,
        "mean_latency_s": report.mean_latency,
        "p95_latency_s": report.p95_latency,
    }


def _render(results) -> str:
    lines = [
        "Serving throughput (batch %d, best of %d)" % (BATCH_SIZE, REPEATS),
        f"{'network':<14s} {'graph ms':>10s} {'fast ms':>10s} {'speedup':>9s} {'max diff':>10s}",
    ]
    for name, row in results["networks"].items():
        lines.append(
            f"{name:<14s} {row['graph_s'] * 1e3:>10.1f} {row['fast_s'] * 1e3:>10.1f} "
            f"{row['speedup']:>8.1f}x {row['max_abs_diff']:>10.1e}"
        )
    service = results["service"]
    lines.append(
        "stream service: {:,.0f} rec/s over {} records "
        "(p95 batch latency {:.1f} ms)".format(
            service["throughput_rps"],
            service["records"],
            service["p95_latency_s"] * 1e3,
        )
    )
    return "\n".join(lines)


def test_serving_throughput(run_once, scale, seed, check_claims):
    def experiment():
        return {
            "scale": scale.name,
            "networks": _measure_networks(scale, seed),
            "service": _measure_service(seed),
        }

    results = run_once(experiment)
    emit(_render(results))
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")

    for name, row in results["networks"].items():
        assert row["max_abs_diff"] < 1e-6, (
            f"{name}: fast path diverged from the graph path "
            f"({row['max_abs_diff']:.2e})"
        )
    if check_claims:
        for name, row in results["networks"].items():
            assert row["speedup"] >= 2.0, (
                f"{name}: fast path speedup {row['speedup']:.2f}x below the "
                "2x serving target"
            )
