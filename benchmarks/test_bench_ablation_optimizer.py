"""A-OPTIMIZER — ablation: training algorithm.

The paper trains every network with RMSprop (Section V-C).  This ablation
trains the same residual network with RMSprop, SGD and Adam at the Table I
learning rate and reports DR/ACC/FAR for each, quantifying how much of
Pelican's performance depends on that choice.
"""

from bench_utils import emit

from repro.experiments import ablate_optimizer

ABLATION_BLOCKS = 3
OPTIMIZERS = ("rmsprop", "sgd", "adam")


def test_ablation_optimizer_choice(run_once, scale, seed, check_claims):
    table = run_once(
        ablate_optimizer,
        dataset="unsw-nb15",
        scale=scale,
        optimizers=OPTIMIZERS,
        num_blocks=ABLATION_BLOCKS,
        seed=seed,
    )
    emit(table)

    rows = {row["model"]: row for row in table.rows}
    assert set(rows) == set(OPTIMIZERS)
    if not check_claims:
        return

    # The adaptive optimizers (the paper's RMSprop, and Adam) should not be
    # dramatically worse than plain SGD at the same learning rate — i.e. the
    # paper's choice is at least competitive.
    assert rows["rmsprop"]["acc_percent"] >= rows["sgd"]["acc_percent"] - 10.0
