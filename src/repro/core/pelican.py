"""Network builders for the four architectures evaluated in the paper.

Section V-C defines them as:

* **Plain-21** — five plain blocks + global average pooling + dense (21
  parameter layers).
* **Residual-21** — five residual blocks + global average pooling + dense.
* **Plain-41** — ten plain blocks + global average pooling + dense (41
  parameter layers).
* **Residual-41 (Pelican)** — ten residual blocks + global average pooling +
  dense.

Each block contributes four parameter layers (BN, Conv1D, BN, GRU) and the
dense classifier adds one, so ``layers = 4 * blocks + 1``.
"""

from __future__ import annotations

from typing import Optional

from ..nn.layers import Dense, GlobalAveragePooling1D
from ..nn.models import Sequential
from ..nn.optimizers import RMSprop
from .blocks import PARAMETER_LAYERS_PER_BLOCK, PlainBlock, ResidualBlock
from .config import NetworkConfig

__all__ = [
    "parameter_layer_count",
    "blocks_for_depth",
    "build_network",
    "build_plain_network",
    "build_residual_network",
    "build_plain21",
    "build_plain41",
    "build_residual21",
    "build_pelican",
    "compile_for_paper",
    "PAPER_BLOCK_COUNTS",
]

#: Block counts of the four networks in Section V-C.
PAPER_BLOCK_COUNTS = {
    "plain-21": 5,
    "residual-21": 5,
    "plain-41": 10,
    "residual-41": 10,
}


def parameter_layer_count(num_blocks: int) -> int:
    """Number of parameter layers in a network of ``num_blocks`` blocks.

    ``4 * blocks + 1``: four weight-bearing layers per block plus the final
    dense classifier (global average pooling has no parameters).
    """
    if num_blocks <= 0:
        raise ValueError("num_blocks must be positive")
    return PARAMETER_LAYERS_PER_BLOCK * num_blocks + 1


def blocks_for_depth(num_parameter_layers: int) -> int:
    """Inverse of :func:`parameter_layer_count` (rounded down, at least one block)."""
    if num_parameter_layers <= 1:
        raise ValueError("a network needs more than one parameter layer")
    return max(1, (num_parameter_layers - 1) // PARAMETER_LAYERS_PER_BLOCK)


def build_network(
    num_blocks: int,
    num_classes: int,
    config: NetworkConfig,
    residual: bool = True,
    shortcut_from: str = "bn",
    name: Optional[str] = None,
    seed: Optional[int] = None,
) -> Sequential:
    """Assemble a plain or residual network following Section V-C.

    Parameters
    ----------
    num_blocks:
        Number of (plain or residual) blocks to stack.
    num_classes:
        Size of the softmax output (5 for NSL-KDD, 10 for UNSW-NB15).
    config:
        Table I hyper-parameters (filters, kernel size, recurrent units,
        dropout rate).
    residual:
        True builds residual blocks (Pelican family), False plain blocks.
    shortcut_from:
        Passed through to :class:`ResidualBlock` for the shortcut ablation.
    """
    if num_blocks <= 0:
        raise ValueError("num_blocks must be positive")
    if num_classes < 2:
        raise ValueError("num_classes must be at least 2")

    if name is None:
        kind = "residual" if residual else "plain"
        name = f"{kind}-{parameter_layer_count(num_blocks)}"

    network = Sequential(name=name, seed=seed)
    for index in range(num_blocks):
        if residual:
            block = ResidualBlock(
                filters=config.filters,
                kernel_size=config.kernel_size,
                recurrent_units=config.recurrent_units,
                dropout_rate=config.dropout_rate,
                shortcut_from=shortcut_from,
                name=f"{name}/resblk_{index}",
            )
        else:
            block = PlainBlock(
                filters=config.filters,
                kernel_size=config.kernel_size,
                recurrent_units=config.recurrent_units,
                dropout_rate=config.dropout_rate,
                name=f"{name}/plainblk_{index}",
            )
        network.add(block)
    network.add(GlobalAveragePooling1D(name=f"{name}/gap"))
    network.add(Dense(num_classes, activation="softmax", name=f"{name}/classifier"))
    return network


def build_plain_network(
    num_blocks: int, num_classes: int, config: NetworkConfig, **kwargs
) -> Sequential:
    """Plain (non-residual) network of ``num_blocks`` blocks."""
    return build_network(num_blocks, num_classes, config, residual=False, **kwargs)


def build_residual_network(
    num_blocks: int, num_classes: int, config: NetworkConfig, **kwargs
) -> Sequential:
    """Residual network of ``num_blocks`` blocks."""
    return build_network(num_blocks, num_classes, config, residual=True, **kwargs)


def build_plain21(num_classes: int, config: NetworkConfig, **kwargs) -> Sequential:
    """The paper's Plain-21: five plain blocks + GAP + dense."""
    return build_plain_network(5, num_classes, config, name="plain-21", **kwargs)


def build_plain41(num_classes: int, config: NetworkConfig, **kwargs) -> Sequential:
    """The paper's Plain-41: ten plain blocks + GAP + dense."""
    return build_plain_network(10, num_classes, config, name="plain-41", **kwargs)


def build_residual21(num_classes: int, config: NetworkConfig, **kwargs) -> Sequential:
    """The paper's Residual-21: five residual blocks + GAP + dense."""
    return build_residual_network(5, num_classes, config, name="residual-21", **kwargs)


def build_pelican(num_classes: int, config: NetworkConfig, **kwargs) -> Sequential:
    """Pelican (Residual-41): ten residual blocks + GAP + dense."""
    return build_residual_network(10, num_classes, config, name="pelican", **kwargs)


def compile_for_paper(network: Sequential, config: NetworkConfig) -> Sequential:
    """Compile a network with the paper's training setup (RMSprop + CCE)."""
    network.compile(
        optimizer=RMSprop(learning_rate=config.learning_rate),
        loss="categorical_crossentropy",
        metrics=["accuracy"],
    )
    return network
