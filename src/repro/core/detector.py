"""High-level detector API.

:class:`PelicanDetector` is the public face of the library: it bundles the
preprocessing pipeline, the network construction (any of the four Section V-C
architectures) and the training protocol behind a scikit-learn style
``fit`` / ``predict`` / ``evaluate`` interface operating directly on
:class:`~repro.data.dataset.TrafficRecords`.

Example
-------
>>> from repro.data import load_nslkdd, NSLKDD_SCHEMA
>>> from repro.core import PelicanDetector
>>> records = load_nslkdd(n_records=600, seed=7)
>>> detector = PelicanDetector(NSLKDD_SCHEMA, num_blocks=2, epochs=3)
>>> detector.fit(records)                                   # doctest: +SKIP
>>> report = detector.evaluate(load_nslkdd(300, seed=8))    # doctest: +SKIP
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.dataset import TrafficRecords
from ..data.schema import DatasetSchema
from ..metrics.ids_metrics import DetectionReport, evaluate_detection
from ..nn.callbacks import History
from ..nn.models import Sequential
from ..preprocessing.pipeline import IDSPreprocessor, PreparedData
from .config import NetworkConfig, get_paper_config
from .pelican import build_network, compile_for_paper

__all__ = ["PelicanDetector"]


class PelicanDetector:
    """End-to-end intrusion detector built on the Pelican architecture.

    Parameters
    ----------
    schema:
        Dataset schema the detector will be trained on.
    num_blocks:
        Number of residual (or plain) blocks; the paper's Pelican uses 10.
    residual:
        True for the residual (Pelican) family, False for the plain family.
    config:
        Optional Table I-style hyper-parameters; defaults to the paper's
        settings for the schema's dataset with the given overrides applied.
    epochs, batch_size, learning_rate, dropout_rate:
        Convenience overrides applied on top of ``config``.
    seed:
        Seed for weight initialization and dropout.
    """

    def __init__(
        self,
        schema: DatasetSchema,
        num_blocks: int = 10,
        residual: bool = True,
        config: Optional[NetworkConfig] = None,
        epochs: Optional[int] = None,
        batch_size: Optional[int] = None,
        learning_rate: Optional[float] = None,
        dropout_rate: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.schema = schema
        self.num_blocks = int(num_blocks)
        self.residual = residual
        self.seed = seed

        base = config or get_paper_config(schema.name)
        overrides = {}
        if epochs is not None:
            overrides["epochs"] = int(epochs)
        if batch_size is not None:
            overrides["batch_size"] = int(batch_size)
        if learning_rate is not None:
            overrides["learning_rate"] = float(learning_rate)
        if dropout_rate is not None:
            overrides["dropout_rate"] = float(dropout_rate)
        self.config = base.with_updates(**overrides) if overrides else base

        self.preprocessor = IDSPreprocessor(schema)
        self.network: Optional[Sequential] = None
        self.history: Optional[History] = None

    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        return self.network is not None

    def _build_network(self, num_classes: int) -> Sequential:
        network = build_network(
            num_blocks=self.num_blocks,
            num_classes=num_classes,
            config=self.config,
            residual=self.residual,
            seed=self.seed,
        )
        return compile_for_paper(network, self.config)

    def clone_architecture(self, seed: Optional[int] = None) -> "PelicanDetector":
        """A fresh, unfitted detector with the same architecture and config.

        The drift supervisor retrains challengers through this: same schema,
        depth, residual family and Table I-style hyper-parameters, new
        (optionally re-seeded) weights, empty preprocessing statistics.
        """
        return PelicanDetector(
            self.schema,
            num_blocks=self.num_blocks,
            residual=self.residual,
            config=self.config,
            seed=self.seed if seed is None else seed,
        )

    def build_untrained(self, num_classes: int, num_features: int) -> Sequential:
        """Construct and shape-build the network without training it.

        Used by checkpoint restore: the returned network has freshly
        initialised parameters of the right shapes, ready for
        ``set_weights`` / ``set_buffers``.  Does not attach the network to
        this detector — assign it explicitly once its state is loaded.
        """
        network = self._build_network(num_classes)
        network(np.zeros((1, 1, num_features)))
        return network

    def fit(
        self,
        records: TrafficRecords,
        validation_records: Optional[TrafficRecords] = None,
        verbose: int = 0,
    ) -> History:
        """Preprocess ``records``, build the network and train it."""
        prepared = self.preprocessor.fit_transform(records)
        validation = None
        if validation_records is not None:
            validation_prepared = self.preprocessor.transform(validation_records)
            validation = (validation_prepared.inputs, validation_prepared.targets)
        self.network = self._build_network(prepared.num_classes)
        self.history = self.network.fit(
            prepared.inputs,
            prepared.targets,
            epochs=self.config.epochs,
            batch_size=self.config.batch_size,
            validation_data=validation,
            verbose=verbose,
        )
        return self.history

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("the detector must be fitted before prediction")

    def prepare(self, records: TrafficRecords) -> PreparedData:
        """Preprocess records with the fitted pipeline (no training)."""
        self._require_fitted()
        return self.preprocessor.transform(records)

    def predict(self, records: TrafficRecords, fast: bool = False) -> np.ndarray:
        """Predicted class names for each record.

        ``fast=True`` routes the forward pass through the graph-free
        inference path (see :meth:`repro.nn.models.Model.predict`); the
        :class:`~repro.serving.DetectionService` uses it by default.
        """
        self._require_fitted()
        prepared = self.preprocessor.transform(records)
        class_indices = self.network.predict_classes(prepared.inputs, fast=fast)
        return self.preprocessor.label_encoder.inverse_transform(class_indices)

    def predict_proba(self, records: TrafficRecords, fast: bool = False) -> np.ndarray:
        """Class-probability matrix aligned with the schema's class order."""
        self._require_fitted()
        prepared = self.preprocessor.transform(records)
        return self.network.predict(prepared.inputs, fast=fast)

    def predict_is_attack(self, records: TrafficRecords, fast: bool = False) -> np.ndarray:
        """Binary attack(1)/normal(0) prediction per record."""
        predictions = self.predict(records, fast=fast)
        return (predictions != self.schema.normal_class).astype(np.int64)

    def evaluate(self, records: TrafficRecords, fast: bool = False) -> DetectionReport:
        """ACC/DR/FAR report on held-out records."""
        self._require_fitted()
        prepared = self.preprocessor.transform(records)
        predicted = self.network.predict_classes(prepared.inputs, fast=fast)
        return evaluate_detection(
            prepared.class_indices, predicted, prepared.normal_index
        )

    def summary(self) -> str:
        """Model summary (requires a fitted detector)."""
        self._require_fitted()
        return self.network.summary()
