"""``repro.core`` — the paper's contribution.

Plain and residual CNN+GRU blocks (Fig. 4), the Plain-21/41 and Residual-21/41
(Pelican) network builders (Section V-C), the LuNet and HAST-IDS deep
baselines, the Table I configuration registry, the training/evaluation
orchestration and the high-level :class:`PelicanDetector` API.
"""

from .blocks import PlainBlock, ResidualBlock, parameter_layers_per_block
from .config import (
    PAPER_SETTINGS,
    SCALES,
    ExperimentScale,
    NetworkConfig,
    get_paper_config,
    get_scale,
    scaled_config,
)
from .detector import PelicanDetector
from .hast_ids import build_hast_ids
from .lunet import DEFAULT_LUNET_BLOCKS, build_lunet, lunet_depth_sweep
from .pelican import (
    PAPER_BLOCK_COUNTS,
    blocks_for_depth,
    build_network,
    build_pelican,
    build_plain21,
    build_plain41,
    build_plain_network,
    build_residual21,
    build_residual_network,
    compile_for_paper,
    parameter_layer_count,
)
from .trainer import EvaluationResult, Trainer

__all__ = [
    "PlainBlock",
    "ResidualBlock",
    "parameter_layers_per_block",
    "NetworkConfig",
    "ExperimentScale",
    "PAPER_SETTINGS",
    "SCALES",
    "get_paper_config",
    "get_scale",
    "scaled_config",
    "PelicanDetector",
    "build_hast_ids",
    "build_lunet",
    "lunet_depth_sweep",
    "DEFAULT_LUNET_BLOCKS",
    "PAPER_BLOCK_COUNTS",
    "build_network",
    "build_plain_network",
    "build_residual_network",
    "build_plain21",
    "build_plain41",
    "build_residual21",
    "build_pelican",
    "blocks_for_depth",
    "parameter_layer_count",
    "compile_for_paper",
    "EvaluationResult",
    "Trainer",
]
