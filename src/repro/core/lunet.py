"""LuNet (Wu & Guo, 2019) — the baseline the paper's blocks are derived from.

LuNet is the authors' earlier CNN+GRU intrusion-detection network; the paper
uses it in two places:

* the motivational experiment (Fig. 2) trains LuNet at increasing depth and
  shows the degradation problem — accuracy drops as parameter layers grow;
* the comparative study (Table V) includes LuNet as the strongest classical
  deep baseline.

Architecturally LuNet stacks the plain CNN+GRU blocks of Fig. 4(a) (that is
exactly where the paper says the plain block comes from) with a global average
pooling layer and a dense softmax classifier on top, so it is the plain
network family parameterised by depth.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..nn.models import Sequential
from .config import NetworkConfig
from .pelican import build_plain_network, parameter_layer_count

__all__ = ["build_lunet", "lunet_depth_sweep", "DEFAULT_LUNET_BLOCKS"]

#: LuNet as used in the Table V comparison: a 5-block (21 parameter layer) stack.
DEFAULT_LUNET_BLOCKS = 5


def build_lunet(
    num_classes: int,
    config: NetworkConfig,
    num_blocks: int = DEFAULT_LUNET_BLOCKS,
    name: Optional[str] = None,
    **kwargs,
) -> Sequential:
    """Build LuNet with ``num_blocks`` plain CNN+GRU blocks."""
    return build_plain_network(
        num_blocks,
        num_classes,
        config,
        name=name or f"lunet-{parameter_layer_count(num_blocks)}",
        **kwargs,
    )


def lunet_depth_sweep(max_blocks: int = 10, step: int = 1) -> Sequence[int]:
    """Block counts for the Fig. 2 depth sweep.

    The paper sweeps 5 to 40 parameter layers; with four parameter layers per
    block plus the classifier this corresponds to 1 to 10 blocks.
    """
    if max_blocks <= 0 or step <= 0:
        raise ValueError("max_blocks and step must be positive")
    return list(range(1, max_blocks + 1, step))
