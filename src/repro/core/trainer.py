"""Training and evaluation orchestration.

The paper's evaluation protocol (Section V) is: preprocess, create k-fold
splits, train each network with RMSprop and the Table I settings, then report
accuracy, detection rate, false-alarm rate and the raw TP/FP counts.  The
:class:`Trainer` encapsulates that protocol so the experiment harness, the
examples and the tests all exercise the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..data.dataset import TrafficRecords
from ..metrics.ids_metrics import DetectionReport, evaluate_detection
from ..nn.callbacks import History
from ..nn.models import Model
from ..preprocessing.pipeline import IDSPreprocessor, PreparedData, PreparedSplit
from .config import ExperimentScale, NetworkConfig
from .pelican import compile_for_paper

__all__ = ["EvaluationResult", "Trainer"]

ModelBuilder = Callable[[int, NetworkConfig], Model]


@dataclass
class EvaluationResult:
    """Everything measured for one model on one dataset.

    Attributes
    ----------
    model_name:
        Human-readable model label (e.g. ``"residual-41"``).
    report:
        Aggregated attack-vs-normal :class:`DetectionReport` (ACC/DR/FAR and
        TP/FP counts, summed over folds when k-fold evaluation is used).
    fold_reports:
        Per-fold reports (length 1 for a holdout evaluation).
    histories:
        Training histories (one per fold), used by the Fig. 5 loss curves.
    multiclass_accuracy:
        Fraction of records assigned the exactly correct class label.
    """

    model_name: str
    report: DetectionReport
    fold_reports: List[DetectionReport] = field(default_factory=list)
    histories: List[History] = field(default_factory=list)
    multiclass_accuracy: float = 0.0

    def as_row(self) -> Dict[str, float]:
        """Row for the result tables: DR%, ACC%, FAR% as in Tables III-V.

        DR and FAR come from the attack-vs-normal binarisation; ACC is the
        multi-class validation accuracy (the paper's ACC column tracks the
        multi-class accuracy — e.g. ACC 86.64 % alongside DR 97.75 % and FAR
        1.30 % on UNSW-NB15 is only consistent with the multi-class reading).
        """
        return {
            "model": self.model_name,
            "dr_percent": 100.0 * self.report.detection_rate,
            "acc_percent": 100.0 * self.multiclass_accuracy,
            "far_percent": 100.0 * self.report.false_alarm_rate,
            "tp": self.report.tp,
            "fp": self.report.fp,
        }


class Trainer:
    """Train and evaluate models following the paper's protocol.

    Parameters
    ----------
    config:
        Table I hyper-parameters (already scaled if desired).
    validation_during_training:
        When True, ``fit`` receives the test fold as validation data so the
        history contains ``val_loss`` — required for the Fig. 5 curves.
    verbose:
        Verbosity forwarded to ``Model.fit``.
    """

    def __init__(
        self,
        config: NetworkConfig,
        validation_during_training: bool = True,
        verbose: int = 0,
    ) -> None:
        self.config = config
        self.validation_during_training = validation_during_training
        self.verbose = verbose

    # ------------------------------------------------------------------ #
    # Single-split training
    # ------------------------------------------------------------------ #
    def train(self, model: Model, split: PreparedSplit) -> History:
        """Compile (if needed) and fit a model on one train/test split."""
        if model.optimizer is None:
            compile_for_paper(model, self.config)
        validation = (
            (split.test.inputs, split.test.targets)
            if self.validation_during_training
            else None
        )
        return model.fit(
            split.train.inputs,
            split.train.targets,
            epochs=self.config.epochs,
            batch_size=self.config.batch_size,
            validation_data=validation,
            verbose=self.verbose,
        )

    def evaluate(self, model: Model, data: PreparedData, model_name: str) -> EvaluationResult:
        """Evaluate a trained model on prepared data."""
        predicted = model.predict_classes(data.inputs)
        report = evaluate_detection(data.class_indices, predicted, data.normal_index)
        multiclass_accuracy = float(np.mean(predicted == data.class_indices))
        return EvaluationResult(
            model_name=model_name,
            report=report,
            fold_reports=[report],
            multiclass_accuracy=multiclass_accuracy,
        )

    def train_and_evaluate(
        self, model: Model, split: PreparedSplit, model_name: Optional[str] = None
    ) -> EvaluationResult:
        """Train on the split's training portion and evaluate on its test portion."""
        history = self.train(model, split)
        result = self.evaluate(model, split.test, model_name or model.name)
        result.histories.append(history)
        return result

    # ------------------------------------------------------------------ #
    # K-fold protocol (Section V-A step 3)
    # ------------------------------------------------------------------ #
    def cross_validate(
        self,
        build_model: ModelBuilder,
        records: TrafficRecords,
        preprocessor: IDSPreprocessor,
        n_splits: int = 10,
        model_name: Optional[str] = None,
        seed: int = 0,
        max_folds: Optional[int] = None,
    ) -> EvaluationResult:
        """K-fold cross-validation of a freshly built model per fold.

        ``build_model(num_classes, config)`` must return an *uncompiled* (or
        compiled) model; a new instance is created for every fold so folds are
        independent, exactly as in the paper's protocol.  ``max_folds`` allows
        the scaled-down harness to train on a subset of folds while keeping
        the 1/k test proportion of true k-fold splits.
        """
        fold_reports: List[DetectionReport] = []
        histories: List[History] = []
        accuracies: List[float] = []
        name = model_name or "model"

        for fold_index, split in enumerate(
            preprocessor.kfold_splits(records, n_splits=n_splits, seed=seed)
        ):
            if max_folds is not None and fold_index >= max_folds:
                break
            model = build_model(split.num_classes, self.config)
            history = self.train(model, split)
            predicted = model.predict_classes(split.test.inputs)
            report = evaluate_detection(
                split.test.class_indices, predicted, split.test.normal_index
            )
            fold_reports.append(report)
            histories.append(history)
            accuracies.append(float(np.mean(predicted == split.test.class_indices)))

        if not fold_reports:
            raise ValueError("cross_validate produced no folds; check n_splits/max_folds")
        return EvaluationResult(
            model_name=name,
            report=DetectionReport.merge(fold_reports),
            fold_reports=fold_reports,
            histories=histories,
            multiclass_accuracy=float(np.mean(accuracies)),
        )
