"""HAST-IDS (Wang et al., 2017) — the tandem CNN→LSTM baseline of Table V.

The original HAST-IDS learns hierarchical spatial features with convolutional
layers over raw packet bytes and then temporal features with an LSTM over the
per-packet representations.  On the paper's tabular flow features the same
tandem structure is used: a convolutional front-end (spatial representation),
max pooling, then an LSTM (temporal representation), followed by a dense
softmax classifier.
"""

from __future__ import annotations

from typing import Optional

from ..nn.layers import (
    LSTM,
    BatchNormalization,
    Conv1D,
    Dense,
    Dropout,
    GlobalAveragePooling1D,
    MaxPooling1D,
    Reshape,
)
from ..nn.models import Sequential
from .config import NetworkConfig

__all__ = ["build_hast_ids"]


def build_hast_ids(
    num_classes: int,
    config: NetworkConfig,
    name: Optional[str] = None,
    seed: Optional[int] = None,
) -> Sequential:
    """Build the HAST-IDS style CNN→LSTM classifier.

    The convolutional stage uses the same filter budget as the Table I
    settings so the comparison against Pelican is apples-to-apples, then an
    LSTM consumes the convolutional feature map before the dense classifier.
    """
    if num_classes < 2:
        raise ValueError("num_classes must be at least 2")
    name = name or "hast-ids"
    network = Sequential(name=name, seed=seed)
    # Spatial stage: two stacked convolutions (the "hierarchical spatial
    # features" of HAST-IDS), each followed by pooling.
    network.add(
        Conv1D(config.filters, config.kernel_size, padding="same", activation="relu",
               name=f"{name}/conv1")
    )
    network.add(MaxPooling1D(pool_size=2, padding="same", name=f"{name}/pool1"))
    network.add(BatchNormalization(name=f"{name}/bn1"))
    network.add(
        Conv1D(config.filters, config.kernel_size, padding="same", activation="relu",
               name=f"{name}/conv2")
    )
    network.add(MaxPooling1D(pool_size=2, padding="same", name=f"{name}/pool2"))
    # Temporal stage: LSTM over the (single-step) convolutional feature map.
    network.add(
        LSTM(config.recurrent_units, return_sequences=True, name=f"{name}/lstm")
    )
    network.add(Dropout(config.dropout_rate, name=f"{name}/dropout"))
    network.add(GlobalAveragePooling1D(name=f"{name}/gap"))
    network.add(Dense(num_classes, activation="softmax", name=f"{name}/classifier"))
    return network
