"""Hyper-parameter configuration.

:class:`NetworkConfig` captures the paper's Table I parameter settings, and
:class:`ExperimentScale` captures how much the experiment harness scales the
workload down so the pure-numpy networks train in reasonable time on a single
CPU core (the paper used the full corpora and a desktop-class machine).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

__all__ = [
    "NetworkConfig",
    "ExperimentScale",
    "PAPER_SETTINGS",
    "SCALES",
    "get_paper_config",
    "get_scale",
    "scaled_config",
]


@dataclass(frozen=True)
class NetworkConfig:
    """Training/architecture hyper-parameters (one column of Table I).

    Attributes
    ----------
    filters:
        Conv1D filter count.  Must equal the encoded feature width so the
        residual add has matching shapes (196 for UNSW-NB15, 121 for NSL-KDD).
    kernel_size:
        Conv1D kernel length.
    recurrent_units:
        GRU hidden size (equal to ``filters`` for the same reason).
    dropout_rate:
        Dropout rate inside every block.
    epochs:
        Training epochs.
    learning_rate:
        RMSprop learning rate.
    batch_size:
        Mini-batch size.
    """

    filters: int
    kernel_size: int
    recurrent_units: int
    dropout_rate: float
    epochs: int
    learning_rate: float
    batch_size: int

    def __post_init__(self) -> None:
        if self.filters <= 0 or self.kernel_size <= 0 or self.recurrent_units <= 0:
            raise ValueError("filters, kernel_size and recurrent_units must be positive")
        if not 0.0 <= self.dropout_rate < 1.0:
            raise ValueError("dropout_rate must be in [0, 1)")
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")

    def with_updates(self, **kwargs) -> "NetworkConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


#: Table I of the paper, keyed by dataset name.
PAPER_SETTINGS: Dict[str, NetworkConfig] = {
    "unsw-nb15": NetworkConfig(
        filters=196,
        kernel_size=10,
        recurrent_units=196,
        dropout_rate=0.6,
        epochs=100,
        learning_rate=0.01,
        batch_size=4000,
    ),
    "nsl-kdd": NetworkConfig(
        filters=121,
        kernel_size=10,
        recurrent_units=121,
        dropout_rate=0.6,
        epochs=50,
        learning_rate=0.01,
        batch_size=4000,
    ),
}


@dataclass(frozen=True)
class ExperimentScale:
    """How far an experiment is scaled down from the paper's full runs.

    Attributes
    ----------
    name:
        Scale label recorded in EXPERIMENTS.md.
    n_records:
        Number of synthetic records drawn per dataset.
    epochs:
        Training epochs (overrides the Table I value).
    batch_size:
        Mini-batch size (overrides the Table I value).
    n_splits:
        Cross-validation folds (the paper uses 10).
    blocks_per_network:
        Scaling factor applied to the block counts: 1.0 keeps the paper's
        5/10-block networks, 0.4 reduces them to 2/4 blocks for smoke tests.
    """

    name: str
    n_records: int
    epochs: int
    batch_size: int
    n_splits: int
    blocks_per_network: float = 1.0

    def __post_init__(self) -> None:
        if self.n_records <= 0 or self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("n_records, epochs and batch_size must be positive")
        if self.n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        if self.blocks_per_network <= 0:
            raise ValueError("blocks_per_network must be positive")

    def scale_blocks(self, paper_blocks: int) -> int:
        """Scale a paper block count (5 or 10), never below one block."""
        return max(1, int(round(paper_blocks * self.blocks_per_network)))


#: Workload presets.  ``smoke`` is used by the unit tests, ``bench`` by the
#: benchmark harness, ``paper`` mirrors the published settings (full record
#: counts, 10-fold cross-validation) and is provided for completeness.
SCALES: Dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(
        name="smoke", n_records=400, epochs=2, batch_size=64, n_splits=3,
        blocks_per_network=0.2,
    ),
    "bench": ExperimentScale(
        name="bench", n_records=1200, epochs=10, batch_size=96, n_splits=4,
        blocks_per_network=1.0,
    ),
    "full": ExperimentScale(
        name="full", n_records=8000, epochs=20, batch_size=256, n_splits=5,
        blocks_per_network=1.0,
    ),
    "paper": ExperimentScale(
        name="paper", n_records=148_516, epochs=100, batch_size=4000, n_splits=10,
        blocks_per_network=1.0,
    ),
}


def get_paper_config(dataset: str) -> NetworkConfig:
    """Return the Table I settings for ``dataset`` (``"nsl-kdd"`` / ``"unsw-nb15"``)."""
    key = dataset.lower().replace("_", "-")
    try:
        return PAPER_SETTINGS[key]
    except KeyError as exc:
        known = ", ".join(sorted(PAPER_SETTINGS))
        raise ValueError(f"unknown dataset {dataset!r}; known datasets: {known}") from exc


def get_scale(name: str) -> ExperimentScale:
    """Return a workload preset by name."""
    try:
        return SCALES[name.lower()]
    except KeyError as exc:
        known = ", ".join(sorted(SCALES))
        raise ValueError(f"unknown scale {name!r}; known scales: {known}") from exc


def scaled_config(dataset: str, scale: ExperimentScale) -> NetworkConfig:
    """Table I settings with the scale's epoch/batch overrides applied."""
    paper = get_paper_config(dataset)
    return paper.with_updates(epochs=scale.epochs, batch_size=scale.batch_size)
