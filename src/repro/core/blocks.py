"""The paper's building blocks (Fig. 4).

* :class:`PlainBlock` — Fig. 4(a): BN → Conv1D(ReLU) → MaxPooling → BN →
  GRU(tanh, hard-sigmoid) → Reshape → Dropout.  This is the LuNet-style block
  the paper's plain networks are stacked from, and contributes four parameter
  layers (two BN, one Conv, one GRU).
* :class:`ResidualBlock` — Fig. 4(b): the same stack wrapped with an identity
  shortcut taken from the *output of the first BN layer* and merged with an
  element-wise Add at the end of the block.

For the paper's configuration (1 time-step inputs, ``filters ==
recurrent_units == input features``) the shortcut is a pure identity.  For
other shapes the block inserts a projection (1x1 convolution and/or temporal
average) so the Add still type-checks — the standard ResNet "option B"
shortcut — and documents that this adds one parameter layer.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn.layers import (
    GRU,
    Add,
    BatchNormalization,
    Conv1D,
    Dropout,
    Layer,
    MaxPooling1D,
    Reshape,
)
from ..nn.tensor import Tensor, global_average_pool1d, reshape

__all__ = ["PlainBlock", "ResidualBlock", "parameter_layers_per_block"]

#: Parameter layers contributed by one block: BN, Conv1D, BN, GRU.
PARAMETER_LAYERS_PER_BLOCK = 4


def parameter_layers_per_block() -> int:
    """Number of parameter (weight-bearing) layers in one block."""
    return PARAMETER_LAYERS_PER_BLOCK


class PlainBlock(Layer):
    """Fig. 4(a): the plain CNN+GRU block.

    Parameters
    ----------
    filters:
        Number of convolution filters.
    kernel_size:
        Convolution window length (10 in Table I).
    recurrent_units:
        GRU hidden size.
    dropout_rate:
        Dropout applied at the end of the block (0.6 in Table I).
    pool_size:
        Max-pooling window (the paper keeps the default of 2; with the
        1-time-step inputs this is effectively a no-op, as in the original).
    """

    def __init__(
        self,
        filters: int,
        kernel_size: int,
        recurrent_units: int,
        dropout_rate: float = 0.6,
        pool_size: int = 2,
        name: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(name=name, seed=seed)
        self.filters = int(filters)
        self.kernel_size = int(kernel_size)
        self.recurrent_units = int(recurrent_units)
        self.dropout_rate = float(dropout_rate)
        self.pool_size = int(pool_size)

        self.input_norm = self.register(BatchNormalization(name=f"{self.name}/bn_in"))
        self.convolution = self.register(
            Conv1D(
                filters=self.filters,
                kernel_size=self.kernel_size,
                padding="same",
                activation="relu",
                name=f"{self.name}/conv",
            )
        )
        self.pooling = self.register(
            MaxPooling1D(pool_size=self.pool_size, padding="same", name=f"{self.name}/pool")
        )
        self.recurrent_norm = self.register(
            BatchNormalization(name=f"{self.name}/bn_rec")
        )
        self.recurrent = self.register(
            GRU(
                units=self.recurrent_units,
                activation="tanh",
                recurrent_activation="hard_sigmoid",
                return_sequences=False,
                name=f"{self.name}/gru",
            )
        )
        self.reshape = self.register(
            Reshape((1, self.recurrent_units), name=f"{self.name}/reshape")
        )
        self.dropout = self.register(
            Dropout(self.dropout_rate, name=f"{self.name}/dropout")
        )

    # ------------------------------------------------------------------ #
    def build(self, input_shape: Tuple[int, ...]) -> None:
        """Build every parameter sub-layer from the block input shape.

        The internal shapes are fully determined by the input, so building
        eagerly (instead of letting each sub-layer build inside its first
        forward) makes ``count_params()`` and weight serialization stable
        from build time on.  Weight values are unaffected: every layer draws
        from its own generator created at construction.
        """
        if len(input_shape) != 3:
            raise ValueError(
                f"{type(self).__name__} expects (batch, steps, channels) inputs, "
                f"got {input_shape}"
            )
        batch, steps, _ = input_shape
        pooled_steps = max(int(np.ceil(steps / self.pooling.strides)), 1)
        stages = (
            (self.input_norm, input_shape),
            (self.convolution, input_shape),
            (self.recurrent_norm, (batch, pooled_steps, self.filters)),
            (self.recurrent, (batch, pooled_steps, self.filters)),
        )
        for layer, shape in stages:
            if not layer.built:
                layer.build(shape)
                layer.built = True

    def transform(self, inputs: Tensor, training: bool) -> Tuple[Tensor, Tensor]:
        """Run the block and also return the first BN output (the shortcut source)."""
        normalized = self.input_norm(inputs, training=training)
        features = self.convolution(normalized, training=training)
        features = self.pooling(features, training=training)
        features = self.recurrent_norm(features, training=training)
        features = self.recurrent(features, training=training)
        features = self.reshape(features, training=training)
        features = self.dropout(features, training=training)
        return features, normalized

    def call(self, inputs: Tensor, training: bool = False) -> Tensor:
        outputs, _ = self.transform(inputs, training)
        return outputs

    def fast_transform(self, inputs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Graph-free :meth:`transform` (inference semantics, raw ndarrays)."""
        normalized = self.input_norm.fast_forward(inputs)
        features = self.convolution.fast_forward(normalized)
        features = self.pooling.fast_forward(features)
        features = self.recurrent_norm.fast_forward(features)
        features = self.recurrent.fast_forward(features)
        features = self.reshape.fast_forward(features)
        features = self.dropout.fast_forward(features)
        return features, normalized

    def fast_call(self, inputs: np.ndarray) -> np.ndarray:
        outputs, _ = self.fast_transform(inputs)
        return outputs

    def parameter_layer_count(self) -> int:
        """Parameter layers contributed by this block."""
        return PARAMETER_LAYERS_PER_BLOCK


class ResidualBlock(PlainBlock):
    """Fig. 4(b): the plain block wrapped with a shortcut from the first BN output.

    Parameters
    ----------
    shortcut_from:
        ``"bn"`` (paper's design, Fig. 4(b)) takes the shortcut from the first
        BN output; ``"input"`` takes it from the raw block input.  The
        alternative is exercised by the shortcut-placement ablation bench.
    """

    def __init__(
        self,
        filters: int,
        kernel_size: int,
        recurrent_units: int,
        dropout_rate: float = 0.6,
        pool_size: int = 2,
        shortcut_from: str = "bn",
        name: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(
            filters=filters,
            kernel_size=kernel_size,
            recurrent_units=recurrent_units,
            dropout_rate=dropout_rate,
            pool_size=pool_size,
            name=name,
            seed=seed,
        )
        if shortcut_from not in ("bn", "input"):
            raise ValueError("shortcut_from must be 'bn' or 'input'")
        self.shortcut_from = shortcut_from
        self.merge = self.register(Add(name=f"{self.name}/add"))
        self._projection: Optional[Conv1D] = None

    def build(self, input_shape: Tuple[int, ...]) -> None:
        """Create the shortcut projection eagerly when the shapes demand one.

        The projection used to be created lazily inside the first forward
        pass, so a block that was serialized or ``count_params()``-ed before
        that silently omitted it.  Building it here (the shortcut source
        always has the block input's channel count) keeps parameter counts
        and round-tripped weights stable from build time on.
        """
        super().build(input_shape)
        channels = input_shape[-1]
        if channels != self.recurrent_units:
            projection = self._ensure_projection()
            if not projection.built:
                projection.build((input_shape[0], 1, channels))
                projection.built = True

    def _ensure_projection(self) -> Conv1D:
        if self._projection is None:
            self._projection = self.register(
                Conv1D(
                    filters=self.recurrent_units,
                    kernel_size=1,
                    padding="same",
                    name=f"{self.name}/shortcut_proj",
                )
            )
        return self._projection

    def _project_shortcut(self, shortcut: Tensor, training: bool) -> Tensor:
        """Match the shortcut's shape to the block output ``(batch, 1, units)``."""
        batch, steps, channels = shortcut.shape
        if steps != 1:
            shortcut = reshape(
                global_average_pool1d(shortcut), (batch, 1, channels)
            )
        if channels != self.recurrent_units:
            shortcut = self._ensure_projection()(shortcut, training=training)
        return shortcut

    def call(self, inputs: Tensor, training: bool = False) -> Tensor:
        outputs, normalized = self.transform(inputs, training)
        shortcut_source = normalized if self.shortcut_from == "bn" else inputs
        shortcut = self._project_shortcut(shortcut_source, training)
        return self.merge([outputs, shortcut], training=training)

    def fast_call(self, inputs: np.ndarray) -> np.ndarray:
        outputs, normalized = self.fast_transform(inputs)
        shortcut = normalized if self.shortcut_from == "bn" else inputs
        batch, steps, channels = shortcut.shape
        if steps != 1:
            shortcut = shortcut.mean(axis=1).reshape(batch, 1, channels)
        if channels != self.recurrent_units:
            shortcut = self._ensure_projection().fast_forward(shortcut)
        return outputs + shortcut

    def parameter_layer_count(self) -> int:
        """Parameter layers contributed by this block (plus any projection)."""
        base = PARAMETER_LAYERS_PER_BLOCK
        return base + (1 if self._projection is not None else 0)
