"""The paper's building blocks (Fig. 4).

* :class:`PlainBlock` — Fig. 4(a): BN → Conv1D(ReLU) → MaxPooling → BN →
  GRU(tanh, hard-sigmoid) → Reshape → Dropout.  This is the LuNet-style block
  the paper's plain networks are stacked from, and contributes four parameter
  layers (two BN, one Conv, one GRU).
* :class:`ResidualBlock` — Fig. 4(b): the same stack wrapped with an identity
  shortcut taken from the *output of the first BN layer* and merged with an
  element-wise Add at the end of the block.

For the paper's configuration (1 time-step inputs, ``filters ==
recurrent_units == input features``) the shortcut is a pure identity.  For
other shapes the block inserts a projection (1x1 convolution and/or temporal
average) so the Add still type-checks — the standard ResNet "option B"
shortcut — and documents that this adds one parameter layer.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..nn.layers import (
    GRU,
    Add,
    BatchNormalization,
    Conv1D,
    Dropout,
    Layer,
    MaxPooling1D,
    Reshape,
)
from ..nn.tensor import Tensor, global_average_pool1d, reshape

__all__ = ["PlainBlock", "ResidualBlock", "parameter_layers_per_block"]

#: Parameter layers contributed by one block: BN, Conv1D, BN, GRU.
PARAMETER_LAYERS_PER_BLOCK = 4


def parameter_layers_per_block() -> int:
    """Number of parameter (weight-bearing) layers in one block."""
    return PARAMETER_LAYERS_PER_BLOCK


class PlainBlock(Layer):
    """Fig. 4(a): the plain CNN+GRU block.

    Parameters
    ----------
    filters:
        Number of convolution filters.
    kernel_size:
        Convolution window length (10 in Table I).
    recurrent_units:
        GRU hidden size.
    dropout_rate:
        Dropout applied at the end of the block (0.6 in Table I).
    pool_size:
        Max-pooling window (the paper keeps the default of 2; with the
        1-time-step inputs this is effectively a no-op, as in the original).
    """

    def __init__(
        self,
        filters: int,
        kernel_size: int,
        recurrent_units: int,
        dropout_rate: float = 0.6,
        pool_size: int = 2,
        name: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(name=name, seed=seed)
        self.filters = int(filters)
        self.kernel_size = int(kernel_size)
        self.recurrent_units = int(recurrent_units)
        self.dropout_rate = float(dropout_rate)
        self.pool_size = int(pool_size)

        self.input_norm = self.register(BatchNormalization(name=f"{self.name}/bn_in"))
        self.convolution = self.register(
            Conv1D(
                filters=self.filters,
                kernel_size=self.kernel_size,
                padding="same",
                activation="relu",
                name=f"{self.name}/conv",
            )
        )
        self.pooling = self.register(
            MaxPooling1D(pool_size=self.pool_size, padding="same", name=f"{self.name}/pool")
        )
        self.recurrent_norm = self.register(
            BatchNormalization(name=f"{self.name}/bn_rec")
        )
        self.recurrent = self.register(
            GRU(
                units=self.recurrent_units,
                activation="tanh",
                recurrent_activation="hard_sigmoid",
                return_sequences=False,
                name=f"{self.name}/gru",
            )
        )
        self.reshape = self.register(
            Reshape((1, self.recurrent_units), name=f"{self.name}/reshape")
        )
        self.dropout = self.register(
            Dropout(self.dropout_rate, name=f"{self.name}/dropout")
        )

    # ------------------------------------------------------------------ #
    def transform(self, inputs: Tensor, training: bool) -> Tuple[Tensor, Tensor]:
        """Run the block and also return the first BN output (the shortcut source)."""
        normalized = self.input_norm(inputs, training=training)
        features = self.convolution(normalized, training=training)
        features = self.pooling(features, training=training)
        features = self.recurrent_norm(features, training=training)
        features = self.recurrent(features, training=training)
        features = self.reshape(features, training=training)
        features = self.dropout(features, training=training)
        return features, normalized

    def call(self, inputs: Tensor, training: bool = False) -> Tensor:
        outputs, _ = self.transform(inputs, training)
        return outputs

    def parameter_layer_count(self) -> int:
        """Parameter layers contributed by this block."""
        return PARAMETER_LAYERS_PER_BLOCK


class ResidualBlock(PlainBlock):
    """Fig. 4(b): the plain block wrapped with a shortcut from the first BN output.

    Parameters
    ----------
    shortcut_from:
        ``"bn"`` (paper's design, Fig. 4(b)) takes the shortcut from the first
        BN output; ``"input"`` takes it from the raw block input.  The
        alternative is exercised by the shortcut-placement ablation bench.
    """

    def __init__(
        self,
        filters: int,
        kernel_size: int,
        recurrent_units: int,
        dropout_rate: float = 0.6,
        pool_size: int = 2,
        shortcut_from: str = "bn",
        name: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(
            filters=filters,
            kernel_size=kernel_size,
            recurrent_units=recurrent_units,
            dropout_rate=dropout_rate,
            pool_size=pool_size,
            name=name,
            seed=seed,
        )
        if shortcut_from not in ("bn", "input"):
            raise ValueError("shortcut_from must be 'bn' or 'input'")
        self.shortcut_from = shortcut_from
        self.merge = self.register(Add(name=f"{self.name}/add"))
        self._projection: Optional[Conv1D] = None

    def _project_shortcut(self, shortcut: Tensor, training: bool) -> Tensor:
        """Match the shortcut's shape to the block output ``(batch, 1, units)``."""
        batch, steps, channels = shortcut.shape
        if steps != 1:
            shortcut = reshape(
                global_average_pool1d(shortcut), (batch, 1, channels)
            )
        if channels != self.recurrent_units:
            if self._projection is None:
                self._projection = self.register(
                    Conv1D(
                        filters=self.recurrent_units,
                        kernel_size=1,
                        padding="same",
                        name=f"{self.name}/shortcut_proj",
                    )
                )
            shortcut = self._projection(shortcut, training=training)
        return shortcut

    def call(self, inputs: Tensor, training: bool = False) -> Tensor:
        outputs, normalized = self.transform(inputs, training)
        shortcut_source = normalized if self.shortcut_from == "bn" else inputs
        shortcut = self._project_shortcut(shortcut_source, training)
        return self.merge([outputs, shortcut], training=training)

    def parameter_layer_count(self) -> int:
        """Parameter layers contributed by this block (plus any projection)."""
        base = PARAMETER_LAYERS_PER_BLOCK
        return base + (1 if self._projection is not None else 0)
