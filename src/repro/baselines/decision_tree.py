"""CART decision tree.

The tree is the work-horse behind two of the paper's Table V baselines
(Random Forest and AdaBoost), so it is implemented once here with the knobs
those ensembles need: depth limits, minimum split sizes and per-node feature
subsampling (for the forest's decorrelation).

Split search is vectorised per (node, feature): candidate thresholds are the
midpoints between consecutive sorted values and the Gini impurity of every
candidate is computed from class-count prefix sums, so no Python-level loop
over samples is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .base import BaseClassifier

__all__ = ["DecisionTreeClassifier"]


@dataclass
class _Node:
    """A tree node; leaves carry a class distribution, internal nodes a split."""

    prediction: np.ndarray
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _gini_from_counts(counts: np.ndarray) -> np.ndarray:
    """Gini impurity of rows of class counts (vectorised)."""
    totals = counts.sum(axis=-1, keepdims=True)
    safe_totals = np.where(totals == 0, 1, totals)
    proportions = counts / safe_totals
    return 1.0 - np.sum(proportions ** 2, axis=-1)


class DecisionTreeClassifier(BaseClassifier):
    """Gini-impurity CART classifier.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (None grows until pure or ``min_samples_split``).
    min_samples_split:
        Smallest node that may be split further.
    min_samples_leaf:
        Smallest admissible child size for a split.
    max_features:
        Number of features examined per split: an int, ``"sqrt"``, or None
        for all features.
    seed:
        Seed for the per-node feature subsampling.
    """

    name = "decision-tree"

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if max_depth is not None and max_depth <= 0:
            raise ValueError("max_depth must be positive (or None)")
        if min_samples_split < 2 or min_samples_leaf < 1:
            raise ValueError("invalid min_samples_split / min_samples_leaf")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._root: Optional[_Node] = None
        self._n_classes = 0
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def _resolve_max_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if isinstance(self.max_features, (int, np.integer)):
            return int(np.clip(self.max_features, 1, n_features))
        raise ValueError(f"unsupported max_features: {self.max_features!r}")

    def _fit(self, features: np.ndarray, labels: np.ndarray) -> None:
        self._n_classes = int(labels.max()) + 1
        sample_weight = getattr(self, "_sample_weight", None)
        if sample_weight is None:
            sample_weight = np.ones(len(labels))
        self._root = self._grow(features, labels, sample_weight, depth=0)

    def fit_weighted(
        self, features: np.ndarray, labels: np.ndarray, sample_weight: np.ndarray
    ) -> "DecisionTreeClassifier":
        """Fit with per-sample weights (used by AdaBoost)."""
        self._sample_weight = np.asarray(sample_weight, dtype=np.float64)
        try:
            return self.fit(features, labels)
        finally:
            del self._sample_weight

    def _leaf(self, labels: np.ndarray, weights: np.ndarray) -> _Node:
        distribution = np.bincount(
            labels, weights=weights, minlength=self._n_classes
        )
        total = distribution.sum()
        if total > 0:
            distribution = distribution / total
        return _Node(prediction=distribution)

    def _grow(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        weights: np.ndarray,
        depth: int,
    ) -> _Node:
        node = self._leaf(labels, weights)
        if (
            len(labels) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or len(np.unique(labels)) == 1
        ):
            return node

        split = self._best_split(features, labels, weights)
        if split is None:
            return node
        feature, threshold = split
        left_mask = features[:, feature] <= threshold
        right_mask = ~left_mask
        if left_mask.sum() < self.min_samples_leaf or right_mask.sum() < self.min_samples_leaf:
            return node

        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(
            features[left_mask], labels[left_mask], weights[left_mask], depth + 1
        )
        node.right = self._grow(
            features[right_mask], labels[right_mask], weights[right_mask], depth + 1
        )
        return node

    def _best_split(
        self, features: np.ndarray, labels: np.ndarray, weights: np.ndarray
    ) -> Optional[Tuple[int, float]]:
        n_samples, n_features = features.shape
        candidates = self._rng.permutation(n_features)[
            : self._resolve_max_features(n_features)
        ]

        best_score = np.inf
        best: Optional[Tuple[int, float]] = None
        total_weight = weights.sum()

        for feature in candidates:
            order = np.argsort(features[:, feature], kind="stable")
            values = features[order, feature]
            ordered_labels = labels[order]
            ordered_weights = weights[order]

            # Weighted class counts accumulated from the left.
            one_hot = np.zeros((n_samples, self._n_classes))
            one_hot[np.arange(n_samples), ordered_labels] = ordered_weights
            left_counts = np.cumsum(one_hot, axis=0)
            total_counts = left_counts[-1]
            right_counts = total_counts - left_counts

            left_weight = np.cumsum(ordered_weights)
            right_weight = total_weight - left_weight

            # Valid split positions: between distinct consecutive values.
            distinct = values[1:] != values[:-1]
            if not distinct.any():
                continue
            positions = np.flatnonzero(distinct)

            gini_left = _gini_from_counts(left_counts[positions])
            gini_right = _gini_from_counts(right_counts[positions])
            split_weight_left = left_weight[positions]
            split_weight_right = right_weight[positions]
            score = (
                split_weight_left * gini_left + split_weight_right * gini_right
            ) / total_weight

            best_position = int(np.argmin(score))
            if score[best_position] < best_score - 1e-12:
                best_score = float(score[best_position])
                index = positions[best_position]
                threshold = 0.5 * (values[index] + values[index + 1])
                best = (int(feature), float(threshold))
        return best

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def _predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree has not been fitted")
        probabilities = np.empty((len(features), self._n_classes))
        for row, sample in enumerate(features):
            node = self._root
            while not node.is_leaf:
                node = node.left if sample[node.feature] <= node.threshold else node.right
            probabilities[row] = node.prediction
        return probabilities

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise RuntimeError("tree has not been fitted")
        return walk(self._root)
