"""Neural baselines of Table V: MLP, CNN and LSTM classifiers.

Each wraps a small :mod:`repro.nn` network behind the common
:class:`BaseClassifier` interface so the comparative-study harness can train
and evaluate them exactly like the classical models.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..nn.layers import (
    LSTM,
    BatchNormalization,
    Conv1D,
    Dense,
    Dropout,
    GlobalAveragePooling1D,
    MaxPooling1D,
)
from ..nn.models import Sequential
from ..nn.optimizers import RMSprop
from ..preprocessing.encoding import one_hot
from .base import BaseClassifier

__all__ = ["MLPClassifier", "CNNClassifier", "LSTMClassifier"]


class _NeuralClassifier(BaseClassifier):
    """Shared training loop for the neural baselines."""

    def __init__(
        self,
        epochs: int = 15,
        batch_size: int = 128,
        learning_rate: float = 0.005,
        seed: Optional[int] = 0,
    ) -> None:
        super().__init__()
        if epochs <= 0 or batch_size <= 0 or learning_rate <= 0:
            raise ValueError("epochs, batch_size and learning_rate must be positive")
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.seed = seed
        self.network: Optional[Sequential] = None

    # Hooks ------------------------------------------------------------- #
    def _build(self, n_features: int, n_classes: int) -> Sequential:
        raise NotImplementedError

    def _shape_inputs(self, features: np.ndarray) -> np.ndarray:
        """Default: flat ``(n, features)`` inputs (overridden by CNN/LSTM)."""
        return features

    # BaseClassifier hooks ---------------------------------------------- #
    def _fit(self, features: np.ndarray, labels: np.ndarray) -> None:
        n_classes = int(labels.max()) + 1
        self.network = self._build(features.shape[1], n_classes)
        self.network.compile(
            optimizer=RMSprop(learning_rate=self.learning_rate),
            loss="categorical_crossentropy",
            metrics=["accuracy"],
        )
        self.network.fit(
            self._shape_inputs(features),
            one_hot(labels, n_classes),
            epochs=self.epochs,
            batch_size=self.batch_size,
            verbose=0,
        )

    def _predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self.network is None:
            raise RuntimeError("network has not been fitted")
        return self.network.predict(self._shape_inputs(features))


class MLPClassifier(_NeuralClassifier):
    """Multi-layer perceptron on the flat encoded features.

    Two hidden ReLU layers with dropout — the classic feed-forward baseline
    of the paper's Table V (ACC 84.00 % on UNSW-NB15).
    """

    name = "mlp"

    def __init__(
        self,
        hidden_units: Sequence[int] = (128, 64),
        dropout_rate: float = 0.3,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if not hidden_units:
            raise ValueError("hidden_units must contain at least one layer size")
        self.hidden_units = tuple(int(u) for u in hidden_units)
        self.dropout_rate = float(dropout_rate)

    def _build(self, n_features: int, n_classes: int) -> Sequential:
        network = Sequential(name="mlp", seed=self.seed)
        for units in self.hidden_units:
            network.add(Dense(units, activation="relu"))
            if self.dropout_rate > 0:
                network.add(Dropout(self.dropout_rate))
        network.add(Dense(n_classes, activation="softmax"))
        return network


class CNNClassifier(_NeuralClassifier):
    """Plain convolutional network (spatial features only)."""

    name = "cnn"

    def __init__(
        self,
        filters: int = 64,
        kernel_size: int = 10,
        dropout_rate: float = 0.3,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.filters = int(filters)
        self.kernel_size = int(kernel_size)
        self.dropout_rate = float(dropout_rate)

    def _shape_inputs(self, features: np.ndarray) -> np.ndarray:
        return features[:, np.newaxis, :]

    def _build(self, n_features: int, n_classes: int) -> Sequential:
        network = Sequential(name="cnn", seed=self.seed)
        network.add(
            Conv1D(self.filters, self.kernel_size, padding="same", activation="relu")
        )
        network.add(MaxPooling1D(pool_size=2, padding="same"))
        network.add(BatchNormalization())
        network.add(
            Conv1D(self.filters, self.kernel_size, padding="same", activation="relu")
        )
        network.add(GlobalAveragePooling1D())
        if self.dropout_rate > 0:
            network.add(Dropout(self.dropout_rate))
        network.add(Dense(n_classes, activation="softmax"))
        return network


class LSTMClassifier(_NeuralClassifier):
    """Recurrent network (temporal features only)."""

    name = "lstm"

    def __init__(self, units: int = 64, dropout_rate: float = 0.3, **kwargs) -> None:
        super().__init__(**kwargs)
        self.units = int(units)
        self.dropout_rate = float(dropout_rate)

    def _shape_inputs(self, features: np.ndarray) -> np.ndarray:
        return features[:, np.newaxis, :]

    def _build(self, n_features: int, n_classes: int) -> Sequential:
        network = Sequential(name="lstm", seed=self.seed)
        network.add(LSTM(self.units, return_sequences=False))
        if self.dropout_rate > 0:
            network.add(Dropout(self.dropout_rate))
        network.add(Dense(n_classes, activation="softmax"))
        return network
