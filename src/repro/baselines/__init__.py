"""``repro.baselines`` — the classical and shallow-deep baselines of Table V.

Every classifier exposes the same ``fit`` / ``predict`` / ``predict_proba``
interface (see :class:`BaseClassifier`); the deep baselines LuNet and HAST-IDS
live in :mod:`repro.core` because they share the block machinery.
"""

from .adaboost import AdaBoostClassifier
from .base import BaseClassifier
from .decision_tree import DecisionTreeClassifier
from .neural import CNNClassifier, LSTMClassifier, MLPClassifier
from .random_forest import RandomForestClassifier
from .svm import KernelSVM, rbf_kernel

__all__ = [
    "BaseClassifier",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "AdaBoostClassifier",
    "KernelSVM",
    "rbf_kernel",
    "MLPClassifier",
    "CNNClassifier",
    "LSTMClassifier",
]
