"""Kernel (RBF) Support Vector Machine.

The paper's SVM baseline uses a Gaussian kernel and performs poorly on
UNSW-NB15 (ACC 74.80 %, FAR 7.73 %), illustrating the "low generalisation on
large-scale data" argument of Section V-H.

Implementation notes
--------------------
The binary sub-problem is the standard soft-margin dual

    max_a  sum(a) - 1/2 a^T Q a     s.t.  0 <= a_i <= C,

with ``Q_ij = y_i y_j K(x_i, x_j)``.  The bias term is folded into the kernel
(``K' = K + 1``), which removes the equality constraint and lets the dual be
solved by projected gradient ascent — fully vectorised over the training set,
which is what makes a pure-numpy SVM practical at the benchmark scale.
Multi-class problems are handled one-vs-rest.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import BaseClassifier

__all__ = ["KernelSVM", "rbf_kernel"]


def rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float) -> np.ndarray:
    """Gaussian (RBF) kernel matrix between the rows of ``a`` and ``b``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    squared_distances = (
        np.sum(a ** 2, axis=1)[:, None]
        + np.sum(b ** 2, axis=1)[None, :]
        - 2.0 * a @ b.T
    )
    np.maximum(squared_distances, 0.0, out=squared_distances)
    return np.exp(-gamma * squared_distances)


class KernelSVM(BaseClassifier):
    """One-vs-rest soft-margin SVM with an RBF kernel.

    Parameters
    ----------
    C:
        Soft-margin penalty.
    gamma:
        RBF bandwidth; ``"scale"`` uses ``1 / (n_features * var(X))`` like
        scikit-learn's default.
    max_iterations:
        Projected-gradient iterations per binary sub-problem.
    tolerance:
        Early-stopping threshold on the dual-variable update norm.
    max_train_samples:
        Training-set cap: kernel methods scale quadratically in memory, so
        larger training sets are subsampled (stratified) to this size.  This
        mirrors the practical limits noted for SVM in the paper's discussion.
    """

    name = "svm-rbf"

    def __init__(
        self,
        C: float = 1.0,
        gamma="scale",
        max_iterations: int = 300,
        tolerance: float = 1e-4,
        max_train_samples: int = 2000,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if C <= 0:
            raise ValueError("C must be positive")
        if max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        self.C = float(C)
        self.gamma = gamma
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        self.max_train_samples = int(max_train_samples)
        self.seed = seed
        self._support_vectors: Optional[np.ndarray] = None
        self._dual_coefficients: List[np.ndarray] = []
        self._gamma_value = 1.0

    # ------------------------------------------------------------------ #
    def _resolve_gamma(self, features: np.ndarray) -> float:
        if self.gamma == "scale":
            variance = float(features.var())
            return 1.0 / (features.shape[1] * variance) if variance > 0 else 1.0
        return float(self.gamma)

    def _subsample(self, features: np.ndarray, labels: np.ndarray):
        if len(features) <= self.max_train_samples:
            return features, labels
        rng = np.random.default_rng(self.seed)
        selected: List[np.ndarray] = []
        fraction = self.max_train_samples / len(features)
        for class_value in np.unique(labels):
            class_indices = np.flatnonzero(labels == class_value)
            keep = max(1, int(round(len(class_indices) * fraction)))
            selected.append(rng.choice(class_indices, size=keep, replace=False))
        indices = np.concatenate(selected)
        rng.shuffle(indices)
        return features[indices], labels[indices]

    def _solve_binary(self, kernel: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Projected gradient ascent on the (bias-folded) dual problem."""
        quadratic = kernel * np.outer(targets, targets)
        # Lipschitz constant of the gradient: largest eigenvalue bound via the
        # matrix's row-sum norm (cheap and safe).
        step = 1.0 / max(float(np.abs(quadratic).sum(axis=1).max()), 1e-12)
        alpha = np.zeros(len(targets))
        for _ in range(self.max_iterations):
            gradient = 1.0 - quadratic @ alpha
            updated = np.clip(alpha + step * gradient, 0.0, self.C)
            change = float(np.linalg.norm(updated - alpha))
            alpha = updated
            if change < self.tolerance:
                break
        return alpha * targets

    def _fit(self, features: np.ndarray, labels: np.ndarray) -> None:
        features, labels = self._subsample(features, labels)
        self._gamma_value = self._resolve_gamma(features)
        self._support_vectors = features
        kernel = rbf_kernel(features, features, self._gamma_value) + 1.0
        n_classes = int(labels.max()) + 1
        self._n_classes = n_classes
        self._dual_coefficients = []
        for class_index in range(n_classes):
            targets = np.where(labels == class_index, 1.0, -1.0)
            self._dual_coefficients.append(self._solve_binary(kernel, targets))

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """One-vs-rest margin scores, shape ``(n_samples, n_classes)``."""
        self._require_fitted()
        features = self._validate_features(features)
        kernel = rbf_kernel(features, self._support_vectors, self._gamma_value) + 1.0
        return np.column_stack(
            [kernel @ coefficients for coefficients in self._dual_coefficients]
        )

    def _predict_proba(self, features: np.ndarray) -> np.ndarray:
        scores = self.decision_function(features)
        # Softmax over the margins gives a usable (if uncalibrated) probability.
        shifted = scores - scores.max(axis=1, keepdims=True)
        exponentials = np.exp(shifted)
        return exponentials / exponentials.sum(axis=1, keepdims=True)

    def _predict(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.decision_function(features), axis=1)
