"""Common interface for the Table V baseline classifiers.

Every baseline implements the scikit-learn style ``fit`` / ``predict`` /
``predict_proba`` trio on flat feature matrices so the comparative-study
harness can treat the classical models and the deep models uniformly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["BaseClassifier"]


class BaseClassifier:
    """Abstract multi-class classifier over ``(n_samples, n_features)`` inputs."""

    name = "base"

    def __init__(self) -> None:
        self.classes_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Template methods
    # ------------------------------------------------------------------ #
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "BaseClassifier":
        """Fit the classifier; labels are arbitrary integer class ids."""
        features, labels = self._validate(features, labels)
        self.classes_ = np.unique(labels)
        encoded = np.searchsorted(self.classes_, labels)
        self._fit(features, encoded)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted class ids (in the label space passed to ``fit``)."""
        self._require_fitted()
        features = self._validate_features(features)
        encoded = self._predict(features)
        return self.classes_[encoded]

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class-probability matrix with columns ordered like ``classes_``."""
        self._require_fitted()
        features = self._validate_features(features)
        return self._predict_proba(features)

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Plain multi-class accuracy."""
        return float(np.mean(self.predict(features) == np.asarray(labels)))

    # ------------------------------------------------------------------ #
    # Hooks implemented by subclasses
    # ------------------------------------------------------------------ #
    def _fit(self, features: np.ndarray, encoded_labels: np.ndarray) -> None:
        raise NotImplementedError

    def _predict(self, features: np.ndarray) -> np.ndarray:
        """Default: argmax of ``_predict_proba``."""
        return np.argmax(self._predict_proba(features), axis=1)

    def _predict_proba(self, features: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Validation helpers
    # ------------------------------------------------------------------ #
    def _require_fitted(self) -> None:
        if self.classes_ is None:
            raise RuntimeError(f"{type(self).__name__} must be fitted before prediction")

    @staticmethod
    def _validate_features(features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 3 and features.shape[1] == 1:
            features = features.reshape(features.shape[0], -1)
        if features.ndim != 2:
            raise ValueError(
                f"expected a (samples, features) matrix, got shape {features.shape}"
            )
        return features

    def _validate(self, features: np.ndarray, labels: np.ndarray):
        features = self._validate_features(features)
        labels = np.asarray(labels).reshape(-1)
        if len(features) != len(labels):
            raise ValueError(
                f"features and labels lengths differ: {len(features)} vs {len(labels)}"
            )
        if len(features) == 0:
            raise ValueError("cannot fit on an empty dataset")
        return features, labels.astype(np.int64)

    @property
    def num_classes(self) -> int:
        self._require_fitted()
        return len(self.classes_)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
