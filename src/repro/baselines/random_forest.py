"""Random Forest (Breiman-style bagging of decorrelated CART trees).

One of the stronger classical baselines in Table V (ACC 84.59 % on UNSW-NB15
in the paper) — good accuracy but a visibly higher false-alarm rate than
Pelican.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import BaseClassifier
from .decision_tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(BaseClassifier):
    """Bagged ensemble of CART trees with per-split feature subsampling.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth:
        Depth limit per tree.
    max_features:
        Features examined per split (default ``"sqrt"``, the standard forest
        setting).
    bootstrap_fraction:
        Fraction of the training set drawn (with replacement) per tree.
    seed:
        Seed for bootstrapping and feature subsampling.
    """

    name = "random-forest"

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: Optional[int] = 12,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap_fraction: float = 1.0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if n_estimators <= 0:
            raise ValueError("n_estimators must be positive")
        if not 0.0 < bootstrap_fraction <= 1.0:
            raise ValueError("bootstrap_fraction must be in (0, 1]")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap_fraction = bootstrap_fraction
        self.seed = seed
        self.estimators_: List[DecisionTreeClassifier] = []

    def _fit(self, features: np.ndarray, labels: np.ndarray) -> None:
        rng = np.random.default_rng(self.seed)
        n_samples = len(features)
        n_bootstrap = max(1, int(round(n_samples * self.bootstrap_fraction)))
        self.estimators_ = []
        self._n_classes = int(labels.max()) + 1
        for index in range(self.n_estimators):
            sample_indices = rng.integers(0, n_samples, size=n_bootstrap)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(features[sample_indices], labels[sample_indices])
            self.estimators_.append(tree)

    def _predict_proba(self, features: np.ndarray) -> np.ndarray:
        if not self.estimators_:
            raise RuntimeError("forest has not been fitted")
        votes = np.zeros((len(features), self._n_classes))
        for tree in self.estimators_:
            tree_probabilities = tree.predict_proba(features)
            # Trees may have seen a subset of classes; align by the tree's own
            # class ids (which live in the forest's encoded label space).
            votes[:, tree.classes_] += tree_probabilities
        return votes / len(self.estimators_)
