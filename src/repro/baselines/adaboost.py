"""AdaBoost (multi-class SAMME) over shallow CART trees.

The weakest baseline in the paper's Table V (ACC 73.19 %, FAR 22.11 % on
UNSW-NB15): boosting of weak learners struggles with the heavily imbalanced
attack mix, which is exactly the behaviour the comparative bench reproduces.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import BaseClassifier
from .decision_tree import DecisionTreeClassifier

__all__ = ["AdaBoostClassifier"]


class AdaBoostClassifier(BaseClassifier):
    """SAMME AdaBoost with decision stumps / shallow trees as weak learners.

    Parameters
    ----------
    n_estimators:
        Maximum number of boosting rounds (training stops early if a learner
        reaches zero weighted error or becomes no better than chance).
    max_depth:
        Depth of each weak learner (1 = decision stumps).
    learning_rate:
        Shrinkage applied to each learner's vote weight.
    """

    name = "adaboost"

    def __init__(
        self,
        n_estimators: int = 40,
        max_depth: int = 1,
        learning_rate: float = 1.0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if n_estimators <= 0 or max_depth <= 0:
            raise ValueError("n_estimators and max_depth must be positive")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.n_estimators = int(n_estimators)
        self.max_depth = int(max_depth)
        self.learning_rate = float(learning_rate)
        self.seed = seed
        self.estimators_: List[DecisionTreeClassifier] = []
        self.estimator_weights_: List[float] = []

    def _fit(self, features: np.ndarray, labels: np.ndarray) -> None:
        rng = np.random.default_rng(self.seed)
        n_samples = len(features)
        self._n_classes = int(labels.max()) + 1
        weights = np.full(n_samples, 1.0 / n_samples)
        self.estimators_ = []
        self.estimator_weights_ = []

        for round_index in range(self.n_estimators):
            learner = DecisionTreeClassifier(
                max_depth=self.max_depth,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            learner.fit_weighted(features, labels, weights)
            predictions = learner.predict(features)
            incorrect = predictions != labels
            error = float(np.dot(weights, incorrect))

            if error <= 0.0:
                # Perfect learner: give it a large vote and stop boosting.
                self.estimators_.append(learner)
                self.estimator_weights_.append(10.0)
                break
            chance = 1.0 - 1.0 / self._n_classes
            if error >= chance:
                # No better than random guessing; SAMME stops here.
                if not self.estimators_:
                    self.estimators_.append(learner)
                    self.estimator_weights_.append(1.0)
                break

            alpha = self.learning_rate * (
                np.log((1.0 - error) / error) + np.log(self._n_classes - 1.0)
            )
            self.estimators_.append(learner)
            self.estimator_weights_.append(float(alpha))

            weights *= np.exp(alpha * incorrect)
            weights /= weights.sum()

    def _predict_proba(self, features: np.ndarray) -> np.ndarray:
        if not self.estimators_:
            raise RuntimeError("AdaBoost has not been fitted")
        scores = np.zeros((len(features), self._n_classes))
        for learner, alpha in zip(self.estimators_, self.estimator_weights_):
            predictions = learner.predict(features)
            scores[np.arange(len(features)), predictions] += alpha
        totals = scores.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return scores / totals
