"""Reproduction of "Pelican: A Deep Residual Network for Network Intrusion Detection".

The package is organised as a layered system:

* :mod:`repro.nn` — a from-scratch neural-network framework (autodiff, layers,
  optimizers, training loop) substituting for TensorFlow/Keras.
* :mod:`repro.data` — synthetic NSL-KDD and UNSW-NB15 traffic generators that
  reproduce the real datasets' schemas and class structure.
* :mod:`repro.preprocessing` — one-hot encoding, standardization and k-fold
  splitting (the paper's Section V-A pipeline).
* :mod:`repro.core` — the paper's contribution: plain/residual blocks, the
  Plain-21/41 and Residual-21/41 (Pelican) networks, LuNet and HAST-IDS.
* :mod:`repro.baselines` — classical ML baselines for the comparative study.
* :mod:`repro.metrics` — ACC / detection-rate / false-alarm-rate metrics.
* :mod:`repro.experiments` — the harness regenerating every table and figure.
* :mod:`repro.serving` — the streaming detection service (micro-batching,
  cached preprocessing, graph-free fast inference, rolling monitoring).
* :mod:`repro.scenarios` — the composable scenario library: declarative
  traffic episodes (floods, low-and-slow attacks, prior shifts, the
  cross-dataset fleet) and the suite that sweeps them across execution
  models (see ``docs/SCENARIOS.md``).
"""

__version__ = "1.1.0"

__all__ = [
    "nn",
    "data",
    "preprocessing",
    "core",
    "baselines",
    "metrics",
    "experiments",
    "serving",
    "scenarios",
    "__version__",
]
