"""Struct-of-arrays container for packet-level events.

The ingestion front-end consumes *events* — one row per captured packet —
and aggregates them into per-flow feature rows (see
:mod:`repro.ingest.flows`).  :class:`PacketEvents` is the columnar batch
format the whole layer speaks: parallel numpy arrays, one entry per
packet, in **capture order** (array order; timestamps are informational
and may be locally out of order, exactly like a real capture feed).

Fields
------
``time``
    Capture timestamp in seconds (float64).  Used for flow durations and
    idle eviction, *not* for ordering.
``src_host`` / ``dst_host`` / ``src_port`` / ``dst_port``
    Integer endpoint identifiers; together with ``protocol`` they form the
    5-tuple flow key.
``size``
    Bytes on the wire.
``direction``
    ``+1`` forward (initiator → responder), ``-1`` backward.
``flags``
    Bitmask: :data:`FLAG_SYN` (connection open), :data:`FLAG_FIN` (flow
    terminator — the next packet with the same 5-tuple opens a *new*
    flow) and :data:`FLAG_ERR` (the packet belongs to an error-state
    exchange; feeds the ``serror``-style window rates).
``protocol`` / ``service`` / ``state`` / ``label``
    Per-packet strings (object arrays).  ``protocol``/``service`` are read
    from a flow's *first* packet, ``state`` from its *last* (how the
    connection ended), matching
    :data:`repro.data.schema.EVENT_CATEGORICAL_BINDINGS`.  ``label`` is the
    ground-truth class carried through for evaluation.
``payload``
    ``(n, payload_width)`` float64 block of opaque per-packet feature
    fragments, summed per flow by the extractor.  The deterministic
    lowering (:mod:`repro.ingest.lowering`) uses it to round-trip the
    generator's numeric features bit for bit; real traces leave the width
    at 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = ["FLAG_SYN", "FLAG_FIN", "FLAG_ERR", "PacketEvents"]

FLAG_SYN = np.uint8(1)
FLAG_FIN = np.uint8(2)
FLAG_ERR = np.uint8(4)


@dataclass
class PacketEvents:
    """A batch of packet events (see module docstring for field semantics)."""

    time: np.ndarray
    src_host: np.ndarray
    dst_host: np.ndarray
    src_port: np.ndarray
    dst_port: np.ndarray
    size: np.ndarray
    direction: np.ndarray
    flags: np.ndarray
    protocol: np.ndarray
    service: np.ndarray
    state: np.ndarray
    label: np.ndarray
    payload: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.time = np.asarray(self.time, dtype=np.float64)
        if self.time.ndim != 1:
            raise ValueError("event columns must be 1-D arrays")
        n = len(self.time)
        for name in ("src_host", "dst_host", "src_port", "dst_port"):
            setattr(self, name, np.asarray(getattr(self, name), dtype=np.int64))
        self.size = np.asarray(self.size, dtype=np.float64)
        self.direction = np.asarray(self.direction, dtype=np.int8)
        self.flags = np.asarray(self.flags, dtype=np.uint8)
        for name in ("protocol", "service", "state", "label"):
            setattr(self, name, np.asarray(getattr(self, name), dtype=object))
        if self.payload is None:
            self.payload = np.zeros((n, 0))
        self.payload = np.asarray(self.payload, dtype=np.float64)
        if self.payload.ndim != 2:
            raise ValueError("payload must be a 2-D array (events x fragments)")
        for name in (
            "src_host", "dst_host", "src_port", "dst_port", "size",
            "direction", "flags", "protocol", "service", "state", "label",
        ):
            if len(getattr(self, name)) != n:
                raise ValueError(f"event column {name!r} has the wrong length")
        if self.payload.shape[0] != n:
            raise ValueError("payload has the wrong number of rows")

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.time)

    @property
    def payload_width(self) -> int:
        return self.payload.shape[1]

    @classmethod
    def empty(cls, payload_width: int = 0) -> "PacketEvents":
        """A valid zero-event batch (e.g. a quiet capture interval)."""
        return cls(
            time=np.empty(0),
            src_host=np.empty(0, np.int64),
            dst_host=np.empty(0, np.int64),
            src_port=np.empty(0, np.int64),
            dst_port=np.empty(0, np.int64),
            size=np.empty(0),
            direction=np.empty(0, np.int8),
            flags=np.empty(0, np.uint8),
            protocol=np.empty(0, object),
            service=np.empty(0, object),
            state=np.empty(0, object),
            label=np.empty(0, object),
            payload=np.zeros((0, payload_width)),
        )

    def subset(self, indices: Sequence[int]) -> "PacketEvents":
        """Events at ``indices`` (capture order is the selection order)."""
        indices = np.asarray(indices)
        if indices.dtype != bool:
            indices = indices.astype(np.int64, copy=False)
        return PacketEvents(
            **{
                name: getattr(self, name)[indices]
                for name in (
                    "time", "src_host", "dst_host", "src_port", "dst_port",
                    "size", "direction", "flags", "protocol", "service",
                    "state", "label", "payload",
                )
            }
        )

    @staticmethod
    def concatenate(parts: Iterable["PacketEvents"]) -> "PacketEvents":
        """Splice several event batches, preserving capture order."""
        parts = list(parts)
        if not parts:
            raise ValueError("cannot concatenate an empty list of event batches")
        widths = {part.payload_width for part in parts}
        if len(widths) != 1:
            raise ValueError(f"payload widths differ across parts: {sorted(widths)}")
        return PacketEvents(
            **{
                name: np.concatenate([getattr(part, name) for part in parts])
                for name in (
                    "time", "src_host", "dst_host", "src_port", "dst_port",
                    "size", "direction", "flags", "protocol", "service",
                    "state", "label",
                )
            },
            payload=np.concatenate([part.payload for part in parts], axis=0),
        )

    def __repr__(self) -> str:
        return (
            f"PacketEvents(events={len(self)}, payload_width={self.payload_width})"
        )
