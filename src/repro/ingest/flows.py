"""Sliding-window flow aggregation: packet events → per-flow statistics.

:class:`FlowTable` is the stateful heart of the ingestion front-end.  It
consumes :class:`~repro.ingest.events.PacketEvents` batches in capture
order and maintains:

* **open flows**, keyed by the 5-tuple ``(src_host, dst_host, src_port,
  dst_port, protocol)``.  A flow accumulates packet/byte counters
  (forward/backward split), SYN and error counts, first/last timestamps
  and the per-packet ``payload`` fragment sum.  A packet carrying
  :data:`~repro.ingest.events.FLAG_FIN` closes its flow; the next packet
  with the same key opens a fresh one.  Flows idle longer than
  ``idle_timeout`` (against the table clock, the maximum timestamp seen)
  are evicted — closed without a FIN — at the end of the ``absorb`` call;
* a **trailing window of recently closed flows** (the last ``window``
  closures), from which each flow receives its connection-context
  statistics at close time, mirroring the NSL-KDD two-second/100-connection
  features: ``count`` (closed flows to the same destination host),
  ``srv_count`` (same host *and* service), ``serror_rate`` (fraction of
  those same-host flows that saw an error state), ``same_srv_rate`` and
  ``diff_srv_rate``.  :meth:`FlowTable.port_entropy` summarises the
  window's destination-port spread — the scan/flood indicator.

**Hot path contract**: ``absorb`` does all per-packet work with numpy —
5-tuple grouping via ``np.unique``, FIN-based sub-flow segmentation via
cumulative sums, per-segment reductions via ``ufunc.reduceat`` and the
trailing-window statistics via an offset-key ``searchsorted`` — so Python
touches *flows* (segment merge bookkeeping), never packets.  The fuzz
suite (`tests/ingest/test_flow_table_fuzz.py`) holds the whole thing equal
to a naive per-event Python oracle.

Ordering semantics (the determinism contract, mirrored by the oracle):

* flows open in capture order of their first packet and are numbered by a
  global ``open_seq``;
* within one ``absorb`` call, FIN-closed flows close in capture order of
  their closing packet; idle evictions follow, in ``open_seq`` order;
* window statistics are computed at close time over the last ``window``
  closures *including the flow itself*;
* :meth:`drain` returns closed flows sorted by ``open_seq`` — for a
  lowered record batch this is exactly the original record order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .events import FLAG_ERR, FLAG_FIN, FLAG_SYN, PacketEvents

__all__ = ["FlowStats", "FlowTable"]

#: Column names of a FlowStats batch, in a fixed order (used by digests).
_STAT_FIELDS = (
    "open_seq", "src_host", "dst_host", "src_port", "dst_port",
    "protocol", "service", "state", "label",
    "first_time", "last_time", "duration",
    "n_packets", "n_fwd", "n_bwd", "bytes_fwd", "bytes_bwd",
    "syn_count", "err_count", "closed_by_fin",
    "count", "srv_count", "serror_rate", "same_srv_rate", "diff_srv_rate",
)


@dataclass
class FlowStats:
    """A batch of closed flows, one entry per flow (struct of arrays)."""

    open_seq: np.ndarray        # int64, global flow-open sequence number
    src_host: np.ndarray
    dst_host: np.ndarray
    src_port: np.ndarray
    dst_port: np.ndarray
    protocol: np.ndarray        # object, first packet
    service: np.ndarray         # object, first packet
    state: np.ndarray           # object, last packet (capture order)
    label: np.ndarray           # object, first packet
    first_time: np.ndarray
    last_time: np.ndarray
    duration: np.ndarray
    n_packets: np.ndarray
    n_fwd: np.ndarray
    n_bwd: np.ndarray
    bytes_fwd: np.ndarray
    bytes_bwd: np.ndarray
    syn_count: np.ndarray
    err_count: np.ndarray
    closed_by_fin: np.ndarray   # bool
    count: np.ndarray           # window: same-dst closures
    srv_count: np.ndarray       # window: same-dst, same-service closures
    serror_rate: np.ndarray     # window: erroring fraction of same-dst
    same_srv_rate: np.ndarray
    diff_srv_rate: np.ndarray
    payload: np.ndarray         # (n, payload_width) fragment sums

    def __len__(self) -> int:
        return len(self.open_seq)

    def field_names(self) -> Tuple[str, ...]:
        return _STAT_FIELDS


class _OpenFlow:
    """Accumulator for a flow still open across ``absorb`` boundaries."""

    __slots__ = (
        "open_seq", "first_time", "last_time", "n_packets", "n_fwd", "n_bwd",
        "bytes_fwd", "bytes_bwd", "syn_count", "err_count",
        "protocol", "service", "label", "payload",
        "src_host", "dst_host", "src_port", "dst_port",
    )

    def __init__(self, **kwargs) -> None:
        for name, value in kwargs.items():
            setattr(self, name, value)


def _trailing_group_stats(
    codes: np.ndarray, weights: np.ndarray, window: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per position ``p``: over the trailing ``window`` positions ending at
    ``p`` (inclusive), the number of entries sharing ``codes[p]`` and their
    ``weights`` sum.

    Vectorised via the offset-key trick: sort by ``(code, position)``, then
    the window lower bound of every element is one ``searchsorted`` of
    ``code * n + max(p - window + 1, 0)`` against the composite keys, and
    counts/sums fall out of rank and prefix-sum differences.
    """
    n = len(codes)
    if n == 0:
        return np.empty(0, np.int64), np.empty(0)
    pos = np.arange(n, dtype=np.int64)
    codes = np.asarray(codes, dtype=np.int64)
    order = np.lexsort((pos, codes))
    scode = codes[order]
    spos = pos[order]
    csum = np.cumsum(np.asarray(weights, dtype=np.float64)[order])
    composite = scode * n + spos
    lower = np.searchsorted(
        composite, scode * n + np.maximum(spos - window + 1, 0), side="left"
    )
    rank = np.arange(n, dtype=np.int64)
    counts_sorted = rank - lower + 1
    sums_sorted = csum - np.where(lower > 0, csum[lower - 1], 0.0)
    counts = np.empty(n, np.int64)
    sums = np.empty(n)
    counts[order] = counts_sorted
    sums[order] = sums_sorted
    return counts, sums


class FlowTable:
    """Windowed 5-tuple flow assembly over packet-event batches.

    Parameters
    ----------
    window:
        Width (in closed flows) of the trailing window behind ``count`` /
        ``srv_count`` / the rate features and :meth:`port_entropy`.
    idle_timeout:
        Seconds of inactivity (against the table clock — the maximum
        timestamp seen so far) after which an open flow is evicted at the
        end of an ``absorb`` call.  ``None`` disables eviction.
    payload_width:
        Width of the per-packet payload fragment block the table expects;
        batches must match.
    """

    def __init__(
        self,
        window: int = 100,
        idle_timeout: Optional[float] = None,
        payload_width: int = 0,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive when given")
        self.window = int(window)
        self.idle_timeout = idle_timeout
        self.payload_width = int(payload_width)
        self._open: Dict[Tuple, _OpenFlow] = {}
        self._next_seq = 0
        self._clock = -np.inf
        # Trailing window of closed flows (most recent last).
        self._hist_dst = np.empty(0, np.int64)
        self._hist_srv = np.empty(0, object)
        self._hist_err = np.empty(0, np.float64)
        self._hist_port = np.empty(0, np.int64)
        # Closed-but-undrained flows, one dict of column arrays per close
        # wave; drain() concatenates and sorts by open_seq.
        self._pending: List[Dict[str, np.ndarray]] = []
        self.packets_seen = 0
        self.flows_opened = 0
        self.flows_closed = 0
        self.flows_evicted = 0

    # ------------------------------------------------------------------ #
    @property
    def open_flows(self) -> int:
        return len(self._open)

    @property
    def pending_flows(self) -> int:
        return sum(len(chunk["open_seq"]) for chunk in self._pending)

    def port_entropy(self) -> float:
        """Shannon entropy (bits) of destination ports over the trailing
        window of closed flows; 0.0 while the window is empty."""
        if len(self._hist_port) == 0:
            return 0.0
        _, counts = np.unique(self._hist_port, return_counts=True)
        p = counts / counts.sum()
        return float(-np.sum(p * np.log2(p)))

    # ------------------------------------------------------------------ #
    def absorb(self, events: PacketEvents) -> int:
        """Fold one event batch into the table; returns flows closed.

        All per-packet work is vectorised (see module docstring); the
        Python loops below iterate *flow segments*, whose count is bounded
        by the number of flows touched, never by the packet count.
        """
        n = len(events)
        if n == 0:
            return 0
        if events.payload_width != self.payload_width:
            raise ValueError(
                f"payload width {events.payload_width} does not match the "
                f"table's {self.payload_width}"
            )
        self.packets_seen += n

        # --- 5-tuple grouping + FIN-based sub-flow segmentation --------- #
        proto_vocab, proto_codes = np.unique(events.protocol, return_inverse=True)
        key_matrix = np.stack(
            [
                events.src_host,
                events.dst_host,
                events.src_port,
                events.dst_port,
                proto_codes.astype(np.int64),
            ],
            axis=1,
        )
        unique_keys, key_of = np.unique(key_matrix, axis=0, return_inverse=True)
        key_of = key_of.reshape(-1)  # numpy 2.0 returns (n, 1) for axis uniques
        order = np.argsort(key_of, kind="stable")  # capture order within key
        skey = key_of[order]
        fin = (events.flags[order] & FLAG_FIN) != 0

        new_key = np.empty(n, bool)
        new_key[0] = True
        new_key[1:] = skey[1:] != skey[:-1]
        run_starts = np.flatnonzero(new_key)
        run_lengths = np.diff(np.r_[run_starts, n])
        # FINs strictly before each event within its key run: a FIN closes
        # the flow, so the sub-flow index is that running count.
        cum_fin = np.cumsum(fin)
        run_base = np.repeat(cum_fin[run_starts] - fin[run_starts], run_lengths)
        subflow = cum_fin - fin.astype(np.int64) - run_base

        new_seg = new_key.copy()
        new_seg[1:] |= subflow[1:] != subflow[:-1]
        seg_starts = np.flatnonzero(new_seg)
        seg_ends = np.r_[seg_starts[1:], n]
        n_seg = len(seg_starts)

        # --- per-segment reductions (all reduceat over sorted arrays) --- #
        t = events.time[order]
        size = events.size[order]
        forward = events.direction[order] >= 0
        flags = events.flags[order]
        seg_key = skey[seg_starts]
        seg_subflow = subflow[seg_starts]
        seg_packets = (seg_ends - seg_starts).astype(np.int64)
        seg_fwd = np.add.reduceat(forward.astype(np.int64), seg_starts)
        seg_bwd = seg_packets - seg_fwd
        seg_bytes_fwd = np.add.reduceat(np.where(forward, size, 0.0), seg_starts)
        seg_bytes_bwd = np.add.reduceat(np.where(forward, 0.0, size), seg_starts)
        seg_syn = np.add.reduceat(
            ((flags & FLAG_SYN) != 0).astype(np.int64), seg_starts
        )
        seg_err = np.add.reduceat(
            ((flags & FLAG_ERR) != 0).astype(np.int64), seg_starts
        )
        seg_tmin = np.minimum.reduceat(t, seg_starts)
        seg_tmax = np.maximum.reduceat(t, seg_starts)
        seg_has_fin = np.add.reduceat(fin.astype(np.int64), seg_starts) > 0
        seg_first = order[seg_starts]          # original index of first packet
        seg_last = order[seg_ends - 1]         # original index of last packet
        if self.payload_width:
            seg_payload = np.add.reduceat(
                events.payload[order], seg_starts, axis=0
            )
        else:
            seg_payload = np.zeros((n_seg, 0))
        seg_protocol = events.protocol[seg_first].copy()
        seg_service = events.service[seg_first].copy()
        seg_label = events.label[seg_first].copy()
        seg_state = events.state[seg_last].copy()

        key_rows = unique_keys[seg_key]

        def key_tuple(seg: int) -> Tuple:
            row = key_rows[seg]
            return (
                int(row[0]), int(row[1]), int(row[2]), int(row[3]),
                str(proto_vocab[row[4]]),
            )

        # --- merge with flows carried open from previous batches -------- #
        # Only a sub-flow-0 segment can continue an open flow, and each key
        # has at most one such segment per batch.
        continuation: List[Optional[_OpenFlow]] = [None] * n_seg
        if self._open:
            for seg in np.flatnonzero(seg_subflow == 0):
                acc = self._open.pop(key_tuple(seg), None)
                if acc is not None:
                    continuation[seg] = acc

        seg_seq = np.empty(n_seg, np.int64)
        is_new = np.array([acc is None for acc in continuation], dtype=bool)
        new_segs = np.flatnonzero(is_new)
        # New flows open in capture order of their first packet.
        opened = new_segs[np.argsort(seg_first[new_segs], kind="stable")]
        seg_seq[opened] = self._next_seq + np.arange(len(opened))
        self._next_seq += len(opened)
        self.flows_opened += len(opened)

        for seg, acc in enumerate(continuation):
            if acc is None:
                continue
            seg_seq[seg] = acc.open_seq
            seg_packets[seg] += acc.n_packets
            seg_fwd[seg] += acc.n_fwd
            seg_bwd[seg] += acc.n_bwd
            seg_bytes_fwd[seg] += acc.bytes_fwd
            seg_bytes_bwd[seg] += acc.bytes_bwd
            seg_syn[seg] += acc.syn_count
            seg_err[seg] += acc.err_count
            seg_tmin[seg] = min(seg_tmin[seg], acc.first_time)
            seg_tmax[seg] = max(seg_tmax[seg], acc.last_time)
            seg_protocol[seg] = acc.protocol
            seg_service[seg] = acc.service
            seg_label[seg] = acc.label
            if self.payload_width:
                seg_payload[seg] = acc.payload + seg_payload[seg]

        # --- segments without a FIN stay open (at most one per key) ----- #
        for seg in np.flatnonzero(~seg_has_fin):
            row = key_rows[seg]
            self._open[key_tuple(seg)] = _OpenFlow(
                open_seq=int(seg_seq[seg]),
                first_time=float(seg_tmin[seg]),
                last_time=float(seg_tmax[seg]),
                n_packets=int(seg_packets[seg]),
                n_fwd=int(seg_fwd[seg]),
                n_bwd=int(seg_bwd[seg]),
                bytes_fwd=float(seg_bytes_fwd[seg]),
                bytes_bwd=float(seg_bytes_bwd[seg]),
                syn_count=int(seg_syn[seg]),
                err_count=int(seg_err[seg]),
                protocol=seg_protocol[seg],
                service=seg_service[seg],
                label=seg_label[seg],
                payload=seg_payload[seg].copy() if self.payload_width else None,
                src_host=int(row[0]),
                dst_host=int(row[1]),
                src_port=int(row[2]),
                dst_port=int(row[3]),
            )

        # --- close wave: FIN closures in capture order, then evictions -- #
        closed_segs = np.flatnonzero(seg_has_fin)
        closed_segs = closed_segs[np.argsort(seg_last[closed_segs], kind="stable")]
        columns = {
            "open_seq": seg_seq[closed_segs],
            "src_host": key_rows[closed_segs, 0],
            "dst_host": key_rows[closed_segs, 1],
            "src_port": key_rows[closed_segs, 2],
            "dst_port": key_rows[closed_segs, 3],
            "protocol": seg_protocol[closed_segs],
            "service": seg_service[closed_segs],
            "state": seg_state[closed_segs],
            "label": seg_label[closed_segs],
            "first_time": seg_tmin[closed_segs],
            "last_time": seg_tmax[closed_segs],
            "n_packets": seg_packets[closed_segs],
            "n_fwd": seg_fwd[closed_segs],
            "n_bwd": seg_bwd[closed_segs],
            "bytes_fwd": seg_bytes_fwd[closed_segs],
            "bytes_bwd": seg_bytes_bwd[closed_segs],
            "syn_count": seg_syn[closed_segs],
            "err_count": seg_err[closed_segs],
            "closed_by_fin": np.ones(len(closed_segs), bool),
            "payload": seg_payload[closed_segs],
        }

        self._clock = max(self._clock, float(events.time.max()))
        evicted: List[_OpenFlow] = []
        if self.idle_timeout is not None and self._open:
            threshold = self._clock - self.idle_timeout
            stale = [
                key for key, acc in self._open.items()
                if acc.last_time < threshold
            ]
            evicted = sorted(
                (self._open.pop(key) for key in stale),
                key=lambda acc: acc.open_seq,
            )
            self.flows_evicted += len(evicted)

        self._emit_closed(columns, evicted)
        closed = len(closed_segs) + len(evicted)
        self.flows_closed += closed
        return closed

    def close_all(self) -> int:
        """Force-close every open flow (in ``open_seq`` order, no FIN).

        The batch-mode terminator: the extractor calls this when a capture
        interval ends so every flow of the interval becomes a feature row.
        """
        if not self._open:
            return 0
        remaining = sorted(self._open.values(), key=lambda acc: acc.open_seq)
        self._open.clear()
        empty = {
            name: np.empty(0, dtype)
            for name, dtype in (
                ("open_seq", np.int64), ("src_host", np.int64),
                ("dst_host", np.int64), ("src_port", np.int64),
                ("dst_port", np.int64), ("protocol", object),
                ("service", object), ("state", object), ("label", object),
                ("first_time", np.float64), ("last_time", np.float64),
                ("n_packets", np.int64), ("n_fwd", np.int64),
                ("n_bwd", np.int64), ("bytes_fwd", np.float64),
                ("bytes_bwd", np.float64), ("syn_count", np.int64),
                ("err_count", np.int64), ("closed_by_fin", bool),
            )
        }
        empty["payload"] = np.zeros((0, self.payload_width))
        self._emit_closed(empty, remaining)
        self.flows_closed += len(remaining)
        return len(remaining)

    # ------------------------------------------------------------------ #
    def _emit_closed(
        self, columns: Dict[str, np.ndarray], evicted: List[_OpenFlow]
    ) -> None:
        """Append one close wave (FIN closures + evictions, already in close
        order) to the pending store, attaching window statistics."""
        if evicted:
            tail = {
                "open_seq": np.array([a.open_seq for a in evicted], np.int64),
                "src_host": np.array([a.src_host for a in evicted], np.int64),
                "dst_host": np.array([a.dst_host for a in evicted], np.int64),
                "src_port": np.array([a.src_port for a in evicted], np.int64),
                "dst_port": np.array([a.dst_port for a in evicted], np.int64),
                "protocol": np.array([a.protocol for a in evicted], object),
                "service": np.array([a.service for a in evicted], object),
                # An evicted flow never saw a terminating packet; its last
                # observed state is unknowable from the trace, so the state
                # column reports the eviction itself.
                "state": np.array(["EVICTED"] * len(evicted), object),
                "label": np.array([a.label for a in evicted], object),
                "first_time": np.array([a.first_time for a in evicted]),
                "last_time": np.array([a.last_time for a in evicted]),
                "n_packets": np.array([a.n_packets for a in evicted], np.int64),
                "n_fwd": np.array([a.n_fwd for a in evicted], np.int64),
                "n_bwd": np.array([a.n_bwd for a in evicted], np.int64),
                "bytes_fwd": np.array([a.bytes_fwd for a in evicted]),
                "bytes_bwd": np.array([a.bytes_bwd for a in evicted]),
                "syn_count": np.array([a.syn_count for a in evicted], np.int64),
                "err_count": np.array([a.err_count for a in evicted], np.int64),
                "closed_by_fin": np.zeros(len(evicted), bool),
                "payload": (
                    np.stack([a.payload for a in evicted])
                    if self.payload_width
                    else np.zeros((len(evicted), 0))
                ),
            }
            columns = {
                name: np.concatenate([columns[name], tail[name]])
                if name != "payload"
                else np.concatenate([columns[name], tail[name]], axis=0)
                for name in columns
            }
        m = len(columns["open_seq"])
        if m == 0:
            return

        # --- trailing-window statistics over history + this wave -------- #
        dst = np.concatenate([self._hist_dst, columns["dst_host"]])
        srv = np.concatenate([self._hist_srv, columns["service"]])
        err = np.concatenate(
            [self._hist_err, (columns["err_count"] > 0).astype(np.float64)]
        )
        _, dst_codes = np.unique(dst, return_inverse=True)
        srv_vocab, srv_codes = np.unique(srv, return_inverse=True)
        pair_codes = dst_codes.astype(np.int64) * max(len(srv_vocab), 1) + srv_codes
        count, err_sum = _trailing_group_stats(dst_codes, err, self.window)
        srv_count, _ = _trailing_group_stats(
            pair_codes, np.zeros(len(pair_codes)), self.window
        )
        new = slice(len(self._hist_dst), None)
        columns["count"] = count[new]
        columns["srv_count"] = srv_count[new]
        columns["serror_rate"] = err_sum[new] / count[new]
        columns["same_srv_rate"] = srv_count[new] / count[new]
        columns["diff_srv_rate"] = 1.0 - columns["same_srv_rate"]
        columns["duration"] = columns["last_time"] - columns["first_time"]
        self._pending.append(columns)

        keep = self.window
        self._hist_dst = dst[-keep:]
        self._hist_srv = srv[-keep:]
        self._hist_err = err[-keep:]
        self._hist_port = np.concatenate(
            [self._hist_port, columns["dst_port"]]
        )[-keep:]

    # ------------------------------------------------------------------ #
    def drain(self) -> FlowStats:
        """Return (and clear) every closed flow, sorted by ``open_seq``."""
        if not self._pending:
            chunks = [
                {
                    name: np.empty(0, object)
                    if name in ("protocol", "service", "state", "label")
                    else np.empty(0, bool)
                    if name == "closed_by_fin"
                    else np.empty(0, np.int64)
                    if name in (
                        "open_seq", "src_host", "dst_host", "src_port",
                        "dst_port", "n_packets", "n_fwd", "n_bwd",
                        "syn_count", "err_count", "count", "srv_count",
                    )
                    else np.empty(0)
                    for name in _STAT_FIELDS
                }
            ]
            chunks[0]["payload"] = np.zeros((0, self.payload_width))
        else:
            chunks = self._pending
            self._pending = []
        merged = {
            name: np.concatenate([chunk[name] for chunk in chunks])
            for name in _STAT_FIELDS
        }
        merged["payload"] = np.concatenate(
            [chunk["payload"] for chunk in chunks], axis=0
        )
        flow_order = np.argsort(merged["open_seq"], kind="stable")
        return FlowStats(
            **{
                name: merged[name][flow_order]
                for name in _STAT_FIELDS + ("payload",)
            }
        )
