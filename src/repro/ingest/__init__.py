"""``repro.ingest`` — the raw-event ingestion front-end.

The paper's detector consumes 41/42-feature NSL-KDD/UNSW-NB15 rows; a
deployed IDS consumes packets and must *build* those rows.  This package
is that missing stage, vectorised end to end:

* :mod:`repro.ingest.events` — :class:`PacketEvents`, the columnar
  per-packet batch format (5-tuple endpoints, sizes, direction,
  SYN/FIN/ERR flags, protocol/service/state strings, optional payload
  fragment block), plus the flag constants;
* :mod:`repro.ingest.flows` — :class:`FlowTable`, sliding-window per-flow
  aggregation keyed by 5-tuple: packet/byte/SYN/error counters, FIN-based
  flow segmentation, idle eviction and the trailing-window connection
  context (``count``/``srv_count``/``serror_rate``/``same_srv_rate``/
  port entropy).  All per-packet work is numpy (``np.unique`` grouping,
  ``reduceat`` reductions, offset-key ``searchsorted`` window stats) —
  Python touches flows, never packets;
* :mod:`repro.ingest.extractor` — :class:`FlowFeatureExtractor`, closed
  flows → schema-conforming :class:`~repro.data.dataset.TrafficRecords`
  (payload-replay or derived-feature numeric modes; out-of-schema
  categorical values flow into the serving layer's unknown-categorical
  drift counters);
* :mod:`repro.ingest.lowering` — the deterministic bridge back to the
  synthetic corpus: :func:`lower_records` turns featurized records into a
  seeded packet trace whose aggregation reproduces them **bit for bit**,
  and :class:`EventTrafficStream` lifts a whole
  :class:`~repro.data.generator.TrafficStream` scenario to the event
  plane while still iterating as ordinary
  :class:`~repro.data.generator.StreamBatch` values — so every serving
  execution model scores from raw events unchanged.

Serving entry points: :meth:`repro.serving.DetectionService.run_event_stream`
and :meth:`repro.serving.sharding.ShardedDetectionService.run_event_stream`;
the packet-level scenario preset is
:func:`repro.scenarios.syn_flood_event_scenario`.  Semantics and the
determinism contract: ``docs/SERVING.md`` (raw-event ingestion section).
"""

from .events import FLAG_ERR, FLAG_FIN, FLAG_SYN, PacketEvents
from .extractor import FlowFeatureExtractor
from .flows import FlowStats, FlowTable
from .lowering import EventBatch, EventTrafficStream, lower_records

__all__ = [
    "FLAG_SYN",
    "FLAG_FIN",
    "FLAG_ERR",
    "PacketEvents",
    "FlowStats",
    "FlowTable",
    "FlowFeatureExtractor",
    "lower_records",
    "EventBatch",
    "EventTrafficStream",
]
