"""Flow statistics → dataset-schema feature rows.

:class:`FlowFeatureExtractor` closes the gap between a packet capture and
the detector's input contract: it owns a :class:`~repro.ingest.flows.FlowTable`,
feeds it event batches and assembles the closed flows into
:class:`~repro.data.dataset.TrafficRecords` conforming to an NSL-KDD or
UNSW-NB15 schema — the rows :class:`~repro.serving.service.DetectionService`
scores.

Two numeric modes:

* **replay** (default) — the numeric columns are the per-flow sums of the
  events' ``payload`` fragment block (which must be as wide as the
  schema's numeric feature list).  This is the mode the deterministic
  lowering uses: fragments are constructed so their per-flow sum
  reproduces the generator's features *bit for bit*.
* **derive** (``derive_features=True``) — the packet-observable subset of
  the schema's numeric columns is computed from the flow statistics
  themselves (durations, packet/byte counts, the trailing-window
  ``count``/``srv_count``/rate features); everything a capture cannot see
  stays zero.  This is what a from-scratch deployment over a real trace
  would run.

Categorical columns follow the schema's event bindings
(:data:`repro.data.schema.EVENT_CATEGORICAL_BINDINGS`): protocol and
service from a flow's first packet, the TCP state/flag summary from its
last.  Out-of-schema protocol/service/state values are passed through
untouched — downstream, :class:`~repro.serving.service.CachedPreprocessor`
zero-encodes and *counts* them, so vocabulary drift in a raw feed surfaces
in the service report instead of crashing the pipeline.  Event ``label``
values, by contrast, must be schema classes (they are ground truth).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Union

import numpy as np

from ..data.dataset import TrafficRecords
from ..data.schema import DatasetSchema, get_schema
from .events import PacketEvents
from .flows import FlowStats, FlowTable

__all__ = ["FlowFeatureExtractor"]


def _safe_rate(stats: FlowStats) -> np.ndarray:
    duration = stats.duration
    packets = stats.n_packets.astype(np.float64)
    return np.divide(
        packets, duration, out=np.zeros_like(duration), where=duration > 0
    )


#: Packet-observable numeric columns per schema, for derive mode: column
#: name → function of a :class:`FlowStats` batch.  Everything else in the
#: schema (content features like ``num_failed_logins``, TTLs, jitter) is
#: not derivable from this event model and stays zero.
_DERIVED_COLUMNS: Dict[str, Dict[str, Callable[[FlowStats], np.ndarray]]] = {
    "nsl-kdd": {
        "duration": lambda s: s.duration,
        "src_bytes": lambda s: s.bytes_fwd,
        "dst_bytes": lambda s: s.bytes_bwd,
        "count": lambda s: s.count.astype(np.float64),
        "srv_count": lambda s: s.srv_count.astype(np.float64),
        "serror_rate": lambda s: s.serror_rate,
        "same_srv_rate": lambda s: s.same_srv_rate,
        "diff_srv_rate": lambda s: s.diff_srv_rate,
    },
    "unsw-nb15": {
        "dur": lambda s: s.duration,
        "spkts": lambda s: s.n_fwd.astype(np.float64),
        "dpkts": lambda s: s.n_bwd.astype(np.float64),
        "sbytes": lambda s: s.bytes_fwd,
        "dbytes": lambda s: s.bytes_bwd,
        "rate": _safe_rate,
        "ct_dst_ltm": lambda s: s.count.astype(np.float64),
        "ct_srv_dst": lambda s: s.srv_count.astype(np.float64),
    },
}


class FlowFeatureExtractor:
    """Aggregate packet events into schema-conforming feature rows.

    Parameters
    ----------
    schema:
        Target :class:`~repro.data.schema.DatasetSchema` (or its name).
    window / idle_timeout:
        Forwarded to the owned :class:`FlowTable`.
    derive_features:
        Numeric mode (see module docstring).  Off: replay the payload
        fragment sums (requires ``payload_width == n_numeric``); on:
        compute the packet-observable columns from flow statistics.
    """

    def __init__(
        self,
        schema: Union[DatasetSchema, str],
        window: int = 100,
        idle_timeout: Optional[float] = None,
        derive_features: bool = False,
    ) -> None:
        self.schema = get_schema(schema) if isinstance(schema, str) else schema
        self.derive_features = bool(derive_features)
        n_numeric = len(self.schema.numeric_features)
        self.table = FlowTable(
            window=window,
            idle_timeout=idle_timeout,
            payload_width=0 if derive_features else n_numeric,
        )
        # Categorical assembly plan, resolved once from the schema bindings.
        self._categorical_plan = [
            (name, *self.schema.event_binding(name))
            for name in self.schema.categorical_names
        ]
        self._derived = (
            _DERIVED_COLUMNS.get(self.schema.name, {}) if derive_features else {}
        )
        # Throughput accounting for the serving bench (events vs rows, time
        # spent aggregating vs scoring).
        self.events_seen = 0
        self.rows_emitted = 0
        self.extract_seconds = 0.0
        self.last_stats: Optional[FlowStats] = None

    # ------------------------------------------------------------------ #
    def extract(self, events: PacketEvents, final: bool = True) -> TrafficRecords:
        """Absorb one event batch and return the rows of all flows it closed.

        ``final=True`` (the batch-interval mode) force-closes every flow
        still open afterwards, so each call maps a capture interval to its
        complete feature rows; ``final=False`` leaves quiet flows open
        across calls and relies on FINs / idle eviction to close them —
        the streaming-ingress mode.
        """
        started = time.perf_counter()
        if not self.derive_features and events.payload_width != len(
            self.schema.numeric_features
        ):
            raise ValueError(
                f"replay mode needs payload_width == {len(self.schema.numeric_features)} "
                f"(schema {self.schema.name!r}), got {events.payload_width}; "
                "use derive_features=True for payload-free traces"
            )
        self.table.absorb(events)
        if final:
            self.table.close_all()
        stats = self.table.drain()
        records = self._assemble(stats)
        self.events_seen += len(events)
        self.rows_emitted += len(records)
        self.extract_seconds += time.perf_counter() - started
        self.last_stats = stats
        return records

    def flush(self) -> TrafficRecords:
        """Force-close and emit everything still open (stream end)."""
        started = time.perf_counter()
        self.table.close_all()
        stats = self.table.drain()
        records = self._assemble(stats)
        self.rows_emitted += len(records)
        self.extract_seconds += time.perf_counter() - started
        self.last_stats = stats
        return records

    # ------------------------------------------------------------------ #
    def _assemble(self, stats: FlowStats) -> TrafficRecords:
        n = len(stats)
        n_numeric = len(self.schema.numeric_features)
        if self.derive_features:
            numeric = np.zeros((n, n_numeric))
            for position, feature in enumerate(self.schema.numeric_features):
                fn = self._derived.get(feature.name)
                if fn is not None:
                    numeric[:, position] = fn(stats)
        else:
            numeric = stats.payload
        categorical = {
            name: getattr(stats, event_field)
            for name, event_field, _which in self._categorical_plan
        }
        return TrafficRecords(
            schema=self.schema,
            numeric=numeric,
            categorical={name: col.copy() for name, col in categorical.items()},
            labels=stats.label.copy(),
        )

    # ------------------------------------------------------------------ #
    def stats_row(self) -> Dict[str, float]:
        """Accounting snapshot (events/rows seen, aggregation time, table
        counters) for benchmarks and service reports."""
        return {
            "events_seen": self.events_seen,
            "rows_emitted": self.rows_emitted,
            "extract_seconds": self.extract_seconds,
            "flows_opened": self.table.flows_opened,
            "flows_closed": self.table.flows_closed,
            "flows_evicted": self.table.flows_evicted,
            "open_flows": self.table.open_flows,
            "port_entropy": self.table.port_entropy(),
        }
