"""Deterministic lowering of featurized records to packet-event traces.

The synthetic corpus is generated at the *record* (flow-feature) level;
real ingestion starts from *packets*.  This module bridges them: it lowers
a :class:`~repro.data.dataset.TrafficRecords` batch to a seeded
:class:`~repro.ingest.events.PacketEvents` trace whose aggregation through
:class:`~repro.ingest.extractor.FlowFeatureExtractor` (replay mode)
reproduces the original rows **bit for bit** — same numeric values, same
categorical values, same labels, same order.

How the round trip is exact:

* every record becomes exactly one flow: per-batch-unique source ports
  guarantee distinct 5-tuples, and every flow is FIN-terminated inside its
  batch;
* flows open in record order (first-packet times are strictly increasing
  with the record index, intra-flow offsets are too small to reorder
  them), and the extractor drains in open order — so row *i* of the
  aggregate is record *i*;
* the numeric features ride in two payload fragments on the flow's first
  two packets: ``v * 0.5`` and ``v - v * 0.5``.  For float64, ``v * 0.5``
  is exact for normal values and ``v - v * 0.5`` is exact by Sterbenz's
  lemma in all cases, so the per-flow sum (two exact halves plus zeros)
  restores ``v`` exactly — no multi-part summation ordering to worry
  about;
* categoricals ride where the schema's event bindings expect them:
  protocol/service on every packet (first read back), the flag/state
  value on every packet (last read back).

Everything is derived from an explicit :class:`numpy.random.Generator`
(or, in :class:`EventTrafficStream`, a ``SeedSequence`` of the stream seed
and batch index), so a trace is reproducible across processes.

DoS-labelled records lower to SYN-flood-shaped flows: 2-packet
unidirectional bursts (SYN, then FIN) against a fixed victim host with
small frame sizes; benign and other attack classes get longer
request/response exchanges.  The *shape* is cosmetic for the round trip
(payload carries the features) but gives the flow table realistic
flood-vs-benign structure for the packet-level scenario preset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

import numpy as np

from ..data.dataset import TrafficRecords
from ..data.generator import StreamBatch, TrafficStream
from ..data.schema import service_port
from .events import FLAG_ERR, FLAG_FIN, FLAG_SYN, PacketEvents
from .extractor import FlowFeatureExtractor

__all__ = [
    "lower_records",
    "EventBatch",
    "EventTrafficStream",
]

#: Salt mixed into every per-batch SeedSequence so event lowering never
#: collides with other consumers of the stream seed.
_LOWERING_SALT = 0x1A9E57

#: Classes lowered with the SYN-flood shape (short unidirectional bursts
#: against one victim) rather than the request/response shape.
_DOS_CLASSES = frozenset({"dos"})

#: Flag/state values that mark an erroring connection in either corpus
#: (NSL-KDD flags, UNSW-NB15 states).
_ERROR_STATES = frozenset(
    {"S0", "REJ", "RSTR", "RSTO", "RSTOS0", "SH", "RST", "no", "URN"}
)

_VICTIM_HOST = 251
_VICTIM_PORT = 80


def lower_records(
    records: TrafficRecords,
    rng: np.random.Generator,
    base_time: float = 0.0,
) -> PacketEvents:
    """Lower one record batch to a packet-event trace (capture order).

    The trace is deterministic given ``(records, rng state, base_time)``
    and round-trips exactly through a replay-mode extractor (see module
    docstring).  An empty batch lowers to an empty trace.
    """
    n = len(records)
    schema = records.schema
    if n == 0:
        return PacketEvents.empty(payload_width=len(schema.numeric_features))

    names = schema.categorical_names
    if len(names) != 3:
        raise ValueError(
            f"event lowering expects 3 categorical columns "
            f"(protocol/service/state), schema {schema.name!r} has {len(names)}"
        )
    protocols = records.categorical[names[0]]
    services = records.categorical[names[1]]
    states = records.categorical[names[2]]
    is_dos = np.fromiter(
        (label in _DOS_CLASSES for label in records.labels), dtype=bool, count=n
    )

    # Packets per flow: SYN-flood flows are 2-packet bursts, everything
    # else a 3-7 packet exchange (>= 2 so both payload fragments fit).
    k = np.where(is_dos, 2, 3 + rng.integers(0, 5, size=n))
    total = int(k.sum())
    rec = np.repeat(np.arange(n), k)                       # record of each event
    pos = np.arange(total) - np.repeat(np.cumsum(k) - k, k)  # index within flow

    # Endpoints: per-batch-unique source ports make every record its own
    # 5-tuple; DoS flows converge on one victim host/port (flood shape),
    # benign destinations scatter.
    src_host = rng.integers(1, 200, size=n)
    dst_host = np.where(is_dos, _VICTIM_HOST, rng.integers(200, 240, size=n))
    src_port = 1024 + rng.permutation(60_000)[:n]
    dst_port = np.where(
        is_dos,
        _VICTIM_PORT,
        np.fromiter((service_port(s) for s in services), dtype=np.int64, count=n),
    )

    # First packets sit at strictly increasing per-record times, so flows
    # open in record order; intra-flow offsets stay far below the 1 ms
    # record spacing and cannot reorder the openings.
    open_time = base_time + np.arange(n) * 1e-3
    jitter = rng.random(total) * 5e-6
    time = open_time[rec] + pos * 1e-5 + np.where(pos > 0, jitter, 0.0)

    # Sizes: small flood frames vs heavier exchanges.
    size = np.exp(rng.normal(np.where(is_dos[rec], 3.7, 6.0),
                             np.where(is_dos[rec], 0.2, 1.0)))

    # Direction: floods are unidirectional; exchanges alternate.
    direction = np.where(
        is_dos[rec], 1, np.where(pos % 2 == 0, 1, -1)
    ).astype(np.int8)

    flags = np.zeros(total, dtype=np.uint8)
    is_tcp = np.fromiter(
        (str(p) == "tcp" for p in protocols), dtype=bool, count=n
    )
    flags[(pos == 0) & (is_tcp[rec] | is_dos[rec])] |= FLAG_SYN
    flags[pos == k[rec] - 1] |= FLAG_FIN
    erroring = np.fromiter(
        (str(value) in _ERROR_STATES for value in states), dtype=bool, count=n
    )
    flags[(pos == k[rec] - 1) & erroring[rec]] |= FLAG_ERR

    # Exact numeric round trip: v*0.5 on the first packet, v - v*0.5 on
    # the second; their sum restores v bitwise (Sterbenz), and the zero
    # fragments of later packets leave it untouched.
    half = records.numeric * 0.5
    payload = np.zeros((total, records.numeric.shape[1]))
    payload[pos == 0] = half
    payload[pos == 1] = records.numeric - half

    events = PacketEvents(
        time=time,
        src_host=src_host[rec],
        dst_host=dst_host[rec],
        src_port=src_port[rec],
        dst_port=dst_port[rec],
        size=size,
        direction=direction,
        flags=flags,
        protocol=protocols[rec],
        service=services[rec],
        state=states[rec],
        label=records.labels[rec],
        payload=payload,
    )
    # Capture order: sort by timestamp (stable, so the per-record packet
    # order — and with it the fragment order — survives ties).
    return events.subset(np.argsort(events.time, kind="stable"))


@dataclass(frozen=True)
class EventBatch:
    """One stream batch lowered to packet events (the event-plane analogue
    of :class:`~repro.data.generator.StreamBatch`)."""

    events: PacketEvents
    phase: str
    index: int
    phase_index: int
    mix: Dict[str, float]
    n_records: int


class EventTrafficStream:
    """Packet-event view of a :class:`~repro.data.generator.TrafficStream`.

    :meth:`event_batches` lowers each record batch of the wrapped stream
    to a seeded event trace (per-batch ``SeedSequence`` of the stream seed
    and batch index, so any batch can be re-lowered independently and
    re-iteration is bit-identical).  Iterating the stream itself yields
    ordinary :class:`StreamBatch` values — each event batch aggregated
    back through a fresh replay-mode extractor — so *every* serving
    execution model (sync, thread pool, process pool, sharded) consumes it
    unchanged, and by the round-trip guarantee the batches equal the
    wrapped stream's bit for bit.
    """

    def __init__(self, stream: TrafficStream, window: int = 100) -> None:
        self.stream = stream
        self.window = int(window)

    # Delegation: the adapter is stream-shaped for suite/bench plumbing.
    @property
    def schema(self):
        return self.stream.schema

    @property
    def phases(self):
        return self.stream.phases

    @property
    def batch_size(self) -> int:
        return self.stream.batch_size

    @property
    def seed(self) -> int:
        return self.stream.seed

    @property
    def total_batches(self) -> int:
        return self.stream.total_batches

    @property
    def total_records(self) -> int:
        return self.stream.total_records

    def _batch_rng(self, index: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence(
                (_LOWERING_SALT, self.stream.seed % (2**63), index)
            )
        )

    def event_batches(self) -> Iterator[EventBatch]:
        """Yield the scenario lowered to packet events (deterministic)."""
        for batch in self.stream.batches():
            events = lower_records(
                batch.records,
                self._batch_rng(batch.index),
                # Batches are spaced well apart on the capture clock so
                # cross-batch idle eviction (when enabled) behaves sanely.
                base_time=batch.index * 10.0,
            )
            yield EventBatch(
                events=events,
                phase=batch.phase,
                index=batch.index,
                phase_index=batch.phase_index,
                mix=batch.mix,
                n_records=len(batch.records),
            )

    def __iter__(self) -> Iterator[StreamBatch]:
        extractor = FlowFeatureExtractor(self.schema, window=self.window)
        for event_batch in self.event_batches():
            records = extractor.extract(event_batch.events, final=True)
            yield StreamBatch(
                records=records,
                phase=event_batch.phase,
                index=event_batch.index,
                phase_index=event_batch.phase_index,
                mix=event_batch.mix,
            )
