"""The scenario library: named presets declared as segment data.

Every preset is a plain function returning a ready-to-serve stream, built
from :class:`~repro.scenarios.builder.Segment` declarations rather than
hand-rolled phase lists.  The vocabulary follows the dpdk_100g attack
generator taxonomy: volumetric floods (:func:`flood_scenario`),
low-and-slow reconnaissance (:func:`probe_sweep_scenario`), slow-rate DoS
below volumetric thresholds (:func:`slow_dos_scenario`), operating-prior
shifts (:func:`imbalance_shift_scenario`) and a cross-dataset fleet feed
(:func:`fleet_scenario`).  All presets are deterministic for a given seed
and re-iterable; ``docs/SCENARIOS.md`` documents each one.

``flood_scenario`` and ``probe_sweep_scenario`` predate this package (they
lived on :class:`~repro.data.generator.TrafficStream`); their classmethod
spellings remain as thin wrappers and both implementations are
batch-for-batch identical to the pre-refactor phase lists.

Advisory rate hints use a records/second scale where ``RATE_BASELINE``
stands for the ambient benign load; flood segments hint far above it and
slow-DoS segments sit at or below it — the low-PPS pattern that volumetric
thresholds miss.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..data.generator import TrafficGenerator, TrafficStream
from .builder import Constant, Drift, Ramp, Scenario, Segment, Spike
from .fleet import InterleavedStream

__all__ = [
    "RATE_BASELINE",
    "RATE_FLOOD",
    "RATE_SLOW",
    "flood_scenario",
    "probe_sweep_scenario",
    "imbalance_shift_scenario",
    "slow_dos_scenario",
    "retrain_recovery_scenario",
    "fleet_scenario",
    "syn_flood_event_scenario",
    "SINGLE_STREAM_PRESETS",
    "EVENT_STREAM_PRESETS",
]

#: Advisory pacing hints (records/second) for replay harnesses.
RATE_BASELINE = 800.0
RATE_FLOOD = 4000.0
RATE_SLOW = 250.0


def _pick_attack(
    generator: TrafficGenerator,
    requested: Optional[str],
    preferred: Sequence[str],
    kind: str,
) -> str:
    attacks = generator.schema.attack_classes
    if requested is None:
        matches = [name for name in preferred if name in attacks]
        return matches[0] if matches else attacks[0]
    if requested not in attacks:
        raise ValueError(f"unknown {kind} class {requested!r}; choices: {attacks}")
    return requested


def flood_scenario(
    generator: TrafficGenerator,
    batch_size: int = 64,
    seed: int = 0,
    attack_class: Optional[str] = None,
    baseline_batches: int = 6,
    burst_batches: int = 4,
    attack_fraction: float = 0.7,
    drift_batches: int = 6,
    drift_scale: float = 1.5,
) -> TrafficStream:
    """Benign baseline, three volumetric flood bursts, then gradual drift.

    The bursts are named after the classic volumetric DDoS patterns
    (SYN / UDP / HTTP flood, cf. the dpdk_100g traffic generator) and are
    realised with the schema's DoS-style class at ``attack_fraction`` of
    the batch, mixed with decreasing amounts of benign and secondary attack
    traffic.  The final phase ramps an attack back in *gradually* while
    also drifting the numeric features.
    """
    normal = generator.schema.normal_class
    attack = _pick_attack(generator, attack_class, ("dos",), "attack")
    secondary = [name for name in generator.schema.attack_classes if name != attack]
    benign = {normal: 1.0}
    flood = {normal: 1.0 - attack_fraction, attack: attack_fraction}
    mixed_flood = {
        normal: 1.0 - attack_fraction,
        attack: attack_fraction * (0.8 if secondary else 1.0),
    }
    if secondary:
        mixed_flood[secondary[0]] = attack_fraction * 0.2
    scenario = Scenario(
        "flood",
        (
            Segment("benign-baseline", baseline_batches, Constant(benign),
                    rate_hint=RATE_BASELINE),
            Segment("syn-flood", burst_batches, Constant(flood),
                    rate_hint=RATE_FLOOD),
            Segment("recovery", max(baseline_batches // 2, 1), Constant(benign),
                    rate_hint=RATE_BASELINE),
            Segment("udp-flood", burst_batches, Constant(mixed_flood),
                    rate_hint=RATE_FLOOD),
            Segment("http-flood", burst_batches, Constant(flood),
                    rate_hint=RATE_FLOOD),
            Segment(
                "gradual-drift",
                drift_batches,
                Ramp(benign, {normal: 0.6, attack: 0.4}),
                drift=Drift(to=drift_scale),
                rate_hint=RATE_BASELINE,
            ),
        ),
    )
    return scenario.build(generator, batch_size=batch_size, seed=seed)


def probe_sweep_scenario(
    generator: TrafficGenerator,
    batch_size: int = 64,
    seed: int = 0,
    probe_class: Optional[str] = None,
    baseline_batches: int = 4,
    sweep_batches: int = 8,
    scan_batches: int = 3,
    sweep_fraction: float = 0.15,
    scan_fraction: float = 0.5,
) -> TrafficStream:
    """Low-and-slow reconnaissance instead of a flood.

    Mirrors the scanning half of the dpdk_100g attack taxonomy: a long
    *horizontal sweep* ramps probe traffic in gradually at a low rate (the
    low-and-slow pattern volumetric thresholds miss), a short *vertical
    scan* burst concentrates it, and a final *family-mix* phase pairs the
    probe class with a secondary attack family — the workload that
    exercises per-class-family shard routing, since no single-family shard
    sees the whole picture.
    """
    normal = generator.schema.normal_class
    probe = _pick_attack(
        generator, probe_class, ("probe", "reconnaissance", "analysis"), "probe"
    )
    secondary = [name for name in generator.schema.attack_classes if name != probe]
    benign = {normal: 1.0}
    sweep = {normal: 1.0 - sweep_fraction, probe: sweep_fraction}
    scan = {normal: 1.0 - scan_fraction, probe: scan_fraction}
    family_mix = {normal: 0.6, probe: 0.4 * (0.5 if secondary else 1.0)}
    if secondary:
        family_mix[secondary[0]] = 0.2
    scenario = Scenario(
        "probe-sweep",
        (
            Segment("benign-baseline", baseline_batches, Constant(benign),
                    rate_hint=RATE_BASELINE),
            Segment("horizontal-sweep", sweep_batches, Ramp(benign, sweep),
                    rate_hint=RATE_SLOW),
            Segment("vertical-scan", scan_batches, Constant(scan),
                    rate_hint=RATE_BASELINE),
            Segment("quiet", max(baseline_batches // 2, 1), Constant(benign),
                    rate_hint=RATE_BASELINE),
            Segment("family-mix", scan_batches, Constant(family_mix),
                    rate_hint=RATE_BASELINE),
        ),
    )
    return scenario.build(generator, batch_size=batch_size, seed=seed)


def imbalance_shift_scenario(
    generator: TrafficGenerator,
    batch_size: int = 64,
    seed: int = 0,
    attack_class: Optional[str] = None,
    benign_prior: float = 0.95,
    attack_prior: float = 0.8,
    steady_batches: int = 6,
    flip_batches: int = 2,
) -> TrafficStream:
    """Class-imbalance shift: the benign/attack prior flips mid-stream.

    Detectors are trained under the corpora's heavy benign majority; this
    scenario serves that operating point (``benign_prior`` benign) and then
    flips the prior over a short ramp until attacks dominate
    (``attack_prior`` attack) — a mass campaign, or a sensor repositioned
    behind a scrubbing tier.  The mix then flips back and holds, so a
    monitor can be read at both operating points and across both
    transitions.  The per-record feature distributions never change: any
    DR/FAR movement is purely the prior shift, which is what makes the
    preset a clean regression probe for threshold-style detectors.
    """
    if not 0.5 < benign_prior < 1.0:
        raise ValueError("benign_prior must be in (0.5, 1)")
    if not 0.5 < attack_prior < 1.0:
        raise ValueError("attack_prior must be in (0.5, 1)")
    normal = generator.schema.normal_class
    attack = _pick_attack(generator, attack_class, ("dos",), "attack")
    benign_majority = {normal: benign_prior, attack: 1.0 - benign_prior}
    attack_majority = {normal: 1.0 - attack_prior, attack: attack_prior}
    scenario = Scenario(
        "imbalance-shift",
        (
            Segment("benign-majority", steady_batches, Constant(benign_majority),
                    rate_hint=RATE_BASELINE),
            Segment("prior-flip", flip_batches,
                    Ramp(benign_majority, attack_majority),
                    rate_hint=RATE_BASELINE),
            Segment("attack-majority", steady_batches, Constant(attack_majority),
                    rate_hint=RATE_BASELINE),
            Segment("flip-back", flip_batches,
                    Ramp(attack_majority, benign_majority),
                    rate_hint=RATE_BASELINE),
            Segment("restored", max(steady_batches // 2, 1),
                    Constant(benign_majority), rate_hint=RATE_BASELINE),
        ),
    )
    return scenario.build(generator, batch_size=batch_size, seed=seed)


def slow_dos_scenario(
    generator: TrafficGenerator,
    batch_size: int = 64,
    seed: int = 0,
    attack_class: Optional[str] = None,
    baseline_batches: int = 4,
    creep_batches: int = 6,
    hold_batches: int = 12,
    spike_batches: int = 4,
    attack_fraction: float = 0.08,
    spike_fraction: float = 0.5,
) -> TrafficStream:
    """Slow-rate DoS: a long-lived attack far below flood mix ratios.

    The dpdk_100g low-PPS pattern: where :func:`flood_scenario` pushes the
    attack class to 70 % of the mix, a slow-rate DoS (slowloris, slow-read)
    holds a handful of long-lived malicious flows inside overwhelming
    benign traffic.  The attack *creeps* in over ``creep_batches``, then
    holds at ``attack_fraction`` (default 8 %) for the longest segment of
    the scenario — long-lived is the point — briefly escalates in a spike
    (the attacker probing whether anyone noticed; still below flood
    intensity), drops back to the slow rate and finally releases.  Rate
    hints mark the attack segments at ``RATE_SLOW``, the advisory low-PPS
    intent a replay harness would pace to.
    """
    if not 0.0 < attack_fraction < 0.3:
        raise ValueError(
            "attack_fraction must be in (0, 0.3): a slow-rate DoS stays far "
            "below flood mix ratios"
        )
    if not attack_fraction < spike_fraction <= 0.6:
        raise ValueError(
            "spike_fraction must exceed attack_fraction and stay at or below "
            "0.6 (below flood intensity)"
        )
    normal = generator.schema.normal_class
    attack = _pick_attack(generator, attack_class, ("dos",), "attack")
    benign = {normal: 1.0}
    slow = {normal: 1.0 - attack_fraction, attack: attack_fraction}
    spike_peak = {normal: 1.0 - spike_fraction, attack: spike_fraction}
    scenario = Scenario(
        "slow-dos",
        (
            Segment("benign-baseline", baseline_batches, Constant(benign),
                    rate_hint=RATE_BASELINE),
            Segment("slow-creep", creep_batches, Ramp(benign, slow),
                    rate_hint=RATE_SLOW),
            Segment("low-and-slow", hold_batches, Constant(slow),
                    rate_hint=RATE_SLOW),
            Segment("escalation-spike", spike_batches, Spike(slow, spike_peak),
                    rate_hint=RATE_BASELINE),
            Segment("slow-tail", max(hold_batches // 3, 1), Constant(slow),
                    rate_hint=RATE_SLOW),
            Segment("release", max(baseline_batches // 2, 1), Constant(benign),
                    rate_hint=RATE_BASELINE),
        ),
    )
    return scenario.build(generator, batch_size=batch_size, seed=seed)


def retrain_recovery_scenario(
    generator: TrafficGenerator,
    batch_size: int = 64,
    seed: int = 0,
    attack_class: Optional[str] = None,
    baseline_batches: int = 6,
    onset_batches: int = 6,
    degraded_batches: int = 10,
    recovery_batches: int = 8,
    attack_fraction: float = 0.3,
    drift_to: float = 3.5,
) -> TrafficStream:
    """Evasion drift degrades DR; the lifecycle tier retrains and recovers.

    The workload behind the :class:`~repro.serving.lifecycle.DriftSupervisor`
    baseline: a steady mixed feed (``attack_fraction`` attack traffic at the
    training operating point), then a covariate-shift ramp up to ``drift_to``
    **aimed along the generator's evasion direction** (attack cluster →
    normal prototype, see :meth:`TrafficGenerator.evasion_direction`).  The
    class mix never changes, so the DR collapse is purely feature drift —
    attack traffic migrating into the region the detector learned as
    benign, the degradation a deployed detector cannot see in its labels.
    Aiming the drift makes the degradation deterministic; the stream's
    default random direction lands on an arbitrary side of the decision
    boundary and may leave DR untouched.

    The shift *holds* for the longest segment (``degraded-hold``, where a
    supervisor is expected to trigger, retrain on its replay buffer of
    drifted batches, and hot-swap), and the final ``recovery-window``
    continues the same drifted distribution so the per-phase report cleanly
    separates pre- and post-swap quality.

    Served without a supervisor, the preset is a plain drift-regression
    stream: all execution models must still agree on its confusion counts
    bit for bit.
    """
    if not 0.0 < attack_fraction < 1.0:
        raise ValueError("attack_fraction must be in (0, 1)")
    if drift_to <= 0.0:
        raise ValueError("drift_to must be positive (this is a drift scenario)")
    normal = generator.schema.normal_class
    attack = _pick_attack(generator, attack_class, ("dos",), "attack")
    mixed = {normal: 1.0 - attack_fraction, attack: attack_fraction}
    scenario = Scenario(
        "retrain-recovery",
        (
            Segment("baseline", baseline_batches, Constant(mixed),
                    rate_hint=RATE_BASELINE),
            Segment("drift-onset", onset_batches, Constant(mixed),
                    drift=Drift(to=drift_to), rate_hint=RATE_BASELINE),
            Segment("degraded-hold", degraded_batches, Constant(mixed),
                    rate_hint=RATE_BASELINE),
            Segment("recovery-window", recovery_batches, Constant(mixed),
                    rate_hint=RATE_BASELINE),
        ),
    )
    return scenario.build(
        generator,
        batch_size=batch_size,
        seed=seed,
        drift_direction=generator.evasion_direction(attack),
    )


def fleet_scenario(
    generators: Optional[Sequence[TrafficGenerator]] = None,
    batch_size: int = 64,
    seed: int = 0,
    baseline_batches: int = 3,
    burst_batches: int = 3,
    sweep_batches: int = 4,
) -> InterleavedStream:
    """Cross-dataset fleet feed: NSL-KDD and UNSW-NB15 traffic interleaved.

    Builds one compact scenario per corpus — benign baseline, a volumetric
    DoS burst, a low-and-slow reconnaissance ramp, recovery — and
    round-robins their batches into a single
    :class:`~repro.scenarios.fleet.InterleavedStream`.  Phase names come
    back prefixed with the corpus (``nsl-kdd:dos-burst``), and because each
    batch keeps its own schema the feed drives a dataset-routed
    :class:`~repro.serving.sharding.ShardedDetectionService` (see
    :func:`~repro.scenarios.fleet.build_fleet_service`) — the ROADMAP's
    two-corpus fleet, as a reusable preset.

    ``generators`` defaults to the canonical NSL-KDD and UNSW-NB15
    populations; pass your own sequence to change corpora or difficulty.
    Sub-streams get distinct seeds derived from ``seed`` so the corpora are
    independent draws.
    """
    if generators is None:
        from ..data.nslkdd import nslkdd_generator
        from ..data.unswnb15 import unswnb15_generator

        generators = (nslkdd_generator(), unswnb15_generator())
    if not generators:
        raise ValueError("fleet_scenario needs at least one generator")

    streams = []
    for position, generator in enumerate(generators):
        normal = generator.schema.normal_class
        dos = _pick_attack(generator, None, ("dos",), "attack")
        probe = _pick_attack(
            generator, None, ("probe", "reconnaissance", "analysis"), "probe"
        )
        benign = {normal: 1.0}
        burst = {normal: 0.4, dos: 0.6}
        sweep = {normal: 0.8, probe: 0.2}
        scenario = Scenario(
            f"fleet-{generator.schema.name}",
            (
                Segment("benign-baseline", baseline_batches, Constant(benign),
                        rate_hint=RATE_BASELINE),
                Segment("dos-burst", burst_batches, Constant(burst),
                        rate_hint=RATE_FLOOD),
                Segment("recon-sweep", sweep_batches, Ramp(benign, sweep),
                        rate_hint=RATE_SLOW),
                Segment("recovery", max(baseline_batches // 2, 1),
                        Constant(benign), rate_hint=RATE_BASELINE),
            ),
        )
        streams.append(
            scenario.build(generator, batch_size=batch_size, seed=seed + position)
        )
    return InterleavedStream(streams)


def syn_flood_event_scenario(
    generator: TrafficGenerator,
    batch_size: int = 64,
    seed: int = 0,
    attack_class: Optional[str] = None,
    baseline_batches: int = 4,
    flood_batches: int = 4,
    attack_fraction: float = 0.8,
    window: int = 100,
):
    """SYN flood as *packet events*: the packet-level scenario preset.

    A benign baseline / SYN-flood burst / recovery arc, lowered to the
    event plane with :meth:`~repro.data.generator.TrafficStream.packet_events`:
    DoS records become 2-packet unidirectional SYN bursts against a single
    victim host, benign records become request/response exchanges.  The
    returned :class:`~repro.ingest.EventTrafficStream` iterates as ordinary
    feature batches (aggregated through a replay-mode extractor), so every
    serving execution model consumes it unchanged and scores it
    bit-identically to the underlying featurized stream; its
    :meth:`~repro.ingest.EventTrafficStream.event_batches` side exposes the
    raw packets for :meth:`~repro.serving.DetectionService.run_event_stream`.
    """
    normal = generator.schema.normal_class
    attack = _pick_attack(generator, attack_class, ("dos",), "attack")
    benign = {normal: 1.0}
    flood = {normal: 1.0 - attack_fraction, attack: attack_fraction}
    scenario = Scenario(
        "syn-flood-events",
        (
            Segment("benign-baseline", baseline_batches, Constant(benign),
                    rate_hint=RATE_BASELINE),
            Segment("syn-flood", flood_batches, Constant(flood),
                    rate_hint=RATE_FLOOD),
            Segment("recovery", max(baseline_batches // 2, 1), Constant(benign),
                    rate_hint=RATE_BASELINE),
        ),
    )
    stream = scenario.build(generator, batch_size=batch_size, seed=seed)
    return stream.packet_events(window=window)


#: Single-schema presets the :class:`~repro.scenarios.suite.ScenarioSuite`
#: sweeps by default (``fleet`` is handled separately: it needs one detector
#: per corpus).
SINGLE_STREAM_PRESETS = {
    "flood": flood_scenario,
    "probe-sweep": probe_sweep_scenario,
    "imbalance-shift": imbalance_shift_scenario,
    "slow-dos": slow_dos_scenario,
    "retrain-recovery": retrain_recovery_scenario,
}

#: Packet-event presets: builders returning an
#: :class:`~repro.ingest.EventTrafficStream` instead of a
#: :class:`~repro.data.generator.TrafficStream`.  Swept by the suite when
#: ``include_events`` is on.
EVENT_STREAM_PRESETS = {
    "syn-flood-events": syn_flood_event_scenario,
}
