"""Scenario regression suite: every preset, every execution model.

:class:`ScenarioSuite` sweeps the scenario library through the serving
tier's execution models and collects per-scenario, per-phase quality and
throughput rows — the scenario-side counterpart of the serving benchmark's
``BENCH_serving.json`` baseline:

* single-schema presets (flood, probe-sweep, imbalance-shift, slow-dos)
  run **synchronous** (:class:`~repro.serving.service.DetectionService`),
  **worker-pool** (:class:`~repro.serving.workers.WorkerPool`) and
  **sharded** (replica :class:`~repro.serving.sharding.ShardedDetectionService`);
* the cross-dataset **fleet** preset runs on a dataset-routed sharded
  service — inline and with per-shard worker pools — since a single
  service cannot preprocess two schemas.

Every row carries the serving layer's ordering guarantees, so for a given
scenario the worker-pool and replica-sharded confusion counts are expected
to equal the synchronous run's bit for bit; ``benchmarks/
test_bench_scenarios.py`` asserts exactly that and writes the rows to
``BENCH_scenarios.json`` at the repository root.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

from ..core.detector import PelicanDetector
from ..data.nslkdd import nslkdd_generator
from ..data.unswnb15 import unswnb15_generator
from ..serving.service import DetectionService, ServiceReport
from ..serving.sharding import ShardedDetectionService
from ..serving.workers import WorkerPool
from .fleet import build_fleet_service, validate_detector_keys
from .presets import SINGLE_STREAM_PRESETS, fleet_scenario

__all__ = ["ScenarioSuite", "report_row"]

#: Generator factories per schema name (the canonical synthetic populations).
_GENERATOR_FACTORIES = {
    "nsl-kdd": nslkdd_generator,
    "unsw-nb15": unswnb15_generator,
}

SINGLE_STREAM_MODELS = ("synchronous", "worker-pool", "sharded")
FLEET_MODELS = ("sharded", "sharded-workers")


def _quality(report) -> Dict[str, float]:
    return {
        "records": report.total,
        "tp": report.tp,
        "tn": report.tn,
        "fp": report.fp,
        "fn": report.fn,
        "dr": report.detection_rate,
        "far": report.false_alarm_rate,
        "acc": report.accuracy,
    }


def report_row(report: ServiceReport) -> Dict[str, object]:
    """Flatten a :class:`ServiceReport` into a JSON-able suite row."""
    row: Dict[str, object] = {
        "records": report.records,
        "batches": report.batches,
        "throughput_rps": report.throughput,
        "mean_latency_s": report.mean_latency,
        "p95_latency_s": report.p95_latency,
        "phases": {
            phase: _quality(phase_report)
            for phase, phase_report in report.phase_reports.items()
        },
    }
    if report.rolling is not None:
        row["overall"] = _quality(report.rolling)
    return row


class ScenarioSuite:
    """Sweep scenario presets across the serving execution models.

    Parameters
    ----------
    detectors:
        Fitted detectors keyed by schema name.  Single-schema presets run
        against the first entry; the fleet preset runs when every corpus it
        interleaves has a detector (with the default generators: both
        ``"nsl-kdd"`` and ``"unsw-nb15"``).
    batch_size / seed:
        Forwarded to every preset, so the suite's streams are deterministic
        and a re-run scores the identical records.
    window:
        Rolling-monitor width; the default is wide enough that no suite
        stream overflows it and the reported counts are exact totals.
    num_workers:
        Worker threads for the worker-pool model (and per shard in the
        ``sharded-workers`` fleet model).
    replica_shards:
        Shard count for the replica-sharded model.
    scenarios:
        Override the single-schema preset registry (name → factory taking
        ``(generator, batch_size=..., seed=...)``); tests use this to
        inject trimmed scenarios.
    include_fleet:
        Set ``False`` to skip the cross-dataset preset even when both
        detectors are available.
    """

    def __init__(
        self,
        detectors: Mapping[str, PelicanDetector],
        batch_size: int = 64,
        seed: int = 0,
        window: int = 1 << 20,
        num_workers: int = 2,
        replica_shards: int = 2,
        scenarios: Optional[Mapping[str, Callable]] = None,
        include_fleet: bool = True,
    ) -> None:
        if not detectors:
            raise ValueError("ScenarioSuite needs at least one fitted detector")
        validate_detector_keys(detectors)
        self.detectors = dict(detectors)
        self.batch_size = int(batch_size)
        self.seed = int(seed)
        self.window = int(window)
        self.num_workers = int(num_workers)
        self.replica_shards = int(replica_shards)
        self.scenarios = dict(
            scenarios if scenarios is not None else SINGLE_STREAM_PRESETS
        )
        self.include_fleet = bool(include_fleet)

    # ------------------------------------------------------------------ #
    def _service(self, detector: PelicanDetector) -> DetectionService:
        return DetectionService(
            detector,
            max_batch_size=max(self.batch_size, 1),
            flush_interval=0.0,
            window=self.window,
        )

    def _run_model(self, detector: PelicanDetector, stream, model: str):
        if model == "synchronous":
            return self._service(detector).run_stream(stream)
        if model == "worker-pool":
            return WorkerPool(
                self._service(detector), num_workers=self.num_workers
            ).run_stream(stream)
        if model == "sharded":
            sharded = ShardedDetectionService.replicated(
                detector,
                self.replica_shards,
                max_batch_size=max(self.batch_size, 1),
                flush_interval=0.0,
                window=self.window,
            )
            return sharded.run_stream(stream)
        raise ValueError(f"unknown execution model {model!r}")

    def _fleet_service(self) -> ShardedDetectionService:
        return build_fleet_service(
            self.detectors,
            max_batch_size=max(self.batch_size, 1),
            flush_interval=0.0,
            window=self.window,
        )

    # ------------------------------------------------------------------ #
    def run(self) -> Dict[str, object]:
        """Execute the sweep and return the JSON-able result tree."""
        primary_name = next(iter(self.detectors))
        primary = self.detectors[primary_name]
        generator_factory = _GENERATOR_FACTORIES.get(primary_name)
        if generator_factory is None:
            raise ValueError(
                f"no generator factory for schema {primary_name!r}; known: "
                f"{sorted(_GENERATOR_FACTORIES)}"
            )
        generator = generator_factory()

        results: Dict[str, object] = {
            "batch_size": self.batch_size,
            "seed": self.seed,
            "window": self.window,
            "num_workers": self.num_workers,
            "replica_shards": self.replica_shards,
            "scenarios": {},
        }
        for name, factory in self.scenarios.items():
            stream = factory(
                generator, batch_size=self.batch_size, seed=self.seed
            )
            entry = {
                "dataset": primary_name,
                "total_batches": stream.total_batches,
                "total_records": stream.total_records,
                "rate_hints": {
                    phase.name: phase.rate_hint
                    for phase in stream.phases
                    if phase.rate_hint is not None
                },
                "models": {},
            }
            for model in SINGLE_STREAM_MODELS:
                report = self._run_model(primary, stream, model)
                entry["models"][model] = report_row(report)
            results["scenarios"][name] = entry

        if self.include_fleet:
            fleet_stream = fleet_scenario(
                batch_size=self.batch_size, seed=self.seed
            )
            needed = {schema.name for schema in fleet_stream.schemas}
            if needed <= set(self.detectors):
                entry = {
                    "dataset": "+".join(sorted(needed)),
                    "total_batches": fleet_stream.total_batches,
                    "total_records": fleet_stream.total_records,
                    "models": {},
                }
                for model in FLEET_MODELS:
                    workers = self.num_workers if model == "sharded-workers" else 0
                    report = self._fleet_service().run_stream(
                        fleet_stream, num_workers=workers
                    )
                    entry["models"][model] = report_row(report)
                results["scenarios"]["fleet"] = entry
        return results
