"""Scenario regression suite: every preset, every execution model.

:class:`ScenarioSuite` sweeps the scenario library through the serving
tier's execution models and collects per-scenario, per-phase quality and
throughput rows — the scenario-side counterpart of the serving benchmark's
``BENCH_serving.json`` baseline:

* single-schema presets (flood, probe-sweep, imbalance-shift, slow-dos)
  run **synchronous** (:class:`~repro.serving.service.DetectionService`),
  **worker-pool** (:class:`~repro.serving.workers.WorkerPool`),
  **process-pool** (:class:`~repro.serving.procpool.ProcessWorkerPool`,
  scoring in checkpoint-rehydrated child processes, pickled-queue data
  plane), **process-pool-shm** (the same pool over the zero-copy
  shared-memory transport — see :mod:`repro.serving.transport`) and
  **sharded** (replica :class:`~repro.serving.sharding.ShardedDetectionService`);
* the cross-dataset **fleet** preset runs on a dataset-routed sharded
  service — inline and with per-shard worker pools — since a single
  service cannot preprocess two schemas.

Every row carries the serving layer's ordering guarantees, so for a given
scenario the worker-pool and replica-sharded confusion counts are expected
to equal the synchronous run's bit for bit; ``benchmarks/
test_bench_scenarios.py`` asserts exactly that and writes the rows to
``BENCH_scenarios.json`` at the repository root.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

from ..core.detector import PelicanDetector
from ..data.nslkdd import nslkdd_generator
from ..data.unswnb15 import unswnb15_generator
from ..serving.fleet import AutoscalePolicy, FleetController, RolloutPolicy
from ..serving.lifecycle import DetectorCheckpoint, DriftPolicy, DriftSupervisor
from ..serving.procpool import ProcessWorkerPool
from ..serving.service import DetectionService, ServiceReport
from ..serving.sharding import ShardedDetectionService
from ..serving.workers import WorkerPool
from .fleet import (
    build_fleet_service,
    build_replica_fleet,
    overload_scenario,
    rollout_drift_scenario,
    validate_detector_keys,
)
from .presets import (
    EVENT_STREAM_PRESETS,
    SINGLE_STREAM_PRESETS,
    fleet_scenario,
    retrain_recovery_scenario,
)

__all__ = [
    "ScenarioSuite",
    "report_row",
    "lifecycle_row",
    "fleet_control_row",
    "DEFAULT_LIFECYCLE_POLICY",
]

#: Generator factories per schema name (the canonical synthetic populations).
_GENERATOR_FACTORIES = {
    "nsl-kdd": nslkdd_generator,
    "unsw-nb15": unswnb15_generator,
}

SINGLE_STREAM_MODELS = (
    "synchronous",
    "worker-pool",
    "process-pool",
    "process-pool-shm",
    "sharded",
)
FLEET_MODELS = ("sharded", "sharded-workers")

#: Supervisor thresholds for the suite's lifecycle run.  The rolling window
#: is wide, so the drifted traffic has to move the *cumulative* FAR/DR a
#: long way before these trip — a trigger means genuine degradation, not a
#: noisy batch.
DEFAULT_LIFECYCLE_POLICY = DriftPolicy(
    far_ceiling=0.20, dr_floor=0.80, min_records=256, cooldown_records=512
)


def _quality(report) -> Dict[str, float]:
    return {
        "records": report.total,
        "tp": report.tp,
        "tn": report.tn,
        "fp": report.fp,
        "fn": report.fn,
        "dr": report.detection_rate,
        "far": report.false_alarm_rate,
        "acc": report.accuracy,
    }


def report_row(report: ServiceReport) -> Dict[str, object]:
    """Flatten a :class:`ServiceReport` into a JSON-able suite row."""
    row: Dict[str, object] = {
        "records": report.records,
        "batches": report.batches,
        "throughput_rps": report.throughput,
        "mean_latency_s": report.mean_latency,
        "p95_latency_s": report.p95_latency,
        "phases": {
            phase: _quality(phase_report)
            for phase, phase_report in report.phase_reports.items()
        },
    }
    if report.rolling is not None:
        row["overall"] = _quality(report.rolling)
    return row


def lifecycle_row(outcome) -> Dict[str, object]:
    """Flatten a :class:`~repro.serving.lifecycle.LifecycleOutcome` to JSON.

    Carries the event timeline, the per-batch rolling DR/FAR curves and the
    recovery-time headline alongside the usual service-report row — the
    shape ``BENCH_scenarios.json`` records as the lifecycle baseline.
    """
    return {
        "events": [
            {
                "kind": event.kind,
                "batch_index": event.batch_index,
                "records_seen": event.records_seen,
                "detail": {k: str(v) for k, v in event.detail.items()},
            }
            for event in outcome.events
        ],
        "triggered": outcome.triggered,
        "promoted": outcome.promoted,
        "recovery_batches": outcome.recovery_batches,
        "recovery_seconds": outcome.recovery_seconds,
        "dr_curve": outcome.dr_curve,
        "far_curve": outcome.far_curve,
        "report": report_row(outcome.report),
    }


def fleet_control_row(outcome) -> Dict[str, object]:
    """Flatten a :class:`~repro.serving.fleet.FleetOutcome` to JSON.

    Alongside the usual service-report row it records the controller's
    event timeline, per-kind event counts, the rollout stage timings
    (service-clock deltas between consecutive swap events) and — because
    the merged report already separates phases — the per-phase DR the
    bench asserts against.
    """
    swaps = [event for event in outcome.events if event.kind == "swap"]
    stage_timings = [
        later.time - earlier.time
        for earlier, later in zip(swaps, swaps[1:])
    ]
    kind_counts: Dict[str, int] = {}
    for event in outcome.events:
        kind_counts[event.kind] = kind_counts.get(event.kind, 0) + 1
    return {
        "events": [
            {
                "kind": event.kind,
                "batch_index": event.batch_index,
                "shard": event.shard,
                "records_seen": event.records_seen,
                "detail": {k: str(v) for k, v in event.detail.items()},
            }
            for event in outcome.events
        ],
        "event_counts": kind_counts,
        "scaling_events": kind_counts.get("resize", 0),
        "stage_timings_s": stage_timings,
        "promoted": outcome.promoted,
        "completed": outcome.completed,
        "rolled_back": outcome.rolled_back,
        "report": report_row(outcome.report),
    }


class ScenarioSuite:
    """Sweep scenario presets across the serving execution models.

    Parameters
    ----------
    detectors:
        Fitted detectors keyed by schema name.  Single-schema presets run
        against the first entry; the fleet preset runs when every corpus it
        interleaves has a detector (with the default generators: both
        ``"nsl-kdd"`` and ``"unsw-nb15"``).
    batch_size / seed:
        Forwarded to every preset, so the suite's streams are deterministic
        and a re-run scores the identical records.
    window:
        Rolling-monitor width; the default is wide enough that no suite
        stream overflows it and the reported counts are exact totals.
    num_workers:
        Pool size for the worker-pool (threads) and process-pool (child
        processes) models, and per shard in the ``sharded-workers`` fleet
        model.
    replica_shards:
        Shard count for the replica-sharded model.
    scenarios:
        Override the single-schema preset registry (name → factory taking
        ``(generator, batch_size=..., seed=...)``); tests use this to
        inject trimmed scenarios.
    event_scenarios / include_events:
        The packet-event preset registry (name → factory returning an
        :class:`~repro.ingest.EventTrafficStream`; default
        :data:`~repro.scenarios.presets.EVENT_STREAM_PRESETS`) and the
        switch that sweeps it.  Event presets run through the same
        execution models as the featurized ones — the adapter iterates as
        ordinary stream batches (each event batch aggregated through a
        replay-mode flow-feature extractor), so confusion counts are
        expected to match the underlying featurized stream bit for bit.
        Off by default: the lowering + aggregation round trip roughly
        doubles a scenario's data-plane work, which quick sweeps should
        opt into.
    include_fleet:
        Set ``False`` to skip the cross-dataset preset even when both
        detectors are available.
    include_fleet_control:
        Run the fleet-control-plane presets under a
        :class:`~repro.serving.fleet.FleetController` and record both
        control loops in the result tree's ``fleet_control`` entry: the
        ``overload`` preset on an autoscaled replica fleet (scaling-event
        counts, counts cross-checked against an uncontrolled run) and the
        ``rollout-drift`` preset with a checkpoint-rehydrated challenger
        driven through the staged canary rollout (stage timings, per-phase
        DR).  Off by default for the same reason as the lifecycle run:
        quick sweeps should not pay for it.
    include_lifecycle:
        Run the ``retrain-recovery`` preset a second time under a
        :class:`~repro.serving.lifecycle.DriftSupervisor` (inline retrain)
        and record the event timeline, DR/FAR curves and recovery time in
        the result tree's ``lifecycle`` entry.  Off by default: the
        supervised run *retrains a detector*, which the quick sweeps the
        suite is also used for should not pay; ``benchmarks/
        test_bench_scenarios.py`` switches it on for the baseline.
    lifecycle_policy / lifecycle_trainer / lifecycle_scenario:
        Supervisor knobs for that run: the :class:`DriftPolicy` (default
        :data:`DEFAULT_LIFECYCLE_POLICY`), the retrainer (default: clone
        the serving architecture, fit on the replay buffer) and the
        scenario factory (default :func:`retrain_recovery_scenario`).
    lifecycle_window:
        Rolling-monitor width for the supervised service only.  The sweep
        services use the suite-wide (practically unbounded) ``window`` so
        their counts are exact totals; the supervisor instead needs a
        *recent-traffic* window, otherwise early clean traffic dilutes the
        degradation signal and the policy triggers late.
    """

    def __init__(
        self,
        detectors: Mapping[str, PelicanDetector],
        batch_size: int = 64,
        seed: int = 0,
        window: int = 1 << 20,
        num_workers: int = 2,
        replica_shards: int = 2,
        scenarios: Optional[Mapping[str, Callable]] = None,
        event_scenarios: Optional[Mapping[str, Callable]] = None,
        include_events: bool = False,
        include_fleet: bool = True,
        include_fleet_control: bool = False,
        include_lifecycle: bool = False,
        lifecycle_policy: Optional[DriftPolicy] = None,
        lifecycle_trainer: Optional[Callable] = None,
        lifecycle_scenario: Optional[Callable] = None,
        lifecycle_window: int = 512,
    ) -> None:
        if not detectors:
            raise ValueError("ScenarioSuite needs at least one fitted detector")
        validate_detector_keys(detectors)
        self.detectors = dict(detectors)
        self.batch_size = int(batch_size)
        self.seed = int(seed)
        self.window = int(window)
        self.num_workers = int(num_workers)
        self.replica_shards = int(replica_shards)
        self.scenarios = dict(
            scenarios if scenarios is not None else SINGLE_STREAM_PRESETS
        )
        self.event_scenarios = dict(
            event_scenarios if event_scenarios is not None else EVENT_STREAM_PRESETS
        )
        self.include_events = bool(include_events)
        self.include_fleet = bool(include_fleet)
        self.include_fleet_control = bool(include_fleet_control)
        self.include_lifecycle = bool(include_lifecycle)
        self.lifecycle_policy = lifecycle_policy or DEFAULT_LIFECYCLE_POLICY
        self.lifecycle_trainer = lifecycle_trainer
        self.lifecycle_scenario = lifecycle_scenario or retrain_recovery_scenario
        self.lifecycle_window = int(lifecycle_window)

    # ------------------------------------------------------------------ #
    def _service(self, detector: PelicanDetector) -> DetectionService:
        return DetectionService(
            detector,
            max_batch_size=max(self.batch_size, 1),
            flush_interval=0.0,
            window=self.window,
        )

    def _run_model(self, detector: PelicanDetector, stream, model: str):
        if model == "synchronous":
            return self._service(detector).run_stream(stream)
        if model == "worker-pool":
            return WorkerPool(
                self._service(detector), num_workers=self.num_workers
            ).run_stream(stream)
        if model == "process-pool":
            return ProcessWorkerPool(
                self._service(detector), num_workers=self.num_workers
            ).run_stream(stream)
        if model == "process-pool-shm":
            return ProcessWorkerPool(
                self._service(detector),
                num_workers=self.num_workers,
                transport="shm",
            ).run_stream(stream)
        if model == "sharded":
            sharded = ShardedDetectionService.replicated(
                detector,
                self.replica_shards,
                max_batch_size=max(self.batch_size, 1),
                flush_interval=0.0,
                window=self.window,
            )
            return sharded.run_stream(stream)
        raise ValueError(f"unknown execution model {model!r}")

    def _fleet_service(self) -> ShardedDetectionService:
        return build_fleet_service(
            self.detectors,
            max_batch_size=max(self.batch_size, 1),
            flush_interval=0.0,
            window=self.window,
        )

    def _replica_fleet(self, detector: PelicanDetector) -> ShardedDetectionService:
        return build_replica_fleet(
            detector,
            self.replica_shards,
            max_batch_size=max(self.batch_size, 1),
            flush_interval=0.0,
            window=self.window,
        )

    def _run_fleet_control(
        self, primary_name: str, primary: PelicanDetector, generator
    ) -> Dict[str, object]:
        """Both control loops on the fleet-control presets (see
        ``include_fleet_control``)."""
        entry: Dict[str, object] = {"dataset": primary_name}

        # Overload: start every shard at one worker with a hair-trigger
        # policy, so the surge forces scale-ups and the calm edges force
        # scale-downs; the uncontrolled run cross-checks the determinism
        # contract (autoscaling must not move a single confusion count).
        overload = overload_scenario(
            generator, batch_size=self.batch_size, seed=self.seed
        )
        controller = FleetController(
            self._replica_fleet(primary),
            num_workers=1,
            autoscale=AutoscalePolicy(
                min_workers=1,
                max_workers=max(self.num_workers, 2),
                scale_up_backlog=0.01,
                scale_down_backlog=0.005,
            ),
        )
        outcome = controller.run_stream(overload)
        baseline = self._replica_fleet(primary).run_stream(overload)
        row = fleet_control_row(outcome)
        row["total_batches"] = overload.total_batches
        row["total_records"] = overload.total_records
        row["counts_equal_uncontrolled"] = (
            outcome.report.rolling is not None
            and baseline.rolling is not None
            and (
                outcome.report.rolling.tp, outcome.report.rolling.tn,
                outcome.report.rolling.fp, outcome.report.rolling.fn,
            ) == (
                baseline.rolling.tp, baseline.rolling.tn,
                baseline.rolling.fp, baseline.rolling.fn,
            )
        )
        entry["overload"] = row

        # Rollout: a checkpoint-rehydrated (scoring-identical) challenger
        # rides the staged canary path end to end — shadow trial, gate,
        # staggered swaps, post-swap watch.
        rollout_stream = rollout_drift_scenario(
            generator, batch_size=self.batch_size, seed=self.seed
        )
        controller = FleetController(
            self._replica_fleet(primary),
            num_workers=self.num_workers,
            rollout=RolloutPolicy(
                shadow_batches=3,
                stagger_batches=2,
                min_watch_records=max(self.batch_size, 32),
            ),
        )
        controller.request_rollout(DetectorCheckpoint.capture(primary))
        outcome = controller.run_stream(rollout_stream)
        row = fleet_control_row(outcome)
        row["total_batches"] = rollout_stream.total_batches
        row["total_records"] = rollout_stream.total_records
        entry["rollout"] = row
        return entry

    # ------------------------------------------------------------------ #
    def run(self) -> Dict[str, object]:
        """Execute the sweep and return the JSON-able result tree."""
        primary_name = next(iter(self.detectors))
        primary = self.detectors[primary_name]
        generator_factory = _GENERATOR_FACTORIES.get(primary_name)
        if generator_factory is None:
            raise ValueError(
                f"no generator factory for schema {primary_name!r}; known: "
                f"{sorted(_GENERATOR_FACTORIES)}"
            )
        generator = generator_factory()

        results: Dict[str, object] = {
            "batch_size": self.batch_size,
            "seed": self.seed,
            "window": self.window,
            "num_workers": self.num_workers,
            "replica_shards": self.replica_shards,
            "scenarios": {},
        }
        for name, factory in self.scenarios.items():
            stream = factory(
                generator, batch_size=self.batch_size, seed=self.seed
            )
            entry = {
                "dataset": primary_name,
                "total_batches": stream.total_batches,
                "total_records": stream.total_records,
                "rate_hints": {
                    phase.name: phase.rate_hint
                    for phase in stream.phases
                    if phase.rate_hint is not None
                },
                "models": {},
            }
            for model in SINGLE_STREAM_MODELS:
                report = self._run_model(primary, stream, model)
                entry["models"][model] = report_row(report)
            results["scenarios"][name] = entry

        if self.include_events:
            for name, factory in self.event_scenarios.items():
                event_stream = factory(
                    generator, batch_size=self.batch_size, seed=self.seed
                )
                entry = {
                    "dataset": primary_name,
                    "plane": "packet-events",
                    "total_batches": event_stream.total_batches,
                    "total_records": event_stream.total_records,
                    "rate_hints": {
                        phase.name: phase.rate_hint
                        for phase in event_stream.phases
                        if phase.rate_hint is not None
                    },
                    "models": {},
                }
                # The adapter yields plain stream batches, so every single-
                # stream execution model consumes it unchanged.
                for model in SINGLE_STREAM_MODELS:
                    report = self._run_model(primary, event_stream, model)
                    entry["models"][model] = report_row(report)
                results["scenarios"][name] = entry

        if self.include_fleet:
            fleet_stream = fleet_scenario(
                batch_size=self.batch_size, seed=self.seed
            )
            needed = {schema.name for schema in fleet_stream.schemas}
            if needed <= set(self.detectors):
                entry = {
                    "dataset": "+".join(sorted(needed)),
                    "total_batches": fleet_stream.total_batches,
                    "total_records": fleet_stream.total_records,
                    "models": {},
                }
                for model in FLEET_MODELS:
                    workers = self.num_workers if model == "sharded-workers" else 0
                    report = self._fleet_service().run_stream(
                        fleet_stream, num_workers=workers
                    )
                    entry["models"][model] = report_row(report)
                results["scenarios"]["fleet"] = entry

        if self.include_fleet_control:
            results["fleet_control"] = self._run_fleet_control(
                primary_name, primary, generator
            )

        if self.include_lifecycle:
            stream = self.lifecycle_scenario(
                generator, batch_size=self.batch_size, seed=self.seed
            )
            supervised_service = DetectionService(
                primary,
                max_batch_size=max(self.batch_size, 1),
                flush_interval=0.0,
                window=self.lifecycle_window,
            )
            supervisor = DriftSupervisor(
                supervised_service,
                policy=self.lifecycle_policy,
                trainer=self.lifecycle_trainer,
                background=False,  # deterministic: retrain at the boundary
            )
            outcome = supervisor.run_stream(stream)
            results["lifecycle"] = {
                "scenario": "retrain-recovery",
                "dataset": primary_name,
                "total_batches": stream.total_batches,
                "total_records": stream.total_records,
                "window": self.lifecycle_window,
                "policy": {
                    "far_ceiling": self.lifecycle_policy.far_ceiling,
                    "dr_floor": self.lifecycle_policy.dr_floor,
                    "unknown_ceiling": self.lifecycle_policy.unknown_ceiling,
                    "min_records": self.lifecycle_policy.min_records,
                    "cooldown_records": self.lifecycle_policy.cooldown_records,
                },
                **lifecycle_row(outcome),
            }
        return results
