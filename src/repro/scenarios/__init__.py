"""``repro.scenarios`` — the composable streaming-workload library.

Scenarios are the workloads the serving tier is judged against: seeded,
re-iterable traffic episodes mixing benign and attack classes the way the
DDoS literature's replayed-PCAP load tests do (cf. the dpdk_100g attack
generator: flood variants, low-and-slow attacks, configurable
benign/attack mixing ratios).  The package splits into four pieces:

* :mod:`repro.scenarios.builder` — declare scenarios as data:
  :class:`Segment` values pairing a name and batch budget with a mix
  schedule (:class:`Constant` / :class:`Ramp` / :class:`Spike`), an
  optional :class:`Drift` schedule (threaded across segments) and an
  advisory rate hint; :class:`Scenario` compiles them into the
  :class:`~repro.data.generator.StreamPhase` list a deterministic
  :class:`~repro.data.generator.TrafficStream` executes.
* :mod:`repro.scenarios.presets` — the library: :func:`flood_scenario`,
  :func:`probe_sweep_scenario`, :func:`imbalance_shift_scenario`,
  :func:`slow_dos_scenario`, the lifecycle-tier
  :func:`retrain_recovery_scenario` (pure covariate drift that degrades a
  deployed detector) and the cross-dataset :func:`fleet_scenario`.
* :mod:`repro.scenarios.fleet` — :class:`InterleavedStream` (round-robin
  multi-corpus feeds) and :func:`build_fleet_service` (one dataset-routed
  detector shard per corpus).
* :mod:`repro.scenarios.suite` — :class:`ScenarioSuite`, which sweeps
  every preset through the synchronous, worker-pool and sharded execution
  models and produces the ``BENCH_scenarios.json`` regression rows.

Authoring guide, preset table and the determinism/re-iterability
guarantees: ``docs/SCENARIOS.md``.
"""

from .builder import (
    Constant,
    Drift,
    Mix,
    MixSchedule,
    Ramp,
    Scenario,
    ScenarioBuilder,
    Segment,
    Spike,
)
from .fleet import (
    InterleavedStream,
    build_fleet_service,
    build_replica_fleet,
    overload_scenario,
    rollout_drift_scenario,
)
from .presets import (
    EVENT_STREAM_PRESETS,
    RATE_BASELINE,
    RATE_FLOOD,
    RATE_SLOW,
    SINGLE_STREAM_PRESETS,
    fleet_scenario,
    flood_scenario,
    imbalance_shift_scenario,
    probe_sweep_scenario,
    retrain_recovery_scenario,
    slow_dos_scenario,
    syn_flood_event_scenario,
)
from .suite import ScenarioSuite, report_row

__all__ = [
    "Mix",
    "MixSchedule",
    "Constant",
    "Ramp",
    "Spike",
    "Drift",
    "Segment",
    "Scenario",
    "ScenarioBuilder",
    "InterleavedStream",
    "build_fleet_service",
    "build_replica_fleet",
    "overload_scenario",
    "rollout_drift_scenario",
    "flood_scenario",
    "probe_sweep_scenario",
    "imbalance_shift_scenario",
    "slow_dos_scenario",
    "retrain_recovery_scenario",
    "fleet_scenario",
    "syn_flood_event_scenario",
    "SINGLE_STREAM_PRESETS",
    "EVENT_STREAM_PRESETS",
    "RATE_BASELINE",
    "RATE_FLOOD",
    "RATE_SLOW",
    "ScenarioSuite",
    "report_row",
]
