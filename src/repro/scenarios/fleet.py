"""Cross-dataset stream interleaving for multi-detector fleets.

The paper evaluates NSL-KDD and UNSW-NB15 with separately trained
detectors; a deployment runs both behind one front door and routes each
submission to the detector trained on its sensor's schema.
:class:`InterleavedStream` produces that workload: it round-robins the
batches of several single-schema :class:`~repro.data.generator.TrafficStream`
drivers into one feed, re-numbering the global batch index and prefixing
every phase label with its corpus name (``nsl-kdd:syn-flood``) so per-phase
reports stay separable after the merge.

The feed plugs straight into a dataset-routed
:class:`~repro.serving.sharding.ShardedDetectionService`: the router reads
``records.schema.name`` per submission, so every batch lands on the shard
fitted for its corpus.  Like the underlying streams, an interleaved stream
is deterministic and re-iterable — every iteration replays the identical
batch sequence.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from ..core.detector import PelicanDetector
from ..data.generator import StreamBatch, TrafficStream
from ..serving.service import DetectionService
from ..serving.sharding import ShardedDetectionService, ShardRouter

__all__ = ["InterleavedStream", "build_fleet_service", "validate_detector_keys"]


def validate_detector_keys(detectors: Mapping[str, PelicanDetector]) -> None:
    """Check every detector is keyed by the schema name it was fitted on."""
    for name, detector in detectors.items():
        if detector.schema.name != name:
            raise ValueError(
                f"detector keyed {name!r} was fitted on schema "
                f"{detector.schema.name!r}"
            )


class InterleavedStream:
    """Round-robin interleaving of several :class:`TrafficStream` drivers.

    Parameters
    ----------
    streams:
        The single-schema streams to interleave.  They may have different
        lengths; once a stream is exhausted the remaining ones keep taking
        turns.
    names:
        Per-stream label prefixed onto phase names (default: the stream's
        schema name, suffixed with ``#index`` when duplicated).
    """

    def __init__(
        self,
        streams: Sequence[TrafficStream],
        names: Optional[Sequence[str]] = None,
    ) -> None:
        if not streams:
            raise ValueError("an interleaved stream needs at least one stream")
        self.streams = list(streams)
        if names is None:
            names = [stream.schema.name for stream in self.streams]
            seen: Dict[str, int] = {}
            for index, name in enumerate(names):
                count = seen.get(name, 0)
                if count:
                    names[index] = f"{name}#{count}"
                seen[name] = count + 1
        elif len(names) != len(self.streams):
            raise ValueError("names must be index-aligned with streams")
        self.names = list(names)

    @property
    def schemas(self):
        return [stream.schema for stream in self.streams]

    @property
    def total_batches(self) -> int:
        return sum(stream.total_batches for stream in self.streams)

    @property
    def total_records(self) -> int:
        return sum(stream.total_records for stream in self.streams)

    def __iter__(self) -> Iterator[StreamBatch]:
        return self.batches()

    def batches(self) -> Iterator[StreamBatch]:
        """Yield the interleaved batches (deterministic and re-iterable)."""
        iterators: List[Optional[Iterator[StreamBatch]]] = [
            stream.batches() for stream in self.streams
        ]
        index = 0
        while any(iterator is not None for iterator in iterators):
            for position, iterator in enumerate(iterators):
                if iterator is None:
                    continue
                try:
                    batch = next(iterator)
                except StopIteration:
                    iterators[position] = None
                    continue
                yield replace(
                    batch,
                    phase=f"{self.names[position]}:{batch.phase}",
                    index=index,
                )
                index += 1


def build_fleet_service(
    detectors: Mapping[str, PelicanDetector],
    **service_kwargs,
) -> ShardedDetectionService:
    """One dataset-routed shard per fitted detector, keyed by schema name.

    ``detectors`` maps dataset name (``"nsl-kdd"``, ``"unsw-nb15"``) to a
    fitted detector; the returned
    :class:`~repro.serving.sharding.ShardedDetectionService` routes every
    submission to the shard whose detector was trained on that schema, and
    raises on traffic from a corpus no detector covers (routing gaps fail
    loudly).  Extra keyword arguments go to each shard's
    :class:`~repro.serving.service.DetectionService`.
    """
    if not detectors:
        raise ValueError("a fleet needs at least one detector")
    validate_detector_keys(detectors)
    names = list(detectors)
    shards = [
        DetectionService(detectors[name], **service_kwargs) for name in names
    ]
    router = ShardRouter(
        len(names),
        "dataset",
        assignment={name: index for index, name in enumerate(names)},
    )
    return ShardedDetectionService(shards, router, names=names)
