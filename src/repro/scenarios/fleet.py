"""Cross-dataset stream interleaving for multi-detector fleets.

The paper evaluates NSL-KDD and UNSW-NB15 with separately trained
detectors; a deployment runs both behind one front door and routes each
submission to the detector trained on its sensor's schema.
:class:`InterleavedStream` produces that workload: it round-robins the
batches of several single-schema :class:`~repro.data.generator.TrafficStream`
drivers into one feed, re-numbering the global batch index and prefixing
every phase label with its corpus name (``nsl-kdd:syn-flood``) so per-phase
reports stay separable after the merge.

The feed plugs straight into a dataset-routed
:class:`~repro.serving.sharding.ShardedDetectionService`: the router reads
``records.schema.name`` per submission, so every batch lands on the shard
fitted for its corpus.  Like the underlying streams, an interleaved stream
is deterministic and re-iterable — every iteration replays the identical
batch sequence.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from ..core.detector import PelicanDetector
from ..data.generator import StreamBatch, TrafficGenerator, TrafficStream
from ..serving.service import DetectionService
from ..serving.sharding import ShardedDetectionService, ShardRouter
from .builder import Constant, Drift, Scenario, Segment

__all__ = [
    "InterleavedStream",
    "build_fleet_service",
    "build_replica_fleet",
    "validate_detector_keys",
    "overload_scenario",
    "rollout_drift_scenario",
]


def validate_detector_keys(detectors: Mapping[str, PelicanDetector]) -> None:
    """Check every detector is keyed by the schema name it was fitted on."""
    for name, detector in detectors.items():
        if detector.schema.name != name:
            raise ValueError(
                f"detector keyed {name!r} was fitted on schema "
                f"{detector.schema.name!r}"
            )


class InterleavedStream:
    """Round-robin interleaving of several :class:`TrafficStream` drivers.

    Parameters
    ----------
    streams:
        The single-schema streams to interleave.  They may have different
        lengths; once a stream is exhausted the remaining ones keep taking
        turns.
    names:
        Per-stream label prefixed onto phase names (default: the stream's
        schema name, suffixed with ``#index`` when duplicated).
    """

    def __init__(
        self,
        streams: Sequence[TrafficStream],
        names: Optional[Sequence[str]] = None,
    ) -> None:
        if not streams:
            raise ValueError("an interleaved stream needs at least one stream")
        self.streams = list(streams)
        if names is None:
            names = [stream.schema.name for stream in self.streams]
            seen: Dict[str, int] = {}
            for index, name in enumerate(names):
                count = seen.get(name, 0)
                if count:
                    names[index] = f"{name}#{count}"
                seen[name] = count + 1
        elif len(names) != len(self.streams):
            raise ValueError("names must be index-aligned with streams")
        self.names = list(names)

    @property
    def schemas(self):
        return [stream.schema for stream in self.streams]

    @property
    def total_batches(self) -> int:
        return sum(stream.total_batches for stream in self.streams)

    @property
    def total_records(self) -> int:
        return sum(stream.total_records for stream in self.streams)

    def __iter__(self) -> Iterator[StreamBatch]:
        return self.batches()

    def batches(self) -> Iterator[StreamBatch]:
        """Yield the interleaved batches (deterministic and re-iterable)."""
        iterators: List[Optional[Iterator[StreamBatch]]] = [
            stream.batches() for stream in self.streams
        ]
        index = 0
        while any(iterator is not None for iterator in iterators):
            for position, iterator in enumerate(iterators):
                if iterator is None:
                    continue
                try:
                    batch = next(iterator)
                except StopIteration:
                    iterators[position] = None
                    continue
                yield replace(
                    batch,
                    phase=f"{self.names[position]}:{batch.phase}",
                    index=index,
                )
                index += 1


def build_fleet_service(
    detectors: Mapping[str, PelicanDetector],
    **service_kwargs,
) -> ShardedDetectionService:
    """One dataset-routed shard per fitted detector, keyed by schema name.

    ``detectors`` maps dataset name (``"nsl-kdd"``, ``"unsw-nb15"``) to a
    fitted detector; the returned
    :class:`~repro.serving.sharding.ShardedDetectionService` routes every
    submission to the shard whose detector was trained on that schema, and
    raises on traffic from a corpus no detector covers (routing gaps fail
    loudly).  Extra keyword arguments go to each shard's
    :class:`~repro.serving.service.DetectionService`.
    """
    if not detectors:
        raise ValueError("a fleet needs at least one detector")
    validate_detector_keys(detectors)
    names = list(detectors)
    shards = [
        DetectionService(detectors[name], **service_kwargs) for name in names
    ]
    router = ShardRouter(
        len(names),
        "dataset",
        assignment={name: index for index, name in enumerate(names)},
    )
    return ShardedDetectionService(shards, router, names=names)


def build_replica_fleet(
    detector: PelicanDetector,
    n_shards: int = 2,
    **service_kwargs,
) -> ShardedDetectionService:
    """``n_shards`` replica shards of one detector, record-striped.

    The homogeneous fleet the
    :class:`~repro.serving.fleet.FleetController` rollout path requires:
    every shard serves the same weights, so a challenger that wins on the
    canary shard is valid on every other shard, and merged quality counts
    stay bit-identical to a single-service run.  Extra keyword arguments
    go to each shard's :class:`~repro.serving.service.DetectionService`.
    """
    if n_shards <= 0:
        raise ValueError("a replica fleet needs at least one shard")
    shards = [
        DetectionService(detector, **service_kwargs) for _ in range(n_shards)
    ]
    return ShardedDetectionService(
        shards,
        ShardRouter(n_shards, "replica"),
        names=[f"replica-{index}" for index in range(n_shards)],
    )


def overload_scenario(
    generator: TrafficGenerator,
    batch_size: int = 64,
    seed: int = 0,
    attack_class: Optional[str] = None,
    calm_batches: int = 4,
    surge_batches: int = 10,
    cooldown_batches: int = 4,
    attack_fraction: float = 0.5,
) -> TrafficStream:
    """Calm → sustained surge → cooldown: the autoscaling workload.

    A light benign warm-up, then a long flood-intensity surge (hinted at
    ``RATE_FLOOD``) that keeps every worker saturated, then a calm tail.
    Served through a :class:`~repro.serving.fleet.FleetController` with an
    :class:`~repro.serving.fleet.AutoscalePolicy`, the surge drives pool
    backlog above the scale-up threshold and the cooldown lets it drain
    below the scale-down threshold — the preset that forces both edges of
    the control loop.  The class mix itself is ordinary flood traffic, so
    reports stay comparable with :func:`~repro.scenarios.flood_scenario`
    runs.
    """
    from .presets import RATE_BASELINE, RATE_FLOOD, _pick_attack

    if not 0.0 < attack_fraction < 1.0:
        raise ValueError("attack_fraction must be in (0, 1)")
    normal = generator.schema.normal_class
    attack = _pick_attack(generator, attack_class, ("dos",), "attack")
    benign = {normal: 1.0}
    surge = {normal: 1.0 - attack_fraction, attack: attack_fraction}
    scenario = Scenario(
        "overload",
        (
            Segment("calm", calm_batches, Constant(benign),
                    rate_hint=RATE_BASELINE),
            Segment("surge", surge_batches, Constant(surge),
                    rate_hint=RATE_FLOOD),
            Segment("cooldown", cooldown_batches, Constant(benign),
                    rate_hint=RATE_BASELINE),
        ),
    )
    return scenario.build(generator, batch_size=batch_size, seed=seed)


def rollout_drift_scenario(
    generator: TrafficGenerator,
    batch_size: int = 64,
    seed: int = 0,
    attack_class: Optional[str] = None,
    baseline_batches: int = 6,
    onset_batches: int = 4,
    hold_batches: int = 24,
    attack_fraction: float = 0.3,
    drift_to: float = 3.5,
) -> TrafficStream:
    """Aimed evasion drift with a hold long enough for a staged rollout.

    The :func:`~repro.scenarios.retrain_recovery_scenario` shape — steady
    mixed feed, covariate shift aimed along the generator's evasion
    direction, then a long degraded hold — but with the hold stretched to
    span a full :class:`~repro.serving.fleet.FleetController` rollout:
    shadow trial on the canary shard, staggered shard-by-shard swaps, and
    the post-swap watch window, all under the *same* drifted distribution
    so the promotion gate and the rollback floor judge like against like.
    """
    from .presets import RATE_BASELINE, _pick_attack

    if not 0.0 < attack_fraction < 1.0:
        raise ValueError("attack_fraction must be in (0, 1)")
    if drift_to <= 0.0:
        raise ValueError("drift_to must be positive (this is a drift scenario)")
    normal = generator.schema.normal_class
    attack = _pick_attack(generator, attack_class, ("dos",), "attack")
    mixed = {normal: 1.0 - attack_fraction, attack: attack_fraction}
    scenario = Scenario(
        "rollout-drift",
        (
            Segment("baseline", baseline_batches, Constant(mixed),
                    rate_hint=RATE_BASELINE),
            Segment("drift-onset", onset_batches, Constant(mixed),
                    drift=Drift(to=drift_to), rate_hint=RATE_BASELINE),
            Segment("rollout-hold", hold_batches, Constant(mixed),
                    rate_hint=RATE_BASELINE),
        ),
    )
    return scenario.build(
        generator,
        batch_size=batch_size,
        seed=seed,
        drift_direction=generator.evasion_direction(attack),
    )
