"""Composable scenario construction: segments, schedules and the builder.

A *scenario* is declared as data — an ordered list of named
:class:`Segment` values — and compiled into the
:class:`~repro.data.generator.StreamPhase` list a
:class:`~repro.data.generator.TrafficStream` executes.  Each segment pairs a
*mix schedule* (how the benign/attack composition evolves across the
segment) with an optional *drift schedule* (how far the numeric features
shift) and an advisory *rate hint* (the dpdk_100g-style PPS intent):

* :class:`Constant` — one fixed class mix for the whole segment;
* :class:`Ramp` — linear interpolation from a start mix to an end mix
  (gradual attack onset, prior flips);
* :class:`Spike` — rise from a base mix to a peak mix and back down inside
  one segment (a short burst that reads as a single phase in reports).

Drift is expressed with :class:`Drift` and *threads across segments*: a
segment that ramps the covariate shift to 1.5 leaves the following segments
drifted by 1.5 unless they ramp further or explicitly jump back — covariate
shift does not undo itself when a ramp ends.  Compilation is pure data
transformation; all randomness stays in :class:`TrafficStream`, so the
determinism and re-iterability guarantees of the stream carry over
unchanged (see ``docs/SCENARIOS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..data.generator import StreamPhase, TrafficGenerator, TrafficStream

__all__ = [
    "Mix",
    "MixSchedule",
    "Constant",
    "Ramp",
    "Spike",
    "Drift",
    "Segment",
    "Scenario",
    "ScenarioBuilder",
]

#: A class-composition mapping ``class name -> weight`` (normalised by the
#: stream; classes omitted get weight zero).
Mix = Mapping[str, float]


def _check_mix(mix: Mix, where: str) -> Dict[str, float]:
    if not mix:
        raise ValueError(f"{where}: a mix cannot be empty")
    if any(weight < 0 for weight in mix.values()):
        raise ValueError(f"{where}: mix weights must be non-negative")
    if sum(mix.values()) <= 0:
        raise ValueError(f"{where}: mix weights must sum to a positive value")
    return dict(mix)


class MixSchedule:
    """How a segment's class composition evolves batch-by-batch.

    Subclasses compile themselves into one or more :class:`StreamPhase`
    values sharing the segment's name, so a multi-phase schedule (a spike's
    rise and fall) still reads as a single phase in per-phase reports.
    """

    def to_phases(
        self,
        name: str,
        batches: int,
        drift_start: float,
        drift_scale: float,
        rate_hint: Optional[float],
    ) -> List[StreamPhase]:
        raise NotImplementedError


@dataclass(frozen=True)
class Constant(MixSchedule):
    """One fixed mix for the whole segment."""

    mix: Mix

    def __post_init__(self) -> None:
        object.__setattr__(self, "mix", _check_mix(self.mix, "Constant"))

    def to_phases(self, name, batches, drift_start, drift_scale, rate_hint):
        return [
            StreamPhase(
                name,
                batches,
                self.mix,
                drift_scale=drift_scale,
                drift_start=drift_start,
                rate_hint=rate_hint,
            )
        ]


@dataclass(frozen=True)
class Ramp(MixSchedule):
    """Linear interpolation from ``start`` to ``end`` across the segment."""

    start: Mix
    end: Mix

    def __post_init__(self) -> None:
        object.__setattr__(self, "start", _check_mix(self.start, "Ramp start"))
        object.__setattr__(self, "end", _check_mix(self.end, "Ramp end"))

    def to_phases(self, name, batches, drift_start, drift_scale, rate_hint):
        return [
            StreamPhase(
                name,
                batches,
                self.start,
                end_mix=self.end,
                drift_scale=drift_scale,
                drift_start=drift_start,
                rate_hint=rate_hint,
            )
        ]


@dataclass(frozen=True)
class Spike(MixSchedule):
    """Rise from ``base`` to ``peak`` and fall back within one segment.

    Compiles to a rise phase and a fall phase with the same name: the rise
    covers the first ``ceil(batches / 2)`` batches ending at the peak mix,
    the fall covers the rest returning to the base mix (the peak is held for
    the two adjoining batches).  A single-batch segment jumps straight to
    the peak.
    """

    base: Mix
    peak: Mix

    def __post_init__(self) -> None:
        object.__setattr__(self, "base", _check_mix(self.base, "Spike base"))
        object.__setattr__(self, "peak", _check_mix(self.peak, "Spike peak"))

    def to_phases(self, name, batches, drift_start, drift_scale, rate_hint):
        rise = (batches + 1) // 2
        fall = batches - rise
        # Split the segment's total drift movement proportionally between
        # the two compiled phases.  Each phase ramps internally over its own
        # batches, so the offset is piecewise linear and holds still across
        # the two adjoining peak batches — not one straight line.
        rise_scale = drift_scale * (rise / batches)
        phases = [
            StreamPhase(
                name,
                rise,
                self.base,
                end_mix=self.peak,
                drift_scale=rise_scale,
                drift_start=drift_start,
                rate_hint=rate_hint,
            )
        ]
        if fall:
            phases.append(
                StreamPhase(
                    name,
                    fall,
                    self.peak,
                    end_mix=self.base,
                    drift_scale=drift_scale - rise_scale,
                    drift_start=drift_start + rise_scale,
                    rate_hint=rate_hint,
                )
            )
        return phases


@dataclass(frozen=True)
class Drift:
    """Covariate-shift schedule for one segment.

    ``Drift(to=1.5)`` ramps the numeric-feature offset linearly from the
    running offset (whatever the previous segments accumulated) up to 1.5
    over the segment.  ``Drift(to=x, start=s)`` first jumps the running
    offset to ``s`` at the segment boundary — the only way to move *down*,
    e.g. ``Drift(to=0.0, start=0.0)`` models a recalibrated sensor.  Within
    a segment drift is monotone non-decreasing (``to >= start``), matching
    the :class:`StreamPhase` contract.
    """

    to: float
    start: Optional[float] = None

    def __post_init__(self) -> None:
        if self.to < 0 or (self.start is not None and self.start < 0):
            raise ValueError("drift offsets must be non-negative")
        if self.start is not None and self.to < self.start:
            raise ValueError(
                "drift is monotone within a segment: to must be >= start "
                "(jump down with an explicit start= instead)"
            )


@dataclass(frozen=True)
class Segment:
    """One named episode of a scenario, declared as data.

    Parameters
    ----------
    name:
        Phase label attached to every batch (per-phase monitoring key).
    batches:
        Number of record batches the segment emits.
    mix:
        A :class:`MixSchedule`, or a plain mapping (shorthand for
        :class:`Constant`).
    drift:
        Optional :class:`Drift` schedule.  Omitted, the segment *holds* the
        drift offset accumulated so far.
    rate_hint:
        Advisory records/second intent carried onto the compiled phases
        (see :class:`StreamPhase`).
    """

    name: str
    batches: int
    mix: Union[MixSchedule, Mix]
    drift: Optional[Drift] = None
    rate_hint: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a segment needs a non-empty name")
        if self.batches <= 0:
            raise ValueError("a segment must emit at least one batch")
        if not isinstance(self.mix, MixSchedule):
            object.__setattr__(self, "mix", Constant(self.mix))
        if self.rate_hint is not None and self.rate_hint <= 0:
            raise ValueError("rate_hint must be positive when given")


@dataclass(frozen=True)
class Scenario:
    """An ordered, immutable collection of :class:`Segment` values.

    Scenarios compose with ``+`` (segment-list concatenation, drift offsets
    re-threaded across the join) and compile to the exact
    :class:`StreamPhase` list a :class:`TrafficStream` executes, so the
    stream's determinism guarantee — same ``(generator, scenario,
    batch_size, seed)``, same batches — holds by construction.
    """

    name: str
    segments: Tuple[Segment, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "segments", tuple(self.segments))

    def __add__(self, other: "Scenario") -> "Scenario":
        if not isinstance(other, Scenario):
            return NotImplemented
        return Scenario(
            name=f"{self.name}+{other.name}",
            segments=self.segments + other.segments,
        )

    @property
    def total_batches(self) -> int:
        return sum(segment.batches for segment in self.segments)

    def compile(self) -> List[StreamPhase]:
        """Compile the segments into stream phases, threading drift."""
        if not self.segments:
            raise ValueError(f"scenario {self.name!r} has no segments")
        phases: List[StreamPhase] = []
        offset = 0.0
        for segment in self.segments:
            if segment.drift is None:
                start, scale = offset, 0.0
            else:
                start = offset if segment.drift.start is None else segment.drift.start
                if segment.drift.to < start:
                    raise ValueError(
                        f"segment {segment.name!r}: drift ramps down from the "
                        f"running offset {start:g} to {segment.drift.to:g}; "
                        "jump with Drift(start=...) instead"
                    )
                scale = segment.drift.to - start
            phases.extend(
                segment.mix.to_phases(
                    segment.name, segment.batches, start, scale, segment.rate_hint
                )
            )
            offset = start + scale
        return phases

    def build(
        self,
        generator: TrafficGenerator,
        batch_size: int = 64,
        seed: int = 0,
        drift_direction=None,
    ) -> TrafficStream:
        """Compile and wrap into a deterministic :class:`TrafficStream`.

        ``drift_direction`` aims the covariate shift along an explicit
        feature-space vector (e.g.
        :meth:`TrafficGenerator.evasion_direction`); omitted, the stream
        draws its classic random direction from ``seed``.
        """
        return TrafficStream(
            generator,
            self.compile(),
            batch_size=batch_size,
            seed=seed,
            drift_direction=drift_direction,
        )


class ScenarioBuilder:
    """Fluent front-end over :class:`Scenario`.

    ::

        stream = (
            ScenarioBuilder("demo")
            .segment("baseline", batches=4, mix={"normal": 1.0})
            .segment("burst", batches=3, mix=Spike({"normal": 1.0},
                                                   {"normal": 0.3, "dos": 0.7}))
            .build(generator, batch_size=64, seed=0)
        )
    """

    def __init__(self, name: str) -> None:
        self._name = name
        self._segments: List[Segment] = []

    def segment(
        self,
        name: str,
        batches: int,
        mix: Union[MixSchedule, Mix],
        drift: Optional[Drift] = None,
        rate_hint: Optional[float] = None,
    ) -> "ScenarioBuilder":
        """Append one segment; returns ``self`` for chaining."""
        self._segments.append(Segment(name, batches, mix, drift, rate_hint))
        return self

    def scenario(self) -> Scenario:
        """Freeze the accumulated segments into a :class:`Scenario`."""
        return Scenario(self._name, tuple(self._segments))

    def build(
        self,
        generator: TrafficGenerator,
        batch_size: int = 64,
        seed: int = 0,
        drift_direction=None,
    ) -> TrafficStream:
        return self.scenario().build(
            generator,
            batch_size=batch_size,
            seed=seed,
            drift_direction=drift_direction,
        )
