"""``repro.serving`` — the streaming detection service.

Turns a fitted :class:`~repro.core.detector.PelicanDetector` into a
continuously-running scorer for traffic streams.  The subsystem is built
from three pieces, each independently testable:

* :class:`MicroBatcher` (:mod:`repro.serving.batching`) — size/age-triggered
  micro-batching of incoming records;
* :class:`CachedPreprocessor` + :class:`DetectionService`
  (:mod:`repro.serving.service`) — cached, vectorised preprocessing and the
  graph-free ``fast=True`` forward pass, with per-batch latency accounting;
* :class:`RollingDetectionMonitor` / :class:`ThroughputMonitor`
  (:mod:`repro.serving.monitor`) — sliding-window ACC/DR/FAR plus
  records-per-second headline numbers.

Workloads come from :class:`repro.data.TrafficStream`, the episodic
benign/flood/drift scenario driver.  See ``examples/streaming_detection.py``
for the end-to-end wiring.
"""

from .batching import MicroBatcher
from .monitor import RollingDetectionMonitor, ThroughputMonitor
from .service import BatchResult, CachedPreprocessor, DetectionService, ServiceReport

__all__ = [
    "MicroBatcher",
    "RollingDetectionMonitor",
    "ThroughputMonitor",
    "CachedPreprocessor",
    "DetectionService",
    "BatchResult",
    "ServiceReport",
]
