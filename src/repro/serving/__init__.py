"""``repro.serving`` — the streaming detection service.

Turns fitted :class:`~repro.core.detector.PelicanDetector` instances into a
continuously-running scorer for traffic streams.  The request path is built
from three independently testable pieces:

* :class:`MicroBatcher` (:mod:`repro.serving.batching`) — size/age-triggered
  micro-batching of incoming records, with per-submission arrival stamps so
  the age trigger always measures from the true oldest pending record;
* :class:`CachedPreprocessor` + :class:`DetectionService`
  (:mod:`repro.serving.service`) — cached, vectorised preprocessing (with
  per-column unknown-vocabulary drift counters) and the graph-free
  ``fast=True`` forward pass, with per-batch latency accounting;
* :class:`RollingDetectionMonitor` / :class:`ThroughputMonitor`
  (:mod:`repro.serving.monitor`) — thread-safe sliding-window ACC/DR/FAR
  plus a records-per-second headline computed over the wall-clock busy
  span, so overlapping concurrent batches are not double-counted.

Four execution models run on that path:

* **Synchronous** — :class:`DetectionService` alone.  ``submit``/``poll``/
  ``flush`` score on the calling thread; the age trigger fires on the next
  call.  Results, monitor updates and phase attribution all happen in
  submission order.
* **Worker pool** — :class:`WorkerPool` (:mod:`repro.serving.workers`)
  wraps a service: micro-batches are scored concurrently on a thread pool
  and the age trigger fires on a background timer.  Scoring completes out
  of order, but a reorder buffer commits monitor updates and phase
  attribution strictly in submission order, so every report is
  record-for-record identical to the synchronous run — only the wall-clock
  numbers change.
* **Process pool** — :class:`ProcessWorkerPool`
  (:mod:`repro.serving.procpool`), the same surface with scoring moved
  into child processes: each child rehydrates a scoring-identical detector
  from a :class:`DetectorCheckpoint` and runs preprocessing + inference
  off the GIL, while the parent keeps every monitor and commits through
  the same reorder buffer — multi-core scaling with reports still
  record-for-record equal to the synchronous run.  Batches travel over a
  pluggable data plane (:mod:`repro.serving.transport`):
  :class:`QueueTransport` pickles them onto per-child queues, while
  :class:`SharedMemoryTransport` writes them into preallocated per-child
  shared-memory slot rings (zero-copy; only control tokens cross the
  queues) — ``ProcessWorkerPool(..., transport="shm")``.
* **Sharded** — :class:`ShardRouter` + :class:`ShardedDetectionService`
  (:mod:`repro.serving.sharding`) fan one stream out across several fitted
  detectors (replicas, one per dataset, or one per class family) and merge
  the per-shard rolling/per-phase/throughput reports into one
  :class:`ServiceReport`.  Records are partitioned, never duplicated;
  within a shard the chosen execution model's ordering guarantee applies
  (``run_stream(..., num_workers=N, worker_backend="thread"|"process")``
  picks the per-shard pool backend), and with replica routing the merged
  confusion counts equal the single-service run on the same stream.

The fleet control plane (:mod:`repro.serving.fleet`) operates those
models: :class:`FleetController` owns a sharded fleet with one worker pool
per shard and closes two control loops on stream batch boundaries —
utilization-driven autoscaling (live ``resize()`` on both pool backends,
driven by :class:`PoolStats` backlog and monitor utilization, between
:class:`AutoscalePolicy` bounds) and staged canary rollout of a challenger
detector (shadow trial on a canary shard, :class:`ShadowComparison` gate,
staggered shard-by-shard hot-swap, automatic rollback when post-swap DR
falls through the :class:`RolloutPolicy` floor).  Every decision lands in
a replayable fleet timeline on the report (see ``docs/SERVING.md``).

The model lifecycle lives in :mod:`repro.serving.lifecycle`:
:class:`DetectorCheckpoint` (single-archive save/load reconstructing a
scoring-identical detector), :class:`ShadowDeployment` (a challenger scores
the primary's traffic into its own monitors, any execution model) and
:class:`DriftSupervisor` (rolling-FAR/DR + vocabulary-drift thresholds →
replay-buffer retrain → atomic zero-drop hot-swap on a batch boundary).
See ``docs/SERVING.md``.

Workloads come from the :mod:`repro.scenarios` library — declarative
episodes compiled onto the :class:`repro.data.TrafficStream` driver:
floods, low-and-slow probes, slow-rate DoS, class-imbalance shifts and the
cross-dataset fleet feed.  ``examples/streaming_detection.py``,
``examples/concurrent_serving.py`` and ``examples/cross_dataset_fleet.py``
show the end-to-end wiring, and ``repro.scenarios.ScenarioSuite`` sweeps
every preset across the four execution models.
"""

from .batching import MicroBatcher
from .monitor import RollingDetectionMonitor, ThroughputMonitor
from .service import (
    BatchResult,
    CachedPreprocessor,
    DetectionService,
    PhaseAttributor,
    ServiceReport,
)
from .sharding import ShardedDetectionService, ShardRouter
from .workers import WorkerPool
from .lifecycle import (
    DetectorCheckpoint,
    DriftPolicy,
    DriftSupervisor,
    LifecycleEvent,
    LifecycleOutcome,
    ReplayBuffer,
    ShadowComparison,
    ShadowDeployment,
    ShadowReport,
)
from .procpool import ProcessWorkerPool
from .transport import QueueTransport, SharedMemoryTransport, Transport
from .fleet import (
    AutoscalePolicy,
    FleetAction,
    FleetController,
    FleetEvent,
    FleetOutcome,
    RolloutPolicy,
)
from .workers import PoolStats

__all__ = [
    "MicroBatcher",
    "RollingDetectionMonitor",
    "ThroughputMonitor",
    "CachedPreprocessor",
    "DetectionService",
    "PhaseAttributor",
    "BatchResult",
    "ServiceReport",
    "WorkerPool",
    "PoolStats",
    "ProcessWorkerPool",
    "Transport",
    "QueueTransport",
    "SharedMemoryTransport",
    "FleetController",
    "AutoscalePolicy",
    "RolloutPolicy",
    "FleetEvent",
    "FleetAction",
    "FleetOutcome",
    "ShardRouter",
    "ShardedDetectionService",
    "DetectorCheckpoint",
    "ShadowDeployment",
    "ShadowComparison",
    "ShadowReport",
    "DriftPolicy",
    "DriftSupervisor",
    "LifecycleEvent",
    "LifecycleOutcome",
    "ReplayBuffer",
]
