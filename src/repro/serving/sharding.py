"""Multi-detector sharding: one traffic stream, several fitted detectors.

The paper evaluates two corpora (NSL-KDD and UNSW-NB15) with separately
trained detectors; a deployment likewise runs several detectors side by
side — replicas for capacity, one per dataset/sensor, or one per attack
family behind a coarse front classifier.  This module routes a stream
across such a fleet and merges the per-shard monitoring back into a single
:class:`~repro.serving.service.ServiceReport`:

* :class:`ShardRouter` assigns records to shards under one of three
  policies —

  - ``"replica"`` — record-level round-robin striping across identical
    detector replicas (pure capacity scaling; merged quality counts are
    identical to a single-service run because every record is scored by
    the same weights);
  - ``"dataset"`` — whole submissions routed by their schema name (the
    paper's two-corpus setting: an NSL-KDD and a UNSW-NB15 detector
    serving one mixed feed);
  - ``"class-family"`` — per-record routing by a key function.  The
    default key is the record's class label, a ground-truth stand-in for
    the upstream coarse classifier a real deployment would use; pass
    ``key=`` to route on anything observable (a categorical column, a
    flow tag, ...).

* :class:`ShardedDetectionService` owns one
  :class:`~repro.serving.service.DetectionService` per shard, fans
  submissions out through the router and merges rolling quality (summed
  confusion counts), per-phase attribution, vocabulary-drift counters and
  throughput (records over the shards' summed busy time — exact for
  inline runs, a conservative lower bound when worker pools overlap
  shards on separate cores) into one report, with the per-shard reports
  attached under ``shard_reports``.

``run_stream`` reuses the :class:`~repro.serving.service.PhaseAttributor`
seam — one attributor per shard, merged per phase afterwards — and can run
every shard on its own :class:`~repro.serving.workers.WorkerPool`
(``worker_backend="thread"``) or
:class:`~repro.serving.procpool.ProcessWorkerPool`
(``worker_backend="process"``) for concurrent sharded serving.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from ..core.detector import PelicanDetector
from ..data.dataset import TrafficRecords
from ..data.generator import StreamBatch
from ..metrics.ids_metrics import DetectionReport
from .service import BatchResult, DetectionService, PhaseAttributor, ServiceReport
from .transport import normalize_transport_name
from .workers import WorkerPool

__all__ = ["ShardRouter", "ShardedDetectionService"]


class ShardRouter:
    """Assigns incoming records to one of ``n_shards`` detector shards.

    Parameters
    ----------
    n_shards:
        Number of shards routed across.
    policy:
        ``"replica"``, ``"dataset"`` or ``"class-family"`` (see module
        docstring).
    assignment:
        Routing table for the keyed policies: dataset name → shard index
        (``"dataset"``) or routing key → shard index (``"class-family"``).
    key:
        ``"class-family"`` only — callable mapping a
        :class:`TrafficRecords` batch to one routing key per record;
        defaults to the record labels.
    default:
        Shard index for keys missing from ``assignment``; when omitted an
        unknown key raises ``KeyError`` (so routing gaps fail loudly).
    """

    POLICIES = ("replica", "dataset", "class-family")

    def __init__(
        self,
        n_shards: int,
        policy: str = "replica",
        assignment: Optional[Mapping[str, int]] = None,
        key: Optional[Callable[[TrafficRecords], Sequence[str]]] = None,
        default: Optional[int] = None,
    ) -> None:
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if policy not in self.POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; choices: {', '.join(self.POLICIES)}"
            )
        self.n_shards = int(n_shards)
        self.policy = policy
        self.assignment = dict(assignment) if assignment else {}
        if policy in ("dataset", "class-family") and not self.assignment:
            raise ValueError(f"policy {policy!r} requires an assignment table")
        for routing_key, shard in self.assignment.items():
            if not 0 <= int(shard) < self.n_shards:
                raise ValueError(
                    f"assignment {routing_key!r} -> {shard} is outside "
                    f"[0, {self.n_shards})"
                )
        if default is not None and not 0 <= int(default) < self.n_shards:
            raise ValueError(f"default shard {default} is outside [0, {self.n_shards})")
        self.default = default
        self.key = key or (lambda records: records.labels)
        self._stripe_offset = 0

    def _lookup(self, routing_key: str) -> int:
        shard = self.assignment.get(str(routing_key), self.default)
        if shard is None:
            raise KeyError(
                f"no shard assigned for routing key {routing_key!r} and no "
                "default shard configured"
            )
        return int(shard)

    def route(self, records: TrafficRecords) -> List[np.ndarray]:
        """Partition ``records`` into per-shard index arrays.

        The arrays cover every record exactly once; shards receiving no
        records get an empty selection.
        """
        n_records = len(records)
        if self.policy == "replica":
            assignments = (self._stripe_offset + np.arange(n_records)) % self.n_shards
            # Continue the stripe across submissions so uneven batch sizes
            # cannot starve the high-numbered shards.
            self._stripe_offset = (self._stripe_offset + n_records) % self.n_shards
        elif self.policy == "dataset":
            shard = self._lookup(records.schema.name)
            assignments = np.full(n_records, shard, dtype=np.int64)
        else:  # class-family
            keys = self.key(records)
            assignments = np.fromiter(
                (self._lookup(key) for key in keys), dtype=np.int64, count=n_records
            )
        return [np.flatnonzero(assignments == i) for i in range(self.n_shards)]


class ShardedDetectionService:
    """Serve one stream with a fleet of detector shards.

    Parameters
    ----------
    shards:
        One fitted :class:`DetectionService` per shard, index-aligned with
        the router's shard numbering.
    router:
        The :class:`ShardRouter` distributing records; its ``n_shards``
        must match ``len(shards)``.
    names:
        Optional per-shard display names (default ``shard-0`` ...), used as
        keys of ``shard_reports`` in the merged report.
    """

    def __init__(
        self,
        shards: Sequence[DetectionService],
        router: ShardRouter,
        names: Optional[Sequence[str]] = None,
    ) -> None:
        if not shards:
            raise ValueError("a sharded service needs at least one shard")
        if router.n_shards != len(shards):
            raise ValueError(
                f"router expects {router.n_shards} shards, got {len(shards)}"
            )
        if names is not None and len(names) != len(shards):
            raise ValueError("names must be index-aligned with shards")
        self.shards = list(shards)
        self.router = router
        self.names = list(names) if names is not None else [
            f"shard-{index}" for index in range(len(shards))
        ]

    @classmethod
    def replicated(
        cls,
        detector: PelicanDetector,
        n_shards: int,
        **service_kwargs,
    ) -> "ShardedDetectionService":
        """Replica sharding: ``n_shards`` services over one fitted detector."""
        shards = [
            DetectionService(detector, **service_kwargs) for _ in range(n_shards)
        ]
        return cls(shards, ShardRouter(n_shards, "replica"))

    # ------------------------------------------------------------------ #
    @staticmethod
    def _pool_type(worker_backend: str):
        """Resolve a worker-backend name to its pool class."""
        if worker_backend == "process":
            # Imported here: procpool pulls in the lifecycle checkpoint
            # machinery, which imports this module back.
            from .procpool import ProcessWorkerPool

            return ProcessWorkerPool
        if worker_backend == "thread":
            return WorkerPool
        raise ValueError(
            f"unknown worker backend {worker_backend!r}; "
            "choices: thread, process"
        )

    def open_pools(
        self,
        num_workers: int,
        worker_backend: str = "thread",
        result_callbacks: Optional[Sequence[Callable[[BatchResult], None]]] = None,
        transport="queue",
    ) -> List[WorkerPool]:
        """Start one worker pool per shard and return them, index-aligned.

        The per-shard pool lifecycle seam shared by :meth:`run_stream` and
        the fleet controller: ``result_callbacks`` (index-aligned when
        given) become each pool's in-order committed-result hook;
        ``transport`` picks the process backend's data plane (``"queue"``
        or ``"shm"`` — see :mod:`repro.serving.transport`; ignored by the
        thread backend, which shares the parent's address space).  The
        caller owns the returned pools and must ``close()`` them.
        """
        if num_workers <= 0:
            raise ValueError("num_workers must be positive to open pools")
        if result_callbacks is not None and len(result_callbacks) != len(
            self.shards
        ):
            raise ValueError("result_callbacks must be index-aligned with shards")
        pool_type = self._pool_type(worker_backend)
        pool_kwargs = {}
        if worker_backend == "process":
            pool_kwargs["transport"] = transport
        return [
            pool_type(
                shard,
                num_workers=num_workers,
                result_callback=(
                    result_callbacks[index] if result_callbacks else None
                ),
                **pool_kwargs,
            ).start()
            for index, shard in enumerate(self.shards)
        ]

    def swap_shard(
        self,
        index: int,
        detector: PelicanDetector,
        pool: Optional[WorkerPool] = None,
        carry_unknown_counts: bool = True,
    ) -> PelicanDetector:
        """Hot-swap one shard's engine; returns that shard's retired detector.

        The per-shard addressing the staged rollout needs: unlike the
        supervisor's fleet-wide swap, only shard ``index`` changes models.
        When the shard is being driven through a worker pool, pass it so the
        swap drains the pool's in-flight batches first (and, for a process
        pool, re-ships the checkpoint to that shard's children).
        """
        if not 0 <= index < len(self.shards):
            raise IndexError(
                f"shard index {index} is outside [0, {len(self.shards)})"
            )
        if pool is not None:
            if pool.service is not self.shards[index]:
                raise ValueError(
                    f"pool does not wrap shard {index} ({self.names[index]!r})"
                )
            return pool.swap_detector(
                detector, carry_unknown_counts=carry_unknown_counts
            )
        return self.shards[index].swap_detector(
            detector, carry_unknown_counts=carry_unknown_counts
        )

    # ------------------------------------------------------------------ #
    def submit(self, records: TrafficRecords) -> List[BatchResult]:
        """Route and enqueue records; return every batch that became due."""
        results: List[BatchResult] = []
        for shard, indices in zip(self.shards, self.router.route(records)):
            if len(indices):
                results.extend(shard.submit(records.subset(indices)))
        return results

    def flush(self) -> List[BatchResult]:
        """Drain and process every shard's queued tail."""
        results: List[BatchResult] = []
        for shard in self.shards:
            results.extend(shard.flush())
        return results

    # ------------------------------------------------------------------ #
    def report(self) -> ServiceReport:
        """Merge the shard reports into one fleet-level report.

        Quality merges by summing confusion counts
        (:meth:`DetectionReport.merge`); throughput divides the fleet's
        records by the shards' summed busy time — exact for inline runs
        (shards take turns on one thread) and a conservative lower bound
        when worker pools overlap shards on separate cores; the latency
        distribution pools the shards' recent windows.
        """
        return self._merge(phase_reports={})

    def _merge(self, phase_reports: Dict[str, DetectionReport]) -> ServiceReport:
        # One read pass per shard: the attached shard_reports and the merged
        # totals derive from the same snapshots, so the fleet row always sums
        # to its per-shard rows even while worker pools keep committing.
        snapshots = [shard.throughput.snapshot() for shard in self.shards]
        rollings = [shard.monitor.report() for shard in self.shards]
        unknowns = [shard.pipeline.unknown_categoricals for shard in self.shards]
        shard_reports = {
            name: ServiceReport(
                batches=int(stats["batches"]),
                records=int(stats["records"]),
                throughput=stats["throughput_rps"],
                mean_latency=stats["mean_latency_s"],
                p95_latency=stats["p95_latency_s"],
                rolling=rolling,
                unknown_categoricals=unknown,
            )
            for name, stats, rolling, unknown in zip(
                self.names, snapshots, rollings, unknowns
            )
        }
        records = int(sum(s["records"] for s in snapshots))
        batches = int(sum(s["batches"] for s in snapshots))
        busy_time = sum(s["busy_time_s"] for s in snapshots)
        if busy_time > 0:
            throughput = records / busy_time
        else:
            total_time = sum(s["total_time_s"] for s in snapshots)
            throughput = records / total_time if total_time > 0 else 0.0
        latencies = [
            latency
            for shard in self.shards
            for latency in shard.throughput.recent_latencies
        ]
        rolling_parts = [report for report in rollings if report is not None]
        unknown_merged: Dict[str, int] = {}
        for shard_unknown in unknowns:
            for column, count in shard_unknown.items():
                unknown_merged[column] = unknown_merged.get(column, 0) + count
        return ServiceReport(
            batches=batches,
            records=records,
            throughput=throughput,
            mean_latency=float(np.mean(latencies)) if latencies else 0.0,
            p95_latency=float(np.percentile(latencies, 95)) if latencies else 0.0,
            rolling=DetectionReport.merge(rolling_parts) if rolling_parts else None,
            phase_reports=phase_reports,
            unknown_categoricals=unknown_merged,
            shard_reports=shard_reports,
        )

    # ------------------------------------------------------------------ #
    def run_stream(
        self,
        stream: Iterable[StreamBatch],
        max_batches: Optional[int] = None,
        num_workers: int = 0,
        worker_backend: str = "thread",
        transport="queue",
    ) -> ServiceReport:
        """Serve a :class:`~repro.data.generator.TrafficStream` across the fleet.

        Each shard keeps its own phase attributor; the merged report sums
        the per-phase confusion counts across shards, so the breakdown is
        record-for-record equivalent to a single service scoring the same
        stream.  With ``num_workers > 0`` every shard runs on its own pool
        of that size (concurrent sharded serving); ``worker_backend``
        selects the pool flavour — ``"thread"`` for a :class:`WorkerPool`,
        ``"process"`` for a
        :class:`~repro.serving.procpool.ProcessWorkerPool` whose children
        score the shard's batches off the GIL (``transport`` then picks its
        data plane, ``"queue"`` or ``"shm"``).  Otherwise shards score
        inline on the calling thread.
        """
        self._pool_type(worker_backend)  # fail fast on unknown backends
        normalize_transport_name(transport)  # ... and unknown transports
        # Records queued on a shard before the stream belong to no phase:
        # clear them out so every attribution FIFO starts aligned with its
        # shard's batcher.
        for shard in self.shards:
            shard.flush()
        attributors = [
            PhaseAttributor(
                normal_index=shard.pipeline.normal_index,
                window=shard.monitor.window,
            )
            for shard in self.shards
        ]
        pools: Optional[List[WorkerPool]] = None
        if num_workers > 0:
            pools = self.open_pools(
                num_workers,
                worker_backend,
                result_callbacks=[
                    attributor.attribute for attributor in attributors
                ],
                transport=transport,
            )
        try:
            served = 0
            for stream_batch in stream:
                if max_batches is not None and served >= max_batches:
                    break
                for index, indices in enumerate(
                    self.router.route(stream_batch.records)
                ):
                    if len(indices) == 0:
                        continue
                    part = stream_batch.records.subset(indices)
                    attributors[index].expect(stream_batch.phase, len(part))
                    if pools is not None:
                        pools[index].submit(part)
                    else:
                        for result in self.shards[index].submit(part):
                            attributors[index].attribute(result)
                served += 1
            if pools is not None:
                for pool in pools:
                    pool.flush()
            else:
                for index, shard in enumerate(self.shards):
                    for result in shard.flush():
                        attributors[index].attribute(result)
        finally:
            if pools is not None:
                for pool in pools:
                    pool.close()

        merged_phases: Dict[str, DetectionReport] = {}
        for attributor in attributors:
            for phase, report in attributor.reports().items():
                existing = merged_phases.get(phase)
                merged_phases[phase] = (
                    report
                    if existing is None
                    else DetectionReport.merge([existing, report])
                )
        return self._merge(phase_reports=merged_phases)

    def run_event_stream(
        self,
        events,
        extractor=None,
        max_batches: Optional[int] = None,
        num_workers: int = 0,
        worker_backend: str = "thread",
        transport="queue",
    ) -> ServiceReport:
        """Serve a raw packet-event stream across the fleet.

        Flow aggregation happens *upstream* of routing — one
        :class:`~repro.ingest.FlowFeatureExtractor` (default: built for the
        first shard's schema) turns each
        :class:`~repro.ingest.EventBatch` into feature rows, and the rows
        then take the ordinary :meth:`run_stream` path, so sharded serving
        from events is record-for-record identical to sharded serving of
        the equivalent featurized stream.
        """
        from ..ingest import FlowFeatureExtractor
        from ..ingest.lowering import EventTrafficStream

        if extractor is None:
            extractor = FlowFeatureExtractor(self.shards[0].pipeline.schema)
        batches = (
            events.event_batches()
            if isinstance(events, EventTrafficStream)
            else iter(events)
        )

        def _aggregate() -> Iterable[StreamBatch]:
            for event_batch in batches:
                yield StreamBatch(
                    records=extractor.extract(event_batch.events, final=True),
                    phase=event_batch.phase,
                    index=event_batch.index,
                    phase_index=event_batch.phase_index,
                    mix=event_batch.mix,
                )

        return self.run_stream(
            _aggregate(),
            max_batches=max_batches,
            num_workers=num_workers,
            worker_backend=worker_backend,
            transport=transport,
        )
