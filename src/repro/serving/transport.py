"""Pluggable parent↔child data plane for the process worker pool.

:class:`~repro.serving.procpool.ProcessWorkerPool` moves scoring into child
processes; *how* a micro-batch's arrays travel between the parent and a
child is this module's job.  A :class:`Transport` opens one
:class:`Channel` per child; the pool only ever speaks the channel API —
``send_init`` / ``send_score`` / ``send_swap`` / ``send_stop`` on the way
down, normalized ``("scored", ...)`` / ``("error", ...)`` replies on the
way up — so the wire format is swappable without touching the pool's
dispatch, reorder-buffer or failure semantics.

Two implementations:

* :class:`QueueTransport` — the original data path and the equivalence
  oracle: every batch is pickled whole (numeric matrix, categorical object
  arrays, labels) onto a per-child ``multiprocessing.Queue`` and unpickled
  in the child.  Simple, allocation-happy, and the serialization hop that
  caps process-pool scaling.
* :class:`SharedMemoryTransport` — the zero-copy data plane: each child
  gets a ring of preallocated slots in one
  :class:`multiprocessing.shared_memory.SharedMemory` segment, sized from
  the dataset schema.  The parent writes the numeric matrix in place and
  stores categorical values and labels as small integer codes into the
  schema's fixed vocabularies; the child scores straight out of the
  segment and writes the predicted class indices and its scoring latency
  into the slot's result region.  Only tiny control messages — slot
  tokens going down, acks coming back — cross the queues.

Exactness: the decoded batch in the child is string-for-string identical
to what the queue transport would deliver.  Labels are always codable
(:class:`~repro.data.dataset.TrafficRecords` validates them against
``schema.classes``); a categorical value *outside* the schema vocabulary
(vocabulary drift, the thing
:class:`~repro.serving.service.CachedPreprocessor` counts) cannot be
coded, so those rare values ride the control message in a per-column
``{row: value}`` exception map and are patched over the decoded column.
Unknown-categorical tallies therefore match the queue transport exactly.

Fallback rules: a batch larger than the slot capacity (``flush()`` may
emit one oversized batch) or a dispatch finding every slot busy falls
back to the inline pickled payload on the control queue — never blocking
dispatch, never reordering the per-child FIFO.  Fallbacks are counted on
the channel (``inline_batches`` vs ``slot_batches``).

Cleanup: every live segment is tracked in a module-level registry
(:func:`live_segments`), created segments carry the ``repro-slab-``
prefix, and :meth:`Channel.reclaim` / :meth:`Channel.shutdown` unlink
idempotently — including after a SIGKILL'd child, whose attach-side
mapping dies with it.  The serving test suite asserts the registry is
empty after every test.
"""

from __future__ import annotations

import threading
import uuid
from multiprocessing import shared_memory
from typing import Dict, List, Optional

import numpy as np

from ..data.dataset import TrafficRecords
from ..data.schema import DatasetSchema, get_schema

__all__ = [
    "Transport",
    "QueueTransport",
    "SharedMemoryTransport",
    "resolve_transport",
    "normalize_transport_name",
    "live_segments",
]

#: Prefix of every shared-memory segment this module creates — greppable in
#: ``/dev/shm`` and matched by the leak checks.
SEGMENT_PREFIX = "repro-slab-"

_registry_lock = threading.Lock()
_live_segments: set = set()


def _register_segment(name: str) -> None:
    with _registry_lock:
        _live_segments.add(name)


def _unregister_segment(name: str) -> None:
    with _registry_lock:
        _live_segments.discard(name)


def live_segments() -> List[str]:
    """Names of the shared-memory segments currently created-and-not-unlinked
    by this process (the serving tests assert this is empty after each test)."""
    with _registry_lock:
        return sorted(_live_segments)


def normalize_transport_name(transport) -> str:
    """Validate a transport selection early (the fail-fast seam used by
    :class:`~repro.serving.sharding.ShardedDetectionService` and
    :class:`~repro.serving.fleet.FleetController`)."""
    if isinstance(transport, Transport):
        return transport.name
    if transport in ("queue", None):
        return "queue"
    if transport in ("shm", "shared-memory"):
        return "shm"
    raise ValueError(
        f"unknown transport {transport!r}; choices: queue, shm "
        "(or a Transport instance)"
    )


def resolve_transport(transport, service) -> "Transport":
    """Turn a transport selection (name or instance) into a :class:`Transport`
    sized for ``service`` (slot capacity = the batcher's ``max_batch_size``)."""
    if isinstance(transport, Transport):
        return transport
    name = normalize_transport_name(transport)
    if name == "queue":
        return QueueTransport()
    return SharedMemoryTransport(
        schema=service.detector.schema,
        slot_records=max(int(service.batcher.max_batch_size), 1),
    )


# --------------------------------------------------------------------------- #
# Slot layout
# --------------------------------------------------------------------------- #
def _align(offset: int, alignment: int = 8) -> int:
    return (offset + alignment - 1) // alignment * alignment


class _SlotLayout:
    """Byte layout of one slot, computed identically in parent and child.

    Per slot: the numeric matrix (``slot_records x n_numeric`` float64,
    written in place), one int32 code column per categorical feature, an
    int16 label-code column, then the result region — int64 predicted
    class indices plus one float64 latency cell the child fills in.
    """

    def __init__(self, schema: DatasetSchema, slot_records: int) -> None:
        self.schema = schema
        self.slot_records = int(slot_records)
        self.n_numeric = len(schema.numeric_features)
        offset = 0
        self.numeric_offset = offset
        offset = _align(offset + self.slot_records * self.n_numeric * 8)
        self.categorical_offsets: Dict[str, int] = {}
        for name in schema.categorical_names:
            self.categorical_offsets[name] = offset
            offset = _align(offset + self.slot_records * 4)
        self.label_offset = offset
        offset = _align(offset + self.slot_records * 2)
        self.result_offset = offset
        offset = _align(offset + self.slot_records * 8)
        self.latency_offset = offset
        offset = _align(offset + 8)
        self.slot_bytes = offset

    def views(self, buffer, slot: int) -> "_SlotViews":
        base = slot * self.slot_bytes
        n = self.slot_records
        numeric = np.frombuffer(
            buffer, dtype=np.float64, count=n * self.n_numeric,
            offset=base + self.numeric_offset,
        ).reshape(n, self.n_numeric)
        categorical = {
            name: np.frombuffer(
                buffer, dtype=np.int32, count=n, offset=base + offset
            )
            for name, offset in self.categorical_offsets.items()
        }
        labels = np.frombuffer(
            buffer, dtype=np.int16, count=n, offset=base + self.label_offset
        )
        result = np.frombuffer(
            buffer, dtype=np.int64, count=n, offset=base + self.result_offset
        )
        latency = np.frombuffer(
            buffer, dtype=np.float64, count=1, offset=base + self.latency_offset
        )
        return _SlotViews(numeric, categorical, labels, result, latency)


class _SlotViews:
    __slots__ = ("numeric", "categorical", "labels", "result", "latency")

    def __init__(self, numeric, categorical, labels, result, latency) -> None:
        self.numeric = numeric
        self.categorical = categorical
        self.labels = labels
        self.result = result
        self.latency = latency


# --------------------------------------------------------------------------- #
# Transport / Channel interfaces
# --------------------------------------------------------------------------- #
class Channel:
    """Parent-side endpoint of one child's data plane.

    Control flow (init/swap checkpoints, the stop sentinel) always travels
    pickled on the per-child task queue — checkpoint shipping semantics are
    transport-independent.  ``send_score`` is where implementations differ.
    Replies come back normalized to the queue transport's shapes::

        ("scored", sequence, class_indices, child_latency, unknown_delta)
        ("error", sequence, traceback_text)
        ("swapped", worker_id, error_text_or_None)
        ("init-error", worker_id, traceback_text)

    so the pool's collector is wire-format-agnostic.
    """

    def __init__(self, context) -> None:
        # One task queue AND one result queue per child: no lock is ever
        # shared between two children, so a child killed mid-write can
        # corrupt only its own queues (see ProcessWorkerPool._spawn_child).
        self._task_queue = context.Queue()
        self._result_queue = context.Queue()
        self.slot_batches = 0
        self.inline_batches = 0

    # -- downstream ---------------------------------------------------- #
    def send_init(self, checkpoint) -> None:
        self._task_queue.put(("init", checkpoint))

    def send_swap(self, checkpoint) -> None:
        self._task_queue.put(("swap", checkpoint))

    def send_stop(self) -> None:
        self._task_queue.put(("stop",))

    def send_score(self, sequence: int, records: TrafficRecords) -> None:
        raise NotImplementedError

    def _send_inline(self, sequence: int, records: TrafficRecords) -> None:
        self.inline_batches += 1
        self._task_queue.put(
            (
                "score",
                sequence,
                records.numeric,
                dict(records.categorical),
                records.labels,
            )
        )

    # -- upstream ------------------------------------------------------ #
    @property
    def reply_reader(self):
        """The result queue's read pipe, for ``connection.wait`` multiplexing."""
        return self._result_queue._reader

    def receive_nowait(self):
        """One normalized reply, or raise ``queue.Empty`` / ``EOFError``."""
        return self._normalize(self._result_queue.get_nowait())

    def receive(self, timeout: float):
        """Blocking variant used by the collector's final drain."""
        return self._normalize(self._result_queue.get(timeout=timeout))

    def _normalize(self, message):
        return message

    # -- spawn & cleanup ----------------------------------------------- #
    def child_spec(self):
        """Picklable spec handed to the child process; the child rebuilds
        its endpoint with :func:`child_endpoint`."""
        raise NotImplementedError

    def reclaim(self) -> None:
        """Release the child's preallocated resources early — called as soon
        as the child is known gone (clean retirement or SIGKILL diagnosis),
        before the pool itself closes.  Idempotent; must be safe while the
        parent still drains the child's last replies."""

    def shutdown(self) -> None:
        """Full parent-side teardown at pool close.

        A child that died before draining its task queue leaves the feeder
        thread blocked mid-write; without the cancel, the interpreter's
        atexit handler would join that feeder forever.  On the clean path
        children drain everything up to the stop sentinel first, so nothing
        that matters is ever discarded.
        """
        self._task_queue.cancel_join_thread()
        self._task_queue.close()
        self._result_queue.close()
        self.reclaim()


class Transport:
    """Factory for per-child :class:`Channel` objects."""

    name = "?"

    def open_channel(self, context) -> Channel:
        raise NotImplementedError


class QueueTransport(Transport):
    """The pickled-queue data path (original behavior, equivalence oracle)."""

    name = "queue"

    def open_channel(self, context) -> "QueueChannel":
        return QueueChannel(context)


class QueueChannel(Channel):
    def send_score(self, sequence: int, records: TrafficRecords) -> None:
        self._send_inline(sequence, records)

    def child_spec(self):
        return ("queue", self._task_queue, self._result_queue)


class SharedMemoryTransport(Transport):
    """Per-child shared-memory slot rings; queues carry only control traffic.

    Parameters
    ----------
    schema:
        The dataset schema — fixes the numeric width, the categorical
        vocabularies the code columns index into, and the class list the
        label codes index into.
    slot_records:
        Record capacity of one slot.  Size it to the service batcher's
        ``max_batch_size`` (what :func:`resolve_transport` does): the
        batcher's size trigger caps normal batches at exactly that, and
        the rare oversized ``flush()`` batch falls back inline.
    slots_per_child:
        Ring depth — the per-child backlog the zero-copy path can hold
        before dispatch falls back inline.  A slot costs
        ``slot_records x (8 x n_numeric + ~7)`` bytes (tens of KB at
        typical batch sizes), so the default 32-deep ring stays around a
        megabyte per child while covering the backlog a stream-paced
        ``run_stream`` builds up in front of a busy child.
    """

    name = "shm"

    def __init__(
        self,
        schema: DatasetSchema,
        slot_records: int,
        slots_per_child: int = 32,
    ) -> None:
        if slot_records <= 0:
            raise ValueError("slot_records must be positive")
        if slots_per_child <= 0:
            raise ValueError("slots_per_child must be positive")
        self.schema = schema
        self.slot_records = int(slot_records)
        self.slots_per_child = int(slots_per_child)
        self.layout = _SlotLayout(schema, self.slot_records)
        # Parent-side encoders: value -> schema-vocabulary index per
        # categorical column, label -> class index.  Training vocabularies
        # are irrelevant here — codes address the *schema's* fixed value
        # tuples, so coding is lossless for every in-schema value.
        self._value_codes = {
            feature.name: {
                value: index for index, value in enumerate(feature.values)
            }
            for feature in schema.categorical_features
        }
        self._label_codes = {
            name: index for index, name in enumerate(schema.classes)
        }

    def open_channel(self, context) -> "SharedMemoryChannel":
        return SharedMemoryChannel(context, self)


class SharedMemoryChannel(Channel):
    def __init__(self, context, transport: SharedMemoryTransport) -> None:
        super().__init__(context)
        self.transport = transport
        layout = transport.layout
        self.segment_name = SEGMENT_PREFIX + uuid.uuid4().hex[:12]
        self._segment = shared_memory.SharedMemory(
            name=self.segment_name,
            create=True,
            size=layout.slot_bytes * transport.slots_per_child,
        )
        _register_segment(self.segment_name)
        self._unlinked = False
        self._views: Optional[List[_SlotViews]] = [
            layout.views(self._segment.buf, slot)
            for slot in range(transport.slots_per_child)
        ]
        # Slots are acquired under the pool's submit lock but released from
        # the collector thread, so the free list needs its own lock.
        self._slot_lock = threading.Lock()
        self._free_slots = list(range(transport.slots_per_child))
        self._slot_records: Dict[int, int] = {}  # slot -> batch length

    # -- downstream ---------------------------------------------------- #
    def send_score(self, sequence: int, records: TrafficRecords) -> None:
        n = len(records)
        if n > self.transport.slot_records:
            # flush() may emit one batch above max_batch_size; ship it the
            # boring way rather than splitting (splitting would change the
            # batch structure and break bit-equality with the sync run).
            self._send_inline(sequence, records)
            return
        with self._slot_lock:
            slot = self._free_slots.pop() if self._free_slots else None
        if slot is None:
            # Every slot busy (deep in-flight backlog): never block dispatch
            # — the caller holds the pool's submit lock.
            self._send_inline(sequence, records)
            return
        views = self._views[slot]
        views.numeric[:n] = records.numeric
        exceptions: Dict[str, Dict[int, object]] = {}
        for name, column in records.categorical.items():
            get = self.transport._value_codes[name].get
            codes = np.fromiter(
                (get(value, -1) for value in column), dtype=np.int32, count=n
            )
            views.categorical[name][:n] = codes
            if codes.min(initial=0) < 0:
                # Out-of-schema value (vocabulary drift): uncodable, so the
                # *original* value object rides the control message — rare
                # by construction, so the payload stays tiny and the child
                # sees exactly what the queue transport would deliver.
                rows = np.nonzero(codes < 0)[0]
                exceptions[name] = {
                    int(row): column[row] for row in rows
                }
        label_codes = self.transport._label_codes
        views.labels[:n] = np.fromiter(
            # Always codable: TrafficRecords validates labels against
            # schema.classes, so a KeyError here is a real invariant break.
            (label_codes[label] for label in records.labels),
            dtype=np.int16,
            count=n,
        )
        self._slot_records[slot] = n
        self.slot_batches += 1
        self._task_queue.put(
            ("score-slot", sequence, slot, n, exceptions or None)
        )

    # -- upstream ------------------------------------------------------ #
    def _normalize(self, message):
        kind = message[0]
        if kind == "scored-slot":
            _, sequence, slot, unknown_delta = message
            n = self._slot_records.get(slot, 0)
            views = self._views[slot]
            predicted = np.array(views.result[:n], dtype=np.int64)
            latency = float(views.latency[0])
            self._release_slot(slot)
            return ("scored", sequence, predicted, latency, unknown_delta)
        if kind == "error-slot":
            _, sequence, slot, text = message
            self._release_slot(slot)
            return ("error", sequence, text)
        return message

    def _release_slot(self, slot: int) -> None:
        with self._slot_lock:
            self._slot_records.pop(slot, None)
            if slot not in self._free_slots:
                self._free_slots.append(slot)

    # -- spawn & cleanup ----------------------------------------------- #
    def child_spec(self):
        return (
            "shm",
            self._task_queue,
            self._result_queue,
            self.transport.schema.name,
            self.segment_name,
            self.transport.slot_records,
            self.transport.slots_per_child,
        )

    def reclaim(self) -> None:
        """Unlink the segment (idempotent).

        Called the moment the child is known gone — cleanly retired by
        ``resize()``, obeying the close() stop sentinel, or diagnosed dead
        after a SIGKILL.  Unlinking removes the name system-wide while the
        parent's own mapping stays valid, so replies still in the pipe
        (whose predictions live in the result regions) can be drained
        afterwards; the memory itself is freed once the last mapping
        closes.  A SIGKILL'd child's mapping died with it, so nothing can
        resurrect the segment.
        """
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self._segment.unlink()
        except FileNotFoundError:  # already gone (e.g. another cleanup path)
            pass
        _unregister_segment(self.segment_name)

    def shutdown(self) -> None:
        super().shutdown()  # cancels the feeder, closes queues, reclaims
        self._views = None  # drop the buffer exports so the mmap can close
        try:
            self._segment.close()
        except BufferError:  # a stray export still alive; process exit frees it
            pass


# --------------------------------------------------------------------------- #
# Child-side endpoints
# --------------------------------------------------------------------------- #
def child_endpoint(spec):
    """Rebuild the channel's child-side endpoint from its picklable spec."""
    if spec[0] == "queue":
        return _QueueChildEndpoint(spec)
    if spec[0] == "shm":
        return _ShmChildEndpoint(spec)
    raise ValueError(f"unknown transport spec {spec[0]!r}")


class _QueueChildEndpoint:
    """Child side of :class:`QueueChannel`: batches arrive pickled whole."""

    def __init__(self, spec) -> None:
        _, self._task_queue, self._result_queue = spec

    def receive(self):
        """Next parent message, with score payloads wrapped in a zero-arg
        loader so decode errors surface inside the caller's try block::

            ("score", sequence, load_records)  |  ("init", checkpoint)
            ("swap", checkpoint)               |  ("stop",)
        """
        message = self._task_queue.get()
        if message[0] != "score":
            return message
        return self._wrap_inline(message)

    @staticmethod
    def _wrap_inline(message):
        _, sequence, numeric, categorical, labels = message

        def load(schema):
            return TrafficRecords(
                schema=schema,
                numeric=numeric,
                categorical=categorical,
                labels=labels,
            )

        return ("score", sequence, load)

    def send_scored(self, sequence, predicted, latency, unknown_delta) -> None:
        self._result_queue.put(
            ("scored", sequence, predicted, latency, unknown_delta)
        )

    def send_error(self, sequence, text) -> None:
        self._result_queue.put(("error", sequence, text))

    def send_swapped(self, worker_id, error) -> None:
        self._result_queue.put(("swapped", worker_id, error))

    def send_init_error(self, worker_id, text) -> None:
        self._result_queue.put(("init-error", worker_id, text))

    def close(self) -> None:
        """Release child-side resources before the process exits."""


class _ShmChildEndpoint(_QueueChildEndpoint):
    """Child side of :class:`SharedMemoryChannel`: batches are decoded out
    of the slot ring; replies write the result region in place."""

    def __init__(self, spec) -> None:
        (
            _,
            self._task_queue,
            self._result_queue,
            schema_name,
            segment_name,
            slot_records,
            slots_per_child,
        ) = spec
        schema = get_schema(schema_name)
        # Attaching registers the name with the resource tracker the child
        # inherited from the parent; the tracker dedupes, so the parent's
        # single unlink keeps the books clean.
        self._segment = shared_memory.SharedMemory(name=segment_name)
        layout = _SlotLayout(schema, slot_records)
        self._views = [
            layout.views(self._segment.buf, slot)
            for slot in range(slots_per_child)
        ]
        # Decoders: vocabulary object-arrays the int32 codes index into.
        self._vocab_arrays = {
            feature.name: np.array(feature.values, dtype=object)
            for feature in schema.categorical_features
        }
        self._class_array = np.array(schema.classes, dtype=object)
        self._schema = schema
        self._pending_slots: Dict[int, int] = {}  # sequence -> slot

    def receive(self):
        message = self._task_queue.get()
        kind = message[0]
        if kind == "score":  # inline fallback: pickled payload, pickled reply
            return self._wrap_inline(message)
        if kind != "score-slot":
            return message
        _, sequence, slot, n, exceptions = message
        self._pending_slots[sequence] = slot

        def load(schema):
            return self._materialize(slot, n, exceptions)

        return ("score", sequence, load)

    def _materialize(self, slot: int, n: int, exceptions) -> TrafficRecords:
        views = self._views[slot]
        categorical = {}
        for name, vocab in self._vocab_arrays.items():
            codes = views.categorical[name][:n]
            # Out-of-schema rows carry code -1; clip for the take, then
            # patch the exact strings back in from the exception map.
            column = vocab[np.maximum(codes, 0)]
            column_exceptions = exceptions.get(name) if exceptions else None
            if column_exceptions:
                for row, value in column_exceptions.items():
                    column[row] = value
            categorical[name] = column
        return TrafficRecords(
            schema=self._schema,
            numeric=views.numeric[:n],  # zero-copy: scored straight from shm
            categorical=categorical,
            labels=self._class_array[views.labels[:n]],
        )

    def send_scored(self, sequence, predicted, latency, unknown_delta) -> None:
        slot = self._pending_slots.pop(sequence, None)
        if slot is None:  # inline-fallback batch: reply inline too
            super().send_scored(sequence, predicted, latency, unknown_delta)
            return
        views = self._views[slot]
        n = len(predicted)
        views.result[:n] = predicted
        views.latency[0] = latency
        self._result_queue.put(("scored-slot", sequence, slot, unknown_delta))

    def send_error(self, sequence, text) -> None:
        slot = self._pending_slots.pop(sequence, None)
        if slot is None:
            super().send_error(sequence, text)
            return
        self._result_queue.put(("error-slot", sequence, slot, text))

    def close(self) -> None:
        # Drop the numpy exports first or mmap.close() raises BufferError
        # from SharedMemory.__del__ during interpreter shutdown.
        self._views = None
        try:
            self._segment.close()
        except BufferError:  # a scored batch still references the buffer
            pass
