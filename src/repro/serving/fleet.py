"""Fleet control plane: utilization-driven autoscaling and staged rollout.

Every serving layer below this module is driven by hand, one service at a
time: pools are sized once at construction, and a retrained challenger is
hot-swapped fleet-wide in a single stroke.  :class:`FleetController`
composes those layers into one operator.  It owns a
:class:`~repro.serving.sharding.ShardedDetectionService`, drives the stream
through one worker pool per shard, and closes two control loops at stream
batch boundaries:

* **Autoscaling** — each control tick polls every pool's
  :class:`~repro.serving.workers.PoolStats` (queue depth, in-flight count,
  busy fraction) and the shard monitor's busy-time utilization, and grows
  or shrinks the pool between :class:`AutoscalePolicy` bounds via the
  ``resize()`` seam.  Workers spawn and retire only on batch boundaries and
  every result still commits through the reorder buffer in submission
  order, so scaling changes wall-clock behaviour only — reports stay
  bit-equal to a fixed-size run.
* **Canary rollout** — a challenger handed to :meth:`request_rollout`
  (e.g. by a :class:`~repro.serving.lifecycle.DriftSupervisor` whose
  ``promotion_hook`` delegates fleet promotion here) first *shadows* the
  canary shard's traffic into its own monitors, is gated on the standing
  :class:`~repro.serving.lifecycle.ShadowComparison` verdict, then
  hot-swaps shard by shard with a configurable stagger.  Between stages the
  controller watches the swapped shards' post-swap rolling DR; if it
  degrades past the :class:`RolloutPolicy` floor, every already-swapped
  shard is rolled back to its retired primary detector.

Determinism contract: all rollout decisions are functions of committed
confusion counts at pool-drained boundaries, so they replay identically on
the same stream.  Autoscaling decisions read wall-clock-dependent queue
stats, so they do *not* — instead every decision is recorded as a
:class:`FleetEvent` in the report's ``timeline``, and replaying the
realized schedule (``FleetController(..., schedule=outcome.schedule())``)
reproduces bit-equal confusion counts and an identical decision timeline.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.detector import PelicanDetector
from ..data.generator import StreamBatch
from ..metrics.ids_metrics import DetectionReport
from .monitor import RollingDetectionMonitor
from .service import DetectionService, PhaseAttributor, ServiceReport
from .sharding import ShardedDetectionService
from .transport import normalize_transport_name
from .workers import PoolStats, WorkerPool
from .lifecycle.checkpoint import DetectorCheckpoint
from .lifecycle.shadow import ShadowComparison

__all__ = [
    "AutoscalePolicy",
    "RolloutPolicy",
    "FleetEvent",
    "FleetAction",
    "FleetOutcome",
    "FleetController",
]

#: Monitor width for trial/watch bookkeeping: wide enough that counts are
#: exact totals over any realistic trial or watch window.
_EXACT_WINDOW = 1 << 20


@dataclass(frozen=True)
class AutoscalePolicy:
    """Per-shard worker-count bounds and the backlog thresholds between them.

    The saturation signal is *backlog per worker*: the pool's in-flight
    batch count, plus one if records are queued in the micro-batcher,
    divided by the current worker count.  Above ``scale_up_backlog`` the
    pool grows by ``step`` (workers cannot keep up); below
    ``scale_down_backlog`` it shrinks by ``step`` (workers idle).  Between
    the thresholds the size holds — the hysteresis band that keeps the
    controller from thrashing.
    """

    min_workers: int = 1
    max_workers: int = 4
    scale_up_backlog: float = 1.5
    scale_down_backlog: float = 0.25
    step: int = 1

    def __post_init__(self) -> None:
        if self.min_workers <= 0:
            raise ValueError("min_workers must be positive")
        if self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if self.scale_down_backlog >= self.scale_up_backlog:
            raise ValueError(
                "scale_down_backlog must be below scale_up_backlog "
                "(the hysteresis band must not be empty)"
            )
        if self.step <= 0:
            raise ValueError("step must be positive")

    def decide(self, stats: PoolStats) -> int:
        """The worker count the pool should have, given its live stats."""
        backlog = stats.backlog_per_worker
        if backlog > self.scale_up_backlog and stats.workers < self.max_workers:
            return min(stats.workers + self.step, self.max_workers)
        if backlog < self.scale_down_backlog and stats.workers > self.min_workers:
            return max(stats.workers - self.step, self.min_workers)
        return stats.workers


@dataclass(frozen=True)
class RolloutPolicy:
    """Staged canary rollout: trial length, stagger, gate and rollback floor.

    Parameters
    ----------
    shadow_batches:
        Stream batches the challenger shadows on the canary shard before
        the promotion gate is evaluated.
    stagger_batches:
        Stream batches between consecutive stage swaps once promoted.
    canary_shard:
        Index of the shard whose traffic the challenger shadows (and the
        first shard swapped).
    min_dr_gain / max_far_regression:
        The :meth:`~repro.serving.lifecycle.ShadowComparison.challenger_wins`
        gate thresholds.
    dr_floor:
        Rollback floor: if the swapped shards' merged *post-swap* rolling DR
        falls below this (with at least ``min_watch_records`` watched and
        attack traffic present), every swapped shard reverts to its retired
        primary.  ``None`` disables rollback.
    min_watch_records:
        Post-swap records required on the swapped shards before the floor
        is judged (fresh windows are noisy).
    """

    shadow_batches: int = 4
    stagger_batches: int = 2
    canary_shard: int = 0
    min_dr_gain: float = 0.0
    max_far_regression: float = 0.0
    dr_floor: Optional[float] = 0.5
    min_watch_records: int = 64

    def __post_init__(self) -> None:
        if self.shadow_batches < 0:
            raise ValueError("shadow_batches must be non-negative")
        if self.stagger_batches < 0:
            raise ValueError("stagger_batches must be non-negative")
        if self.canary_shard < 0:
            raise ValueError("canary_shard must be non-negative")
        if self.dr_floor is not None and not 0.0 <= self.dr_floor <= 1.0:
            raise ValueError("dr_floor must be in [0, 1] when given")
        if self.min_watch_records < 0:
            raise ValueError("min_watch_records must be non-negative")


@dataclass(frozen=True)
class FleetEvent:
    """One timeline entry of a controlled fleet run."""

    kind: str               # resize | shadow-start | promote | reject | swap
    #                       # | rollback | rollout-complete | rollout-incomplete
    #                       # | trial-abandoned
    batch_index: int        # stream batch after which the event fired
    shard: Optional[int]    # shard the event addresses (None = fleet-wide)
    records_seen: int       # fleet-wide records served when it fired
    time: float             # service-clock reading
    detail: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        where = f" shard={self.shard}" if self.shard is not None else ""
        detail = ", ".join(f"{k}={v}" for k, v in self.detail.items())
        return (
            f"[batch {self.batch_index:>4d}]{where} {self.kind}"
            + (f" ({detail})" if detail else "")
        )


@dataclass(frozen=True)
class FleetAction:
    """The replayable core of a :class:`FleetEvent`.

    Strips the wall-clock fields (``time``, ``records_seen``, live queue
    stats) so two runs that made the same *decisions* compare equal, and so
    a recorded schedule can be fed back via ``FleetController(schedule=...)``.
    ``workers`` is the resize target (``None`` for rollout actions).
    """

    kind: str
    batch_index: int
    shard: Optional[int] = None
    workers: Optional[int] = None


@dataclass(frozen=True)
class FleetOutcome:
    """What a controlled fleet run produced."""

    report: ServiceReport
    events: List[FleetEvent]

    def _kinds(self) -> List[str]:
        return [event.kind for event in self.events]

    @property
    def resized(self) -> bool:
        return "resize" in self._kinds()

    @property
    def promoted(self) -> bool:
        return "promote" in self._kinds()

    @property
    def rolled_back(self) -> bool:
        return "rollback" in self._kinds()

    @property
    def completed(self) -> bool:
        return "rollout-complete" in self._kinds()

    def schedule(self) -> Tuple[FleetAction, ...]:
        """The run's decision schedule (replayable, wall-clock-free)."""
        return tuple(
            FleetAction(
                kind=event.kind,
                batch_index=event.batch_index,
                shard=event.shard,
                workers=(
                    int(event.detail["workers"])
                    if event.kind == "resize"
                    else None
                ),
            )
            for event in self.events
        )


class FleetController:
    """Close the autoscaling and rollout loops over a sharded fleet.

    Parameters
    ----------
    fleet:
        The :class:`ShardedDetectionService` to control.  Autoscaling works
        with any routing policy; staged rollouts require a homogeneous
        (replica) fleet — every shard must serve the challenger's schema
        and class order.
    num_workers:
        Initial per-shard pool size.
    worker_backend:
        ``"thread"`` (:class:`~repro.serving.workers.WorkerPool`) or
        ``"process"`` (:class:`~repro.serving.procpool.ProcessWorkerPool`)
        — the pool flavour opened per shard.
    transport:
        Data plane for the process backend: ``"queue"`` or ``"shm"`` (see
        :mod:`repro.serving.transport`).  Autoscale ``resize()`` grows and
        reclaims the per-child slot rings with the children themselves, so
        the transport choice is invisible to the control loops.  Ignored
        by the thread backend.
    autoscale:
        The :class:`AutoscalePolicy`; ``None`` disables autoscaling.
    rollout:
        The :class:`RolloutPolicy` governing challenger deployments.
    control_interval:
        Stream batches between autoscaling control ticks.
    schedule:
        A recorded schedule (from :meth:`FleetOutcome.schedule`) to replay:
        its ``resize`` actions are applied at their recorded batch indices
        and the live autoscaler is bypassed.  Rollout actions replay
        implicitly — their decisions are deterministic functions of the
        stream — so a replayed run reproduces the full decision timeline
        and bit-equal confusion counts.
    """

    def __init__(
        self,
        fleet: ShardedDetectionService,
        num_workers: int = 2,
        worker_backend: str = "thread",
        autoscale: Optional[AutoscalePolicy] = None,
        rollout: Optional[RolloutPolicy] = None,
        control_interval: int = 1,
        schedule: Optional[Sequence[FleetAction]] = None,
        transport="queue",
    ) -> None:
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if control_interval <= 0:
            raise ValueError("control_interval must be positive")
        fleet._pool_type(worker_backend)  # fail fast on unknown backends
        normalize_transport_name(transport)  # ... and unknown transports
        self.fleet = fleet
        self.num_workers = int(num_workers)
        self.worker_backend = worker_backend
        self.transport = transport
        self.autoscale = autoscale
        self.rollout = rollout or RolloutPolicy()
        if not 0 <= self.rollout.canary_shard < len(fleet.shards):
            raise ValueError(
                f"canary shard {self.rollout.canary_shard} is outside "
                f"[0, {len(fleet.shards)})"
            )
        self.control_interval = int(control_interval)
        self._replay: Optional[Dict[int, List[FleetAction]]] = None
        if schedule is not None:
            self._replay = {}
            for action in schedule:
                if action.kind == "resize":
                    self._replay.setdefault(action.batch_index, []).append(action)
        self._pending_lock = threading.Lock()
        self._pending_rollouts: Deque[PelicanDetector] = deque()

    # ------------------------------------------------------------------ #
    def request_rollout(
        self, challenger: Union[PelicanDetector, DetectorCheckpoint]
    ) -> None:
        """Queue a challenger for a staged canary rollout.

        Accepts a fitted detector or a :class:`DetectorCheckpoint` (e.g.
        saved by a retrain pipeline); the next stream batch boundary starts
        its shadow trial.  This is the target a
        :class:`~repro.serving.lifecycle.DriftSupervisor` ``promotion_hook``
        points at — the supervisor hands over the retrained challenger and
        the controller owns the deployment.  Thread-safe (a background
        retrain may hand off mid-run); rollouts are deployed one at a time
        in request order.
        """
        if isinstance(challenger, DetectorCheckpoint):
            challenger = challenger.restore()
        if not challenger.is_fitted:
            raise RuntimeError("request_rollout requires a fitted challenger")
        for index, shard in enumerate(self.fleet.shards):
            if challenger.schema.name != shard.detector.schema.name:
                raise ValueError(
                    f"challenger is fitted on schema "
                    f"{challenger.schema.name!r} but shard {index} serves "
                    f"{shard.detector.schema.name!r}; staged rollouts "
                    "require a homogeneous fleet"
                )
            challenger_classes = list(
                challenger.preprocessor.label_encoder.classes_
            )
            if challenger_classes != shard.pipeline.class_names:
                raise ValueError(
                    f"challenger class order {challenger_classes} does not "
                    f"match shard {index}'s {shard.pipeline.class_names}"
                )
        with self._pending_lock:
            self._pending_rollouts.append(challenger)

    # ------------------------------------------------------------------ #
    def run_stream(
        self,
        stream: Iterable[StreamBatch],
        max_batches: Optional[int] = None,
    ) -> FleetOutcome:
        """Serve the stream under fleet control; returns the outcome.

        Mirrors :meth:`ShardedDetectionService.run_stream` — per-shard
        attribution, merged per-phase reports, one worker pool per shard —
        with the two control loops run at every stream batch boundary.  The
        returned report carries the event timeline under ``timeline``.
        """
        fleet = self.fleet
        for shard in fleet.shards:
            shard.flush()  # pre-stream records belong to no phase

        events: List[FleetEvent] = []
        attributors = [
            PhaseAttributor(
                normal_index=shard.pipeline.normal_index,
                window=shard.monitor.window,
            )
            for shard in fleet.shards
        ]
        # Rollout state.  All mutated on the driving thread only; the
        # callbacks below read trial/watch sinks between pool joins, where
        # no commit can race the mutation.
        trial_primary: Optional[RollingDetectionMonitor] = None
        trial_service: Optional[DetectionService] = None
        trial_remaining = 0
        challenger: Optional[PelicanDetector] = None
        staging: List[int] = []      # shard indices not yet swapped
        swapped: List[int] = []      # shard indices swapped, in swap order
        retired: Dict[int, PelicanDetector] = {}
        watch: Dict[int, RollingDetectionMonitor] = {}
        stage_countdown = 0

        def make_callback(index: int):
            def callback(result) -> None:
                attributors[index].attribute(result)
                sink = watch.get(index)
                if sink is not None:
                    sink.update(result.true_indices, result.class_indices)
                if trial_primary is not None and index == self.rollout.canary_shard:
                    trial_primary.update(result.true_indices, result.class_indices)
            return callback

        pools = fleet.open_pools(
            self.num_workers,
            self.worker_backend,
            result_callbacks=[make_callback(i) for i in range(len(fleet.shards))],
            transport=self.transport,
        )

        def log(kind: str, batch_index: int, shard: Optional[int] = None, **detail):
            events.append(
                FleetEvent(
                    kind=kind,
                    batch_index=batch_index,
                    shard=shard,
                    records_seen=sum(s.monitor.seen for s in fleet.shards),
                    time=fleet.shards[0].clock(),
                    detail=detail,
                )
            )

        def begin_trial(batch_index: int) -> None:
            nonlocal trial_primary, trial_service, trial_remaining, challenger
            with self._pending_lock:
                if not self._pending_rollouts:
                    return
                candidate = self._pending_rollouts.popleft()
            canary = fleet.shards[self.rollout.canary_shard]
            # Drain the canary first: from here on its committed results and
            # the challenger's shadow scores cover the identical records.
            pools[self.rollout.canary_shard].join()
            challenger = candidate
            trial_service = DetectionService(
                challenger,
                max_batch_size=1 << 30,  # score each canary part whole
                flush_interval=0.0,
                window=_EXACT_WINDOW,
                fast=canary.fast,
                clock=canary.clock,
            )
            trial_primary = RollingDetectionMonitor(
                normal_index=canary.pipeline.normal_index, window=_EXACT_WINDOW
            )
            trial_remaining = max(self.rollout.shadow_batches, 1)
            log("shadow-start", batch_index, shard=self.rollout.canary_shard)

        def comparison() -> ShadowComparison:
            primary_report = trial_primary.report()
            challenger_report = trial_service.monitor.report()
            if primary_report is None or challenger_report is None:
                return ShadowComparison(
                    records=0, dr_delta=0.0, far_delta=0.0, acc_delta=0.0
                )
            return ShadowComparison(
                records=challenger_report.total,
                dr_delta=(
                    challenger_report.detection_rate
                    - primary_report.detection_rate
                ),
                far_delta=(
                    challenger_report.false_alarm_rate
                    - primary_report.false_alarm_rate
                ),
                acc_delta=challenger_report.accuracy - primary_report.accuracy,
            )

        def swap_shard(index: int, batch_index: int) -> None:
            nonlocal stage_countdown
            # The pool-aware swap drains that shard's in-flight batches (and
            # re-ships the checkpoint for a process pool), so the swap lands
            # on a batch boundary and the watch monitor installed right
            # after sees post-swap records only.
            retired[index] = fleet.swap_shard(index, challenger, pool=pools[index])
            watch[index] = RollingDetectionMonitor(
                normal_index=fleet.shards[index].pipeline.normal_index,
                window=_EXACT_WINDOW,
            )
            staging.remove(index)
            swapped.append(index)
            stage_countdown = self.rollout.stagger_batches
            log("swap", batch_index, shard=index)

        def end_trial(batch_index: int) -> None:
            nonlocal trial_primary, trial_service, challenger
            verdict = comparison()
            trial_primary, trial_service = None, None
            if verdict.records == 0 or not verdict.challenger_wins(
                self.rollout.min_dr_gain, self.rollout.max_far_regression
            ):
                reason = (
                    "no canary traffic" if verdict.records == 0 else str(verdict)
                )
                log(
                    "reject",
                    batch_index,
                    shard=self.rollout.canary_shard,
                    comparison=reason,
                )
                challenger = None
                return
            log(
                "promote",
                batch_index,
                shard=self.rollout.canary_shard,
                comparison=str(verdict),
            )
            staging.extend(
                [self.rollout.canary_shard]
                + [
                    i
                    for i in range(len(fleet.shards))
                    if i != self.rollout.canary_shard
                ]
            )
            swap_shard(self.rollout.canary_shard, batch_index)

        def watch_report() -> Optional[DetectionReport]:
            parts = [
                report
                for index in swapped
                if (report := watch[index].report()) is not None
            ]
            return DetectionReport.merge(parts) if parts else None

        def degradation(report: Optional[DetectionReport]) -> Optional[float]:
            """The failing DR, or None while the watch looks healthy."""
            if self.rollout.dr_floor is None or report is None:
                return None
            if report.total < self.rollout.min_watch_records:
                return None
            if (report.tp + report.fn) == 0:  # DR undefined without attacks
                return None
            if report.detection_rate < self.rollout.dr_floor:
                return report.detection_rate
            return None

        def roll_back(batch_index: int, observed_dr: float) -> None:
            nonlocal challenger
            # Reverse swap order: the canary reverts last, so at every
            # moment during the unwind the fleet is a prefix of the rollout.
            for index in reversed(swapped):
                fleet.swap_shard(index, retired.pop(index), pool=pools[index])
                watch.pop(index, None)
                log(
                    "rollback",
                    batch_index,
                    shard=index,
                    dr=f"{observed_dr:.4f}",
                    floor=f"{self.rollout.dr_floor:.4f}",
                )
            swapped.clear()
            staging.clear()
            challenger = None

        def control_rollout(batch_index: int) -> None:
            nonlocal trial_remaining, stage_countdown, challenger
            if trial_service is not None:
                trial_remaining -= 1
                if trial_remaining <= 0:
                    pools[self.rollout.canary_shard].join()
                    end_trial(batch_index)
                return
            if not swapped:
                if challenger is None:
                    begin_trial(batch_index)
                return
            # Staging / final watch: judge only drained counts, so the
            # decision is a deterministic function of the stream.
            for index in swapped:
                pools[index].join()
            report = watch_report()
            failing_dr = degradation(report)
            if failing_dr is not None:
                roll_back(batch_index, failing_dr)
                return
            if staging:
                stage_countdown -= 1
                if stage_countdown <= 0:
                    swap_shard(staging[0], batch_index)
            elif challenger is not None:
                if report is not None and report.total >= max(
                    self.rollout.min_watch_records, 1
                ):
                    log(
                        "rollout-complete",
                        batch_index,
                        watched=report.total,
                        dr=f"{report.detection_rate:.4f}",
                    )
                    # The rollout is over: dismantle the watch so later
                    # stream decay cannot retroactively "roll back" a
                    # deployment that already passed its watch window.
                    challenger = None
                    swapped.clear()
                    retired.clear()
                    watch.clear()

        def control_scaling(batch_index: int) -> None:
            if batch_index % self.control_interval != 0:
                return
            if self._replay is not None:
                for action in self._replay.get(batch_index, []):
                    pool = pools[action.shard]
                    before = pool.num_workers
                    pool.resize(action.workers)
                    log(
                        "resize",
                        batch_index,
                        shard=action.shard,
                        workers=action.workers,
                        workers_before=before,
                        replayed=True,
                    )
                return
            if self.autoscale is None:
                return
            for index, pool in enumerate(pools):
                stats = pool.stats()
                target = self.autoscale.decide(stats)
                if target == stats.workers:
                    continue
                pool.resize(target)
                log(
                    "resize",
                    batch_index,
                    shard=index,
                    workers=target,
                    workers_before=stats.workers,
                    queue_depth=stats.queue_depth,
                    in_flight=stats.in_flight,
                    busy_fraction=round(stats.busy_fraction, 4),
                    utilization=round(
                        fleet.shards[index].throughput.utilization, 4
                    ),
                )

        served = 0
        try:
            for stream_batch in stream:
                if max_batches is not None and served >= max_batches:
                    break
                for index, indices in enumerate(
                    fleet.router.route(stream_batch.records)
                ):
                    if len(indices) == 0:
                        continue
                    part = stream_batch.records.subset(indices)
                    attributors[index].expect(stream_batch.phase, len(part))
                    if (
                        trial_service is not None
                        and index == self.rollout.canary_shard
                    ):
                        # The challenger shadows the canary's records before
                        # the canary itself sees them — same tee order as
                        # ShadowDeployment, so both sides score the
                        # identical sequence.
                        trial_service.process(part)
                    pools[index].submit(part)
                control_rollout(served)
                control_scaling(served)
                served += 1

            for pool in pools:
                pool.flush()
            if trial_service is not None:
                log(
                    "trial-abandoned",
                    served,
                    shard=self.rollout.canary_shard,
                    remaining=trial_remaining,
                )
            elif staging and swapped:
                log("rollout-incomplete", served, unswapped=len(staging))
            elif challenger is not None and swapped:
                # Fully swapped but the final watch never accumulated
                # enough records: report it rather than claiming success.
                report = watch_report()
                log(
                    "rollout-incomplete",
                    served,
                    watched=report.total if report is not None else 0,
                )
        finally:
            for pool in pools:
                pool.close()

        merged_phases: Dict[str, DetectionReport] = {}
        for attributor in attributors:
            for phase, report in attributor.reports().items():
                existing = merged_phases.get(phase)
                merged_phases[phase] = (
                    report
                    if existing is None
                    else DetectionReport.merge([existing, report])
                )
        final = replace(
            fleet._merge(phase_reports=merged_phases), timeline=tuple(events)
        )
        return FleetOutcome(report=final, events=events)
