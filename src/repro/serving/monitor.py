"""Rolling quality and throughput accounting for the detection service.

:class:`RollingDetectionMonitor` keeps the paper's ACC/DR/FAR metrics live
over a sliding window of the most recent records, so flood episodes and
drift show up in the numbers within a window's worth of traffic instead of
being averaged away.  :class:`ThroughputMonitor` aggregates per-batch
latency into the serving headline numbers (records/s, mean and p95 batch
latency).

Both monitors are thread-safe: every mutation and every read of derived
state happens under an internal lock, so the worker pool's scoring threads
can update them concurrently with a reader polling :meth:`report` /
:meth:`snapshot`.

Throughput accounting distinguishes three time totals:

* ``total_time`` — the *summed* per-batch latencies.  On a single thread
  this is the service's busy time, but as soon as batches overlap on
  concurrent workers the sum double-counts wall-clock time and dividing by
  it understates throughput.
* ``busy_time`` — the overlap-merged union of the batch scoring intervals:
  equal to ``total_time`` while batches never overlap, smaller once
  concurrent workers score simultaneously, and — unlike a first-to-last
  span — free of the idle gaps between batches, so a long-lived service
  with sporadic traffic is not diluted towards records-per-uptime.
  ``records / busy_time`` is the records-per-second headline.  The union
  is maintained as a small bounded set of pending disjoint intervals, so
  batches may commit in any order (parallel workers reorder freely): a
  late-committing interval still contributes exactly its uncovered
  portion.  Only when more than the bounded number of disjoint intervals
  are simultaneously pending does the oldest get frozen, after which a
  batch committing entirely before it is dropped — an undercount, never a
  double count, and ``busy_time <= busy_span`` always holds.
* ``busy_span`` — the wall-clock distance from the start of the earliest
  batch to the end of the latest one (busy and idle alike), kept for
  wall-time introspection.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from ..metrics.ids_metrics import DetectionReport, evaluate_detection

__all__ = ["RollingDetectionMonitor", "ThroughputMonitor"]


class RollingDetectionMonitor:
    """Sliding-window ACC/DR/FAR built on :func:`evaluate_detection`.

    Parameters
    ----------
    normal_index:
        Index of the normal class inside the detector's class order (used
        to binarise multi-class labels into attack/normal).
    window:
        Number of most-recent records the rolling report covers.
    """

    def __init__(self, normal_index: int, window: int = 512) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.normal_index = int(normal_index)
        self.window = int(window)
        self._lock = threading.Lock()
        self._true: Deque[int] = deque(maxlen=window)
        self._predicted: Deque[int] = deque(maxlen=window)
        self._seen = 0

    @property
    def seen(self) -> int:
        """Total number of records ever observed (not just the window)."""
        with self._lock:
            return self._seen

    @property
    def current_size(self) -> int:
        """Number of records currently inside the window."""
        with self._lock:
            return len(self._true)

    def update(self, true_classes: np.ndarray, predicted_classes: np.ndarray) -> None:
        """Append a batch of (true, predicted) multi-class labels."""
        true_classes = np.asarray(true_classes, dtype=np.int64)
        predicted_classes = np.asarray(predicted_classes, dtype=np.int64)
        if true_classes.shape != predicted_classes.shape:
            raise ValueError(
                "true and predicted label arrays must have the same shape"
            )
        with self._lock:
            self._true.extend(true_classes.tolist())
            self._predicted.extend(predicted_classes.tolist())
            self._seen += len(true_classes)

    def report(self) -> Optional[DetectionReport]:
        """ACC/DR/FAR over the window, or None before any traffic arrived.

        The deques are copied into preallocated arrays (``count=`` spares
        :func:`np.fromiter` its incremental regrowth) under the lock; the
        evaluation runs on the copies after the lock is released, so a slow
        report never stalls concurrent workers mid-update.
        """
        with self._lock:
            if not self._true:
                return None
            true_window = np.fromiter(
                self._true, dtype=np.int64, count=len(self._true)
            )
            predicted_window = np.fromiter(
                self._predicted, dtype=np.int64, count=len(self._predicted)
            )
        return evaluate_detection(true_window, predicted_window, self.normal_index)


class ThroughputMonitor:
    """Per-batch latency/throughput accounting.

    Totals (records, batches, time) are running counters, so they cover the
    service's whole lifetime; the latency distribution (mean/p95) is kept
    over a bounded window of the most recent batches so a long-lived service
    neither grows without bound nor averages incidents away.

    Parameters
    ----------
    window:
        Number of most-recent batch latencies kept for the mean/p95 stats.
    clock:
        Injectable time source; must be the same clock that produced the
        latencies (the service passes its own), so the busy span and the
        per-batch latencies live on one timeline.
    """

    #: Maximum number of pending disjoint intervals the busy-time merge
    #: keeps before freezing the oldest.  Out-of-order commits only pile up
    #: disjoint holes while more batches than this are simultaneously in
    #: flight and reordered — far beyond any real worker pool.
    MAX_PENDING_INTERVALS = 64

    def __init__(
        self, window: int = 1024, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = int(window)
        self.clock = clock
        self._lock = threading.Lock()
        self._recent_latencies: Deque[float] = deque(maxlen=window)
        self._total_batches = 0
        self._total_records = 0
        self._total_time = 0.0
        self._busy_time = 0.0
        # The busy-time union: a bounded, sorted list of pending disjoint
        # [start, end] intervals whose lengths are already in _busy_time,
        # plus a frozen floor — everything at or before it is treated as
        # covered, so a straggler clipped by the floor can undercount but
        # never double count.
        self._pending_intervals: List[List[float]] = []
        self._covered_floor: Optional[float] = None
        self._span_start: Optional[float] = None
        self._span_end: Optional[float] = None

    def update(
        self, batch_size: int, latency: float, end_time: Optional[float] = None
    ) -> None:
        """Record one processed batch.

        ``end_time`` is the clock reading when the batch finished; it
        defaults to "now" but concurrent callers that commit results after
        the fact (the worker pools' reorder buffers) pass the measured value
        so the busy span reflects when the work actually ran.  Commits may
        arrive in any order: each interval contributes exactly the portion
        of ``[end - latency, end]`` not already covered by earlier updates.
        """
        if batch_size < 0 or latency < 0:
            raise ValueError("batch_size and latency must be non-negative")
        end = float(end_time) if end_time is not None else self.clock()
        start = end - float(latency)
        with self._lock:
            self._total_batches += 1
            self._total_records += int(batch_size)
            self._total_time += float(latency)
            self._recent_latencies.append(float(latency))
            self._merge_busy_interval(start, end)
            if self._span_start is None or start < self._span_start:
                self._span_start = start
            if self._span_end is None or end > self._span_end:
                self._span_end = end

    def _merge_busy_interval(self, start: float, end: float) -> None:
        """Fold ``[start, end]`` into the pending-interval union (locked).

        The uncovered portion — the interval's length minus its overlap
        with the pending intervals, clipped at the frozen floor — is added
        to ``_busy_time``; overlapping pending intervals coalesce into one.
        Both the disjointness of the pending set and the clip at the floor
        make double-counting impossible, and every counted sliver lies
        inside ``[span_start, span_end]``, so ``busy_time <= busy_span``.
        """
        if self._covered_floor is not None:
            start = max(start, self._covered_floor)
            end = max(end, self._covered_floor)
        merged_start, merged_end = start, end
        overlap = 0.0
        kept: List[List[float]] = []
        insert_at = 0
        for interval in self._pending_intervals:
            if interval[1] < start:
                kept.append(interval)
                insert_at = len(kept)
            elif interval[0] > end:
                kept.append(interval)
            else:
                overlap += min(interval[1], end) - max(interval[0], start)
                merged_start = min(merged_start, interval[0])
                merged_end = max(merged_end, interval[1])
        self._busy_time += (end - start) - overlap
        kept.insert(insert_at, [merged_start, merged_end])
        # Freeze the oldest intervals in one slice instead of a pop(0) loop:
        # the intervals are sorted, so the largest frozen end — the new
        # floor — is the last frozen interval's end, and no element shifting
        # is paid on the hot path.
        excess = len(kept) - self.MAX_PENDING_INTERVALS
        if excess > 0:
            floor = kept[excess - 1][1]
            if self._covered_floor is None or floor > self._covered_floor:
                self._covered_floor = floor
            kept = kept[excess:]
        self._pending_intervals = kept

    @property
    def total_batches(self) -> int:
        with self._lock:
            return self._total_batches

    @property
    def total_records(self) -> int:
        with self._lock:
            return self._total_records

    @property
    def total_time(self) -> float:
        """Summed in-service processing time across all batches."""
        with self._lock:
            return self._total_time

    # Locked helpers: one formula each, shared by the properties and the
    # consistent-snapshot path (caller holds self._lock).
    def _busy_span_locked(self) -> float:
        if self._span_start is None or self._span_end is None:
            return 0.0
        return max(self._span_end - self._span_start, 0.0)

    def _throughput_locked(self) -> float:
        if self._busy_time > 0:
            return self._total_records / self._busy_time
        if self._total_time > 0:
            return self._total_records / self._total_time
        return 0.0

    def _latency_window_locked(self) -> np.ndarray:
        return np.fromiter(
            self._recent_latencies,
            dtype=np.float64,
            count=len(self._recent_latencies),
        )

    def _mean_latency_locked(self) -> float:
        if not self._recent_latencies:
            return 0.0
        return float(np.mean(self._latency_window_locked()))

    def _p95_latency_locked(self) -> float:
        if not self._recent_latencies:
            return 0.0
        return float(np.percentile(self._latency_window_locked(), 95))

    @property
    def busy_span(self) -> float:
        """Wall-clock span from the earliest batch start to the latest end."""
        with self._lock:
            return self._busy_span_locked()

    @property
    def busy_time(self) -> float:
        """Overlap-merged union of the batch scoring intervals."""
        with self._lock:
            return self._busy_time

    def _utilization_locked(self) -> float:
        span = self._busy_span_locked()
        if span <= 0.0:
            return 0.0
        return min(self._busy_time / span, 1.0)

    @property
    def utilization(self) -> float:
        """Fraction of the busy span actually spent scoring (0.0 to 1.0).

        ``busy_time / busy_span``: 1.0 means the service never sat idle
        between batches, values near 0 mean sporadic traffic.  This is the
        saturation signal the fleet controller's autoscaler reads — it needs
        no extra bookkeeping because both totals are already maintained.
        """
        with self._lock:
            return self._utilization_locked()

    @property
    def throughput(self) -> float:
        """Records per second of busy time (0.0 before any batch).

        Falls back to the summed-latency total when the merged busy time is
        degenerate (instantaneous batches under a frozen test clock).
        """
        with self._lock:
            return self._throughput_locked()

    @property
    def mean_latency(self) -> float:
        """Mean batch latency over the recent window."""
        with self._lock:
            return self._mean_latency_locked()

    @property
    def p95_latency(self) -> float:
        """95th-percentile batch latency over the recent window."""
        with self._lock:
            return self._p95_latency_locked()

    @property
    def recent_latencies(self) -> Tuple[float, ...]:
        """The windowed latency samples (for merging shard distributions)."""
        with self._lock:
            return tuple(self._recent_latencies)

    def snapshot(self) -> Dict[str, float]:
        """Headline numbers as one *consistent* dict (logs, benchmark JSON).

        Computed under a single lock acquisition, so concurrent updates
        cannot tear the row (e.g. a record count that already includes a
        batch whose latency the throughput does not).
        """
        with self._lock:
            return {
                "batches": float(self._total_batches),
                "records": float(self._total_records),
                "total_time_s": self._total_time,
                "busy_time_s": self._busy_time,
                "busy_span_s": self._busy_span_locked(),
                "utilization": self._utilization_locked(),
                "throughput_rps": self._throughput_locked(),
                "mean_latency_s": self._mean_latency_locked(),
                "p95_latency_s": self._p95_latency_locked(),
            }
