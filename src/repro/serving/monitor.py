"""Rolling quality and throughput accounting for the detection service.

:class:`RollingDetectionMonitor` keeps the paper's ACC/DR/FAR metrics live
over a sliding window of the most recent records, so flood episodes and
drift show up in the numbers within a window's worth of traffic instead of
being averaged away.  :class:`ThroughputMonitor` aggregates per-batch
latency into the serving headline numbers (records/s, mean and p95 batch
latency).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

import numpy as np

from ..metrics.ids_metrics import DetectionReport, evaluate_detection

__all__ = ["RollingDetectionMonitor", "ThroughputMonitor"]


class RollingDetectionMonitor:
    """Sliding-window ACC/DR/FAR built on :func:`evaluate_detection`.

    Parameters
    ----------
    normal_index:
        Index of the normal class inside the detector's class order (used
        to binarise multi-class labels into attack/normal).
    window:
        Number of most-recent records the rolling report covers.
    """

    def __init__(self, normal_index: int, window: int = 512) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.normal_index = int(normal_index)
        self.window = int(window)
        self._true: Deque[int] = deque(maxlen=window)
        self._predicted: Deque[int] = deque(maxlen=window)
        self._seen = 0

    @property
    def seen(self) -> int:
        """Total number of records ever observed (not just the window)."""
        return self._seen

    @property
    def current_size(self) -> int:
        """Number of records currently inside the window."""
        return len(self._true)

    def update(self, true_classes: np.ndarray, predicted_classes: np.ndarray) -> None:
        """Append a batch of (true, predicted) multi-class labels."""
        true_classes = np.asarray(true_classes, dtype=np.int64)
        predicted_classes = np.asarray(predicted_classes, dtype=np.int64)
        if true_classes.shape != predicted_classes.shape:
            raise ValueError(
                "true and predicted label arrays must have the same shape"
            )
        self._true.extend(true_classes.tolist())
        self._predicted.extend(predicted_classes.tolist())
        self._seen += len(true_classes)

    def report(self) -> Optional[DetectionReport]:
        """ACC/DR/FAR over the window, or None before any traffic arrived."""
        if not self._true:
            return None
        return evaluate_detection(
            np.fromiter(self._true, dtype=np.int64),
            np.fromiter(self._predicted, dtype=np.int64),
            self.normal_index,
        )


class ThroughputMonitor:
    """Per-batch latency/throughput accounting.

    Totals (records, batches, time) are running counters, so they cover the
    service's whole lifetime; the latency distribution (mean/p95) is kept
    over a bounded window of the most recent batches so a long-lived service
    neither grows without bound nor averages incidents away.
    """

    def __init__(self, window: int = 1024) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = int(window)
        self._recent_latencies: Deque[float] = deque(maxlen=window)
        self._total_batches = 0
        self._total_records = 0
        self._total_time = 0.0

    def update(self, batch_size: int, latency: float) -> None:
        if batch_size < 0 or latency < 0:
            raise ValueError("batch_size and latency must be non-negative")
        self._total_batches += 1
        self._total_records += int(batch_size)
        self._total_time += float(latency)
        self._recent_latencies.append(float(latency))

    @property
    def total_batches(self) -> int:
        return self._total_batches

    @property
    def total_records(self) -> int:
        return self._total_records

    @property
    def total_time(self) -> float:
        """Summed in-service processing time across all batches."""
        return self._total_time

    @property
    def throughput(self) -> float:
        """Records per second of processing time (0.0 before any batch)."""
        return self._total_records / self._total_time if self._total_time > 0 else 0.0

    @property
    def mean_latency(self) -> float:
        """Mean batch latency over the recent window."""
        if not self._recent_latencies:
            return 0.0
        return float(np.mean(self._recent_latencies))

    @property
    def p95_latency(self) -> float:
        """95th-percentile batch latency over the recent window."""
        if not self._recent_latencies:
            return 0.0
        return float(np.percentile(self._recent_latencies, 95))

    def snapshot(self) -> Dict[str, float]:
        """Headline numbers as a plain dict (for logs and benchmark JSON)."""
        return {
            "batches": float(self.total_batches),
            "records": float(self.total_records),
            "total_time_s": self.total_time,
            "throughput_rps": self.throughput,
            "mean_latency_s": self.mean_latency,
            "p95_latency_s": self.p95_latency,
        }
