"""Process-parallel scoring for the detection service.

:class:`ProcessWorkerPool` is the fourth execution model: the same
submit/poll/flush/report surface as the thread-based
:class:`~repro.serving.workers.WorkerPool`, with scoring moved into **child
processes** so the Python-level preprocessing — which holds the GIL and
caps the thread pool at single-core throughput — runs on real cores.

Division of labour:

* each **child process** rehydrates a scoring-identical detector from a
  :class:`~repro.serving.lifecycle.DetectorCheckpoint` at startup (weights,
  buffers, preprocessor vocabularies and scaler — the restored
  ``predict(fast=True)`` is bitwise-equal to the parent's), then loops:
  micro-batches arrive as **raw arrays** (numeric matrix, categorical
  columns, labels), are preprocessed and scored in the child, and the
  predicted class indices travel back with the measured scoring latency and
  the batch's unknown-categorical tallies;
* the **parent** keeps every piece of mutable serving state — the
  micro-batcher, the rolling/throughput monitors, phase attribution, the
  vocabulary-drift counters (child tallies are folded back in) — and
  commits results through the :class:`WorkerPool` reorder buffer, strictly
  in submission order.

Because the child's detector is scoring-identical and all accounting stays
in the parent on the in-order commit path, every :class:`ServiceReport`
produced through a process pool is record-for-record identical to the
synchronous run — the guarantee the scenario suite and the tier-1 smoke
assert bit for bit.

Hot-swap: :meth:`ProcessWorkerPool.swap_detector` drains the in-flight
batches, swaps the parent engine, then re-ships the challenger's checkpoint
to every child and waits for their acknowledgements.  Per-child task queues
are FIFO, so any batch dispatched after the swap is scored by the new model
— the same batch-boundary semantics as the in-process swap, which is what
keeps a drift-supervised run's counts equal to a drain-stop-restart run.

Start method: ``"spawn"`` by default — fork would duplicate the parent's
running threads (age timers, other pools, test watchdogs) into the child
mid-lock.  Spawned children re-import :mod:`repro`, so pool startup costs a
couple of seconds; amortise it by keeping one pool alive across streams.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from ..data.dataset import TrafficRecords
from ..data.schema import get_schema
from .lifecycle.checkpoint import DetectorCheckpoint
from .service import BatchResult, CachedPreprocessor, DetectionService
from .workers import WorkerPool

__all__ = ["ProcessWorkerPool"]

#: Collector poll period: how often child liveness is re-checked while the
#: result queue is quiet.
_POLL_INTERVAL = 0.1


@dataclass
class _Child:
    """One child scoring process and its private queues.

    ``token`` is unique for the pool's whole lifetime — slot indices are
    reused by ``resize()`` (shrink then grow), so everything keyed per child
    (in-flight work, swap acks, failure diagnoses) is keyed by token, never
    by position.
    """

    token: int
    process: "multiprocessing.process.BaseProcess" = field(repr=False)
    task_queue: object = field(repr=False)
    result_queue: object = field(repr=False)


def _worker_main(worker_id, schema_name, fast, task_queue, result_queue):
    """Child-process scoring loop (module-level: spawn pickles it by name).

    The ``Process`` arguments stay deliberately tiny: spawn writes them to
    the child over a pipe from a *blocking* ``os.write`` in the parent, so
    a megabytes-large checkpoint there can wedge ``start()`` forever if the
    child dies before draining the pipe.  The checkpoint instead arrives as
    the first task-queue message (queue puts run on a daemon feeder thread
    and never block the caller).

    Messages on ``task_queue`` (FIFO per child):

    * ``("init", checkpoint)`` — rehydrate the serving detector (always the
      first message); a failure replies
      ``("init-error", worker_id, traceback_text)`` and exits the child;
    * ``("score", sequence, numeric, categorical, labels)`` — rebuild the
      records, preprocess + predict, reply
      ``("scored", sequence, class_indices, latency, unknown_delta)``;
    * ``("swap", checkpoint)`` — rehydrate the replacement detector, reply
      ``("swapped", worker_id, error_text_or_None)``;
    * ``("stop",)`` — exit the loop.

    Scoring errors reply ``("error", sequence, traceback_text)`` and keep
    the loop alive; the parent skips the batch and surfaces the error on
    the next join/flush/close.
    """
    schema = get_schema(schema_name)
    detector = None
    pipeline = None
    unknown_seen: Dict[str, int] = {}
    while True:
        message = task_queue.get()
        kind = message[0]
        if kind == "stop":
            break
        if kind in ("init", "swap"):
            try:
                detector = message[1].restore()
                pipeline = CachedPreprocessor(detector.preprocessor)
                unknown_seen = {}
                if kind == "swap":
                    result_queue.put(("swapped", worker_id, None))
            except BaseException:
                # A failed rehydration is fatal either way: limping on with
                # the *retired* detector would silently skew the counts, so
                # the child reports and exits — the parent's liveness check
                # then excludes it from dispatch.
                if kind == "swap":
                    result_queue.put(("swapped", worker_id, traceback.format_exc()))
                else:
                    result_queue.put(("init-error", worker_id, traceback.format_exc()))
                raise SystemExit(1)
            continue
        sequence = message[1]
        try:
            records = TrafficRecords(
                schema=schema,
                numeric=message[2],
                categorical=message[3],
                labels=message[4],
            )
            started = time.perf_counter()
            inputs = pipeline.transform_inputs(records)
            probabilities = detector.network.predict(
                inputs, batch_size=max(len(records), 1), fast=fast
            )
            predicted = np.argmax(probabilities, axis=-1)
            latency = time.perf_counter() - started
            unknown_now = pipeline.unknown_categoricals
            unknown_delta = {
                column: count - unknown_seen.get(column, 0)
                for column, count in unknown_now.items()
                if count != unknown_seen.get(column, 0)
            }
            unknown_seen = unknown_now
            result_queue.put(("scored", sequence, predicted, latency, unknown_delta))
        except BaseException:
            result_queue.put(("error", sequence, traceback.format_exc()))


class ProcessWorkerPool(WorkerPool):
    """Concurrent scoring mode backed by child processes.

    Drop-in for :class:`WorkerPool`::

        with ProcessWorkerPool(service, num_workers=4) as pool:
            report = pool.run_stream(stream)

    Parameters
    ----------
    service:
        The wrapped synchronous service; its batcher and monitors stay in
        the parent and are the only copy of the serving state.
    num_workers:
        Number of child scoring processes.  Default 2 — spawning a child
        costs a fresh interpreter plus a :mod:`repro` import, so size the
        pool to the cores you have, not higher.
    timer_interval:
        Background age-trigger period (see :class:`WorkerPool`).
    result_callback:
        In-order committed-result hook (see :class:`WorkerPool`).
    start_method:
        ``multiprocessing`` start method; ``"spawn"`` (default) is safe in
        threaded parents, ``"fork"``/``"forkserver"`` start faster where the
        caller knows no thread holds a lock.
    handshake_timeout:
        Seconds to wait for child swap acknowledgements (and for stragglers
        at close) before giving up with an error.
    """

    def __init__(
        self,
        service: DetectionService,
        num_workers: int = 2,
        timer_interval: Optional[float] = None,
        result_callback: Optional[Callable[[BatchResult], None]] = None,
        start_method: str = "spawn",
        handshake_timeout: float = 120.0,
    ) -> None:
        super().__init__(
            service,
            num_workers=num_workers,
            timer_interval=timer_interval,
            result_callback=result_callback,
        )
        if start_method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"unknown start method {start_method!r}; this platform "
                f"supports {multiprocessing.get_all_start_methods()}"
            )
        self.start_method = start_method
        self.handshake_timeout = float(handshake_timeout)
        self._started = False
        # Active scoring slots (dispatch routes sequence % len(_slots)) and
        # the graveyard: children retired by resize() that are still
        # draining their FIFO down to the stop sentinel.  Both lists are
        # mutated under _commit_cond so the collector can snapshot them.
        self._slots: List[_Child] = []
        self._graveyard: List[_Child] = []
        self._next_token = 0
        self._collector: Optional[threading.Thread] = None
        # Guarded by _commit_cond: (records, assigned child token) awaiting
        # a child's reply, the tokens still owing a swap ack, tokens already
        # diagnosed as dead, and tokens that retired cleanly.
        self._inflight: Dict[int, Tuple[TrafficRecords, int]] = {}
        self._swap_awaiting: Set[int] = set()
        self._swap_failures: List[str] = []
        self._failed_workers: Dict[int, str] = {}
        self._retired_clean: Set[int] = set()
        self._stopping = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def running(self) -> bool:
        return self._started

    def _spawn_child(self, checkpoint: DetectorCheckpoint) -> None:
        """Spawn one scoring child and append it to the active slots.

        One task queue AND one result queue per child: no lock is ever
        shared between two children, so a child killed mid-write (OOM,
        operator SIGKILL) can corrupt only its own queues — the classic
        shared-queue deadlock (a victim dying between ``send_bytes`` and
        the write-lock release wedges every other writer forever) cannot
        reach the survivors.
        """
        context = multiprocessing.get_context(self.start_method)
        token = self._next_token
        self._next_token += 1
        task_queue = context.Queue()
        result_queue = context.Queue()
        process = context.Process(
            target=_worker_main,
            args=(
                token,
                self.service.detector.schema.name,
                self.service.fast,
                task_queue,
                result_queue,
            ),
            name=f"serving-proc-{token}",
            daemon=True,
        )
        process.start()
        # The checkpoint travels on the task queue, not as a Process
        # argument — see _worker_main on why large spawn args can hang.
        task_queue.put(("init", checkpoint))
        child = _Child(token, process, task_queue, result_queue)
        with self._commit_cond:
            self._slots.append(child)

    def start(self) -> "ProcessWorkerPool":
        """Spawn the children (each rehydrates the current detector from a
        checkpoint), start the collector thread and the age timer."""
        if self._started:
            return self
        checkpoint = DetectorCheckpoint.capture(self.service.detector)
        self._shutdown.clear()
        self._stopping = False
        self._failed_workers = {}
        self._retired_clean = set()
        self._slots = []
        self._graveyard = []
        for _ in range(self.num_workers):
            self._spawn_child(checkpoint)
        self._collector = threading.Thread(
            target=self._collector_loop, name="serving-proc-collector", daemon=True
        )
        self._collector.start()
        self._start_timer()
        self._started = True
        return self

    def close(self) -> None:
        """Drain in-flight batches, stop the children, join everything.

        Per-child queues are FIFO, so the stop sentinel is processed only
        after every batch already dispatched to that child — close() waits
        for those results like the thread pool does.  Records still queued
        below the batch-size trigger stay in the batcher (flush() first).
        """
        self._shutdown.set()
        self._stop_timer()
        with self._submit_lock:
            if not self._started:
                self._raise_pending_error()
                return
            self._started = False  # refuse new dispatches from here on
            with self._commit_cond:
                self._stopping = True
                children = list(self._slots) + list(self._graveyard)
        for child in self._slots:
            child.task_queue.put(("stop",))  # graveyard children already have one
        deadline = time.monotonic() + self.handshake_timeout
        for child in children:
            child.process.join(timeout=max(deadline - time.monotonic(), 0.1))
            if child.process.is_alive():
                child.process.terminate()
                child.process.join(timeout=5.0)
        if self._collector is not None:
            self._collector.join()
            self._collector = None
        # A terminated straggler may have taken results with it; commit the
        # holes so a later join() on a restarted pool can never deadlock.
        with self._commit_cond:
            orphaned = sorted(self._inflight)
            for sequence in orphaned:
                self._inflight.pop(sequence)
        if orphaned:
            self._record_error(
                RuntimeError(
                    f"{len(orphaned)} batch(es) were lost when their worker "
                    "process was terminated at close"
                )
            )
            for sequence in orphaned:
                self._commit(sequence, None)
        for child in children:
            # A child that died before draining its queue leaves the feeder
            # thread blocked mid-write; without the cancel, the interpreter's
            # atexit handler would join that feeder forever.  On the clean
            # path children drain everything up to the stop sentinel first,
            # so nothing that matters is ever discarded.
            child.task_queue.cancel_join_thread()
            child.task_queue.close()
            child.result_queue.close()
        with self._commit_cond:
            self._slots = []
            self._graveyard = []
        self._raise_pending_error()

    # ------------------------------------------------------------------ #
    # Dispatch and collection
    # ------------------------------------------------------------------ #
    def _require_running(self) -> None:
        # Refuse *before* the caller drains the batcher (the base-class
        # invariant): with every child gone, a drained batch could neither
        # be scored nor re-queued — it would vanish from the accounting.
        super()._require_running()
        with self._commit_cond:
            if all(
                child.token in self._failed_workers for child in self._slots
            ):
                raise RuntimeError(
                    "every worker process died: "
                    + "; ".join(self._failed_workers.values())
                )

    def _dispatch(self, records: TrafficRecords) -> None:
        # Caller holds _submit_lock and has checked _require_running().
        sequence = self._next_sequence
        self._next_sequence += 1
        # Equal-sized micro-batches round-robin cleanly; the per-child FIFO
        # is also what gives swap_detector its batch-boundary semantics.
        # Workers already diagnosed dead are skipped so one crash does not
        # strand a third of the traffic; if the last survivor dies in the
        # race window after _require_running, the task lands on a dead
        # child's queue and the orphan sweep commits it as an errored hole
        # — records are never silently dropped.
        with self._commit_cond:
            child = self._slots[sequence % len(self._slots)]
            if child.token in self._failed_workers:
                alive = [
                    candidate
                    for candidate in self._slots
                    if candidate.token not in self._failed_workers
                ]
                if alive:
                    child = alive[sequence % len(alive)]
            self._inflight[sequence] = (records, child.token)
        child.task_queue.put(
            (
                "score",
                sequence,
                records.numeric,
                dict(records.categorical),
                records.labels,
            )
        )

    def _collector_loop(self) -> None:
        """Parent-side sink: turn child replies into in-order commits.

        Multiplexes the per-child result queues (``connection.wait`` on
        their read pipes).  Exits once close() has flagged ``_stopping``,
        every child has exited *and* a final drain has emptied the queues —
        a child can flush its last results into its pipe in the instant
        before its exit code becomes visible, and those must not be
        abandoned.  A queue a dying child corrupted mid-write poisons only
        that child's replies; its in-flight work is failed by the sweep and
        every other worker keeps committing.
        """
        readers: dict = {}
        dropped: set = set()
        while True:
            # Re-snapshot the children each pass: resize() appends fresh
            # slots and moves retiring children to the graveyard while the
            # collector runs, and their replies must keep flowing either way.
            with self._commit_cond:
                children = list(self._slots) + list(self._graveyard)
                stopping = self._stopping
            for child in children:
                reader = child.result_queue._reader
                if reader not in readers and reader not in dropped:
                    readers[reader] = child.result_queue
            ready = multiprocessing.connection.wait(
                list(readers), timeout=_POLL_INTERVAL
            )
            if not ready:
                if stopping:
                    if all(c.process.exitcode is not None for c in children):
                        self._drain_remaining(
                            [child.result_queue for child in children]
                        )
                        return
                else:
                    self._check_children()
                continue
            for reader in ready:
                try:
                    message = readers[reader].get_nowait()
                except queue_module.Empty:
                    continue
                except EOFError:
                    # The owner exited and its pipe is fully drained — the
                    # normal end of a cleanly retired graveyard child.  An
                    # *unexpected* death is diagnosed by exitcode in
                    # _check_children; nothing is lost by dropping the pipe.
                    del readers[reader]
                    dropped.add(reader)
                    continue
                except BaseException as exc:  # a queue torn by a dead child
                    # Drop the poisoned queue; the owner is dead or dying,
                    # so the next liveness check sweeps its in-flight work.
                    self._record_error(exc)
                    del readers[reader]
                    dropped.add(reader)
                    continue
                self._handle_message(message)

    def _drain_remaining(self, result_queues) -> None:
        """Consume every reply already flushed to the result queues.

        Called once all children have exited: their queue feeder threads
        flushed before exit, so anything in flight is in the pipes now and
        one pass down to Empty per queue collects it all.
        """
        for result_queue in result_queues:
            while True:
                try:
                    message = result_queue.get(timeout=_POLL_INTERVAL)
                except BaseException:  # Empty, or a queue torn down mid-drain
                    break
                self._handle_message(message)

    def _handle_message(self, message) -> None:
        kind = message[0]
        if kind == "scored":
            _, sequence, predicted, latency, unknown_delta = message
            self._commit_scored(sequence, predicted, latency, unknown_delta)
        elif kind == "error":
            _, sequence, text = message
            self._record_error(
                RuntimeError(f"worker process scoring failed:\n{text}")
            )
            with self._commit_cond:
                known = self._inflight.pop(sequence, None) is not None
            if known:  # else the orphan sweep already committed the hole
                self._commit(sequence, None)
        elif kind == "swapped":
            _, worker_id, error = message
            with self._commit_cond:
                self._swap_awaiting.discard(worker_id)
                if error is not None:
                    self._swap_failures.append(f"worker {worker_id}: {error}")
                self._commit_cond.notify_all()
        elif kind == "init-error":
            # The child exits right after this; the liveness check will
            # fail its sequences — this just attaches the real cause.
            _, worker_id, text = message
            self._record_error(
                RuntimeError(
                    f"worker process {worker_id} failed to rehydrate its "
                    f"detector:\n{text}"
                )
            )

    def _commit_scored(self, sequence, predicted, latency, unknown_delta) -> None:
        """Assemble the BatchResult the synchronous path would have built.

        The child did preprocessing + inference; labels are encoded (and
        predictions decoded) here against the parent pipeline, and the
        child's unknown-categorical tallies fold into the parent's counters
        so the drift report matches a synchronous run exactly.  ``finished``
        is stamped with the parent service's clock — the only timeline the
        throughput monitor knows — while the latency is the child's measured
        scoring time.
        """
        with self._commit_cond:
            entry = self._inflight.pop(sequence, None)
        if entry is None:
            # Already written off (its child was diagnosed dead after the
            # reply was queued); the sequence was committed as a hole.
            return
        records, _ = entry
        pipeline = self.service.pipeline
        result: Optional[BatchResult]
        try:
            if unknown_delta:
                pipeline.absorb_unknown_counts(unknown_delta)
            result = BatchResult(
                size=len(records),
                latency=float(latency),
                predictions=pipeline.decode_labels(predicted),
                class_indices=predicted,
                true_indices=pipeline.encode_labels(records),
                finished=self.service.clock(),
            )
        except BaseException as exc:
            result = None
            self._record_error(exc)
        self._commit(sequence, result)

    def _check_children(self) -> None:
        """Fail fast when a child died: a sequence dispatched to a dead
        child would otherwise block join()/flush() forever.  Each in-flight
        sequence remembers which child it was dispatched to, so the orphans
        are exactly computable — including any dispatched to an
        already-failed worker through the liveness-check race window.

        A graveyard child exiting with code 0 is the *expected* end of a
        clean retirement (its stop sentinel drained behind its last batch);
        any other exit — an active slot exiting at all, or a retiring child
        exiting non-zero — is a failure and its in-flight work is swept.
        """
        with self._commit_cond:
            active = list(self._slots)
            graveyard = list(self._graveyard)
        for child, retiring in [(c, False) for c in active] + [
            (c, True) for c in graveyard
        ]:
            if (
                child.process.exitcode is None
                or child.token in self._failed_workers
                or child.token in self._retired_clean
            ):
                continue
            with self._commit_cond:
                stopping = self._stopping
            if (retiring or stopping) and child.process.exitcode == 0:
                # Expected ends: a retiring child drained its stop sentinel,
                # or an active child obeyed the shutdown stop during close().
                with self._commit_cond:
                    self._retired_clean.add(child.token)
                continue
            reason = (
                f"worker process {child.token} exited unexpectedly "
                f"(exitcode {child.process.exitcode})"
            )
            with self._commit_cond:
                self._failed_workers[child.token] = reason
                # A swap ack that will never arrive must not hang the
                # swapper; a worker that already acked owes nothing.
                if child.token in self._swap_awaiting:
                    self._swap_awaiting.discard(child.token)
                    self._swap_failures.append(reason)
                self._commit_cond.notify_all()
            self._record_error(RuntimeError(reason))
        # Sweep every poll, not only at diagnosis time: the sweep also has
        # to catch work routed to a dead child before its failure was known.
        with self._commit_cond:
            if not self._failed_workers:
                return
            orphaned = sorted(
                sequence
                for sequence, (_, worker_id) in self._inflight.items()
                if worker_id in self._failed_workers
            )
            for sequence in orphaned:
                self._inflight.pop(sequence)
        for sequence in orphaned:
            self._commit(sequence, None)

    # ------------------------------------------------------------------ #
    # Autoscaling
    # ------------------------------------------------------------------ #
    def resize(self, num_workers: int) -> None:
        """Grow or shrink the child-process fleet on batch boundaries.

        Growing spawns fresh children that rehydrate the *currently
        serving* detector from a new checkpoint.  Shrinking retires the
        trailing slots: each retiring child receives a stop sentinel behind
        whatever batches it already owns (per-child queues are FIFO),
        finishes them, replies and exits — nothing in flight is dropped,
        and because every reply still commits through the reorder buffer in
        submission order, reports stay bit-equal to a fixed-size run of the
        same stream.
        """
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        num_workers = int(num_workers)
        with self._submit_lock:
            if not self._started:
                raise RuntimeError(
                    f"{type(self).__name__} is not running; call start() "
                    "before resize()"
                )
            if num_workers == self.num_workers:
                return
            if num_workers > self.num_workers:
                checkpoint = DetectorCheckpoint.capture(self.service.detector)
                for _ in range(num_workers - self.num_workers):
                    self._spawn_child(checkpoint)
            else:
                with self._commit_cond:
                    retiring = self._slots[num_workers:]
                    del self._slots[num_workers:]
                    self._graveyard.extend(retiring)
                for child in retiring:
                    child.task_queue.put(("stop",))
            self.num_workers = num_workers

    # ------------------------------------------------------------------ #
    # Hot-swap
    # ------------------------------------------------------------------ #
    def swap_detector(self, detector, carry_unknown_counts: bool = True):
        """Swap the parent engine and re-ship the checkpoint to the children.

        Drains every dispatched batch first, so the swap lands on a batch
        boundary: nothing scored by the old engine commits after it, and —
        because each child applies the swap message before any later task on
        its FIFO queue — nothing dispatched afterwards is scored by the old
        model.  Blocks until every child acknowledges the rehydration and
        raises if any of them failed, leaving no silent model skew.
        Returns the retired detector, like the in-process swap.
        """
        self.join()
        with self._submit_lock:
            self._require_running()
            retired = self.service.swap_detector(
                detector, carry_unknown_counts=carry_unknown_counts
            )
            checkpoint = DetectorCheckpoint.capture(detector)
            with self._commit_cond:
                # Only surviving *active* children can acknowledge (join()
                # above has already surfaced any worker death to the caller;
                # graveyard children are exiting and never score another
                # batch, so they need no challenger).
                recipients = [
                    child
                    for child in self._slots
                    if child.token not in self._failed_workers
                ]
                self._swap_awaiting = {child.token for child in recipients}
                self._swap_failures = []
            for child in recipients:
                child.task_queue.put(("swap", checkpoint))
        with self._commit_cond:
            acknowledged = self._commit_cond.wait_for(
                lambda: not self._swap_awaiting, self.handshake_timeout
            )
            failures = list(self._swap_failures)
        if not acknowledged:
            raise TimeoutError(
                "child processes did not acknowledge the detector swap "
                f"within {self.handshake_timeout} s"
            )
        if failures:
            raise RuntimeError(
                "detector swap failed in child process(es): " + "; ".join(failures)
            )
        return retired
