"""Process-parallel scoring for the detection service.

:class:`ProcessWorkerPool` is the fourth execution model: the same
submit/poll/flush/report surface as the thread-based
:class:`~repro.serving.workers.WorkerPool`, with scoring moved into **child
processes** so the Python-level preprocessing — which holds the GIL and
caps the thread pool at single-core throughput — runs on real cores.

Division of labour:

* each **child process** rehydrates a scoring-identical detector from a
  :class:`~repro.serving.lifecycle.DetectorCheckpoint` at startup (weights,
  buffers, preprocessor vocabularies and scaler — the restored
  ``predict(fast=True)`` is bitwise-equal to the parent's), then loops:
  micro-batches arrive over the pool's :class:`~repro.serving.transport.Transport`
  (pickled arrays on the queue transport, preallocated shared-memory slots
  on the shm transport), are preprocessed and scored in the child, and the
  predicted class indices travel back with the measured scoring time and
  the batch's unknown-categorical tallies;
* the **parent** keeps every piece of mutable serving state — the
  micro-batcher, the rolling/throughput monitors, phase attribution, the
  vocabulary-drift counters (child tallies are folded back in) — and
  commits results through the :class:`WorkerPool` reorder buffer, strictly
  in submission order.

Because the child's detector is scoring-identical, the transport decodes
batches string-for-string identically (see :mod:`repro.serving.transport`),
and all accounting stays in the parent on the in-order commit path, every
:class:`ServiceReport` produced through a process pool is
record-for-record identical to the synchronous run — the guarantee the
scenario suite and the tier-1 smoke assert bit for bit, on both transports.

Latency accounting: the committed :class:`BatchResult` carries the
parent-measured round trip — dispatch to collected reply, on the service
clock — so the transport's serialization/IPC cost is *visible* in the
latency columns (that is the number the shm data plane is built to cut).
The child's pure scoring time still travels back in the reply for the
transports' result contract.

Hot-swap: :meth:`ProcessWorkerPool.swap_detector` drains the in-flight
batches, swaps the parent engine, then re-ships the challenger's checkpoint
to every child and waits for their acknowledgements.  Per-child task queues
are FIFO on every transport, so any batch dispatched after the swap is
scored by the new model — the same batch-boundary semantics as the
in-process swap, which is what keeps a drift-supervised run's counts equal
to a drain-stop-restart run.

Start method: ``"spawn"`` by default — fork would duplicate the parent's
running threads (age timers, other pools, test watchdogs) into the child
mid-lock.  Spawned children re-import :mod:`repro`, so pool startup costs a
couple of seconds; amortise it by keeping one pool alive across streams.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from ..data.dataset import TrafficRecords
from ..data.schema import get_schema
from .lifecycle.checkpoint import DetectorCheckpoint
from .service import BatchResult, CachedPreprocessor, DetectionService
from .transport import Channel, child_endpoint, resolve_transport
from .workers import PoolStats, WorkerPool

__all__ = ["ProcessWorkerPool"]

#: Collector poll period: how often child liveness is re-checked while the
#: result queue is quiet.
_POLL_INTERVAL = 0.1


@dataclass
class _Child:
    """One child scoring process and its transport channel.

    ``token`` is unique for the pool's whole lifetime — slot indices are
    reused by ``resize()`` (shrink then grow), so everything keyed per child
    (in-flight work, swap acks, failure diagnoses) is keyed by token, never
    by position.
    """

    token: int
    process: "multiprocessing.process.BaseProcess" = field(repr=False)
    channel: Channel = field(repr=False)


def _worker_main(worker_id, schema_name, fast, endpoint_spec):
    """Child-process scoring loop (module-level: spawn pickles it by name).

    The ``Process`` arguments stay deliberately tiny: spawn writes them to
    the child over a pipe from a *blocking* ``os.write`` in the parent, so
    a megabytes-large checkpoint there can wedge ``start()`` forever if the
    child dies before draining the pipe.  The checkpoint instead arrives as
    the first task-queue message (queue puts run on a daemon feeder thread
    and never block the caller).

    ``endpoint_spec`` rebuilds the transport's child endpoint
    (:func:`repro.serving.transport.child_endpoint`), which normalizes
    every parent message to:

    * ``("init", checkpoint)`` — rehydrate the serving detector (always the
      first message); a failure replies ``init-error`` and exits the child;
    * ``("score", sequence, load)`` — ``load(schema)`` materializes the
      :class:`TrafficRecords` (unpickled payload or decoded shm slot);
      preprocess + predict, reply via ``send_scored`` (class indices +
      scoring time + unknown tallies, written to the slot's result region
      on the shm transport);
    * ``("swap", checkpoint)`` — rehydrate the replacement detector, reply
      ``("swapped", worker_id, error_text_or_None)``;
    * ``("stop",)`` — exit the loop.

    Scoring errors reply ``("error", sequence, traceback_text)`` and keep
    the loop alive; the parent skips the batch and surfaces the error on
    the next join/flush/close.
    """
    schema = get_schema(schema_name)
    endpoint = child_endpoint(endpoint_spec)
    try:
        _worker_loop(endpoint, schema, fast, worker_id)
    finally:
        # Release the endpoint's shm mapping before interpreter teardown:
        # live numpy exports would make SharedMemory.__del__'s mmap.close()
        # raise (and log) BufferError during shutdown.
        endpoint.close()


def _worker_loop(endpoint, schema, fast, worker_id) -> None:
    detector = None
    pipeline = None
    unknown_seen: Dict[str, int] = {}
    while True:
        message = endpoint.receive()
        kind = message[0]
        if kind == "stop":
            break
        if kind in ("init", "swap"):
            try:
                detector = message[1].restore()
                pipeline = CachedPreprocessor(detector.preprocessor)
                unknown_seen = {}
                if kind == "swap":
                    endpoint.send_swapped(worker_id, None)
            except BaseException:
                # A failed rehydration is fatal either way: limping on with
                # the *retired* detector would silently skew the counts, so
                # the child reports and exits — the parent's liveness check
                # then excludes it from dispatch.
                if kind == "swap":
                    endpoint.send_swapped(worker_id, traceback.format_exc())
                else:
                    endpoint.send_init_error(worker_id, traceback.format_exc())
                raise SystemExit(1)
            continue
        sequence = message[1]
        try:
            records = message[2](schema)
            started = time.perf_counter()
            inputs = pipeline.transform_inputs(records)
            probabilities = detector.network.predict(
                inputs, batch_size=max(len(records), 1), fast=fast
            )
            predicted = np.argmax(probabilities, axis=-1)
            latency = time.perf_counter() - started
            unknown_now = pipeline.unknown_categoricals
            unknown_delta = {
                column: count - unknown_seen.get(column, 0)
                for column, count in unknown_now.items()
                if count != unknown_seen.get(column, 0)
            }
            unknown_seen = unknown_now
            endpoint.send_scored(sequence, predicted, latency, unknown_delta)
        except BaseException:
            endpoint.send_error(sequence, traceback.format_exc())


class ProcessWorkerPool(WorkerPool):
    """Concurrent scoring mode backed by child processes.

    Drop-in for :class:`WorkerPool`::

        with ProcessWorkerPool(service, num_workers=4, transport="shm") as pool:
            report = pool.run_stream(stream)

    Parameters
    ----------
    service:
        The wrapped synchronous service; its batcher and monitors stay in
        the parent and are the only copy of the serving state.
    num_workers:
        Number of child scoring processes.  Default 2 — spawning a child
        costs a fresh interpreter plus a :mod:`repro` import, so size the
        pool to the cores you have, not higher.
    timer_interval:
        Background age-trigger period (see :class:`WorkerPool`).
    result_callback:
        In-order committed-result hook (see :class:`WorkerPool`).
    start_method:
        ``multiprocessing`` start method; ``"spawn"`` (default) is safe in
        threaded parents, ``"fork"``/``"forkserver"`` start faster where the
        caller knows no thread holds a lock.
    handshake_timeout:
        Seconds to wait for child swap acknowledgements (and for stragglers
        at close) before giving up with an error.
    transport:
        The parent↔child data plane: ``"queue"`` (pickled per-child queues,
        the default and equivalence oracle) or ``"shm"`` (preallocated
        shared-memory slot rings; only control tokens cross the queues) —
        or a ready-made :class:`~repro.serving.transport.Transport`
        instance for custom slot sizing.  See
        :mod:`repro.serving.transport`.
    """

    def __init__(
        self,
        service: DetectionService,
        num_workers: int = 2,
        timer_interval: Optional[float] = None,
        result_callback: Optional[Callable[[BatchResult], None]] = None,
        start_method: str = "spawn",
        handshake_timeout: float = 120.0,
        transport="queue",
    ) -> None:
        super().__init__(
            service,
            num_workers=num_workers,
            timer_interval=timer_interval,
            result_callback=result_callback,
        )
        if start_method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"unknown start method {start_method!r}; this platform "
                f"supports {multiprocessing.get_all_start_methods()}"
            )
        self.start_method = start_method
        self.handshake_timeout = float(handshake_timeout)
        # Resolved eagerly so an unknown transport name fails at
        # construction, not at start() deep inside a stream run.
        self.transport = resolve_transport(transport, service)
        self._started = False
        # Active scoring slots (dispatch routes sequence % len(_slots)) and
        # the graveyard: children retired by resize() that are still
        # draining their FIFO down to the stop sentinel.  Both lists are
        # mutated under _commit_cond so the collector can snapshot them.
        self._slots: List[_Child] = []
        self._graveyard: List[_Child] = []
        self._next_token = 0
        self._collector: Optional[threading.Thread] = None
        # Guarded by _commit_cond: (records, assigned child token, dispatch
        # stamp) awaiting a child's reply, the tokens still owing a swap
        # ack, tokens already diagnosed as dead, and tokens that retired
        # cleanly.
        self._inflight: Dict[int, Tuple[TrafficRecords, int, float]] = {}
        self._swap_awaiting: Set[int] = set()
        self._swap_failures: List[str] = []
        self._failed_workers: Dict[int, str] = {}
        self._retired_clean: Set[int] = set()
        self._stopping = False
        # Data-plane counters folded in from channels at close(), so
        # transport_counters() stays meaningful after run_stream() (which
        # closes the pool) has returned.
        self._transport_totals: Dict[str, int] = {
            "slot_batches": 0, "inline_batches": 0,
        }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def running(self) -> bool:
        return self._started

    def _spawn_child(self, checkpoint: DetectorCheckpoint) -> None:
        """Spawn one scoring child and append it to the active slots.

        The transport opens one private channel per child — one task queue
        AND one result queue (plus, on the shm transport, one slot ring):
        no lock is ever shared between two children, so a child killed
        mid-write (OOM, operator SIGKILL) can corrupt only its own channel
        — the classic shared-queue deadlock (a victim dying between
        ``send_bytes`` and the write-lock release wedges every other writer
        forever) cannot reach the survivors.
        """
        context = multiprocessing.get_context(self.start_method)
        token = self._next_token
        self._next_token += 1
        channel = self.transport.open_channel(context)
        process = context.Process(
            target=_worker_main,
            args=(
                token,
                self.service.detector.schema.name,
                self.service.fast,
                channel.child_spec(),
            ),
            name=f"serving-proc-{token}",
            daemon=True,
        )
        process.start()
        # The checkpoint travels on the task queue, not as a Process
        # argument — see _worker_main on why large spawn args can hang.
        channel.send_init(checkpoint)
        child = _Child(token, process, channel)
        with self._commit_cond:
            self._slots.append(child)

    def start(self) -> "ProcessWorkerPool":
        """Spawn the children (each rehydrates the current detector from a
        checkpoint), start the collector thread and the age timer."""
        if self._started:
            return self
        checkpoint = DetectorCheckpoint.capture(self.service.detector)
        self._shutdown.clear()
        self._stopping = False
        self._failed_workers = {}
        self._retired_clean = set()
        self._slots = []
        self._graveyard = []
        for _ in range(self.num_workers):
            self._spawn_child(checkpoint)
        self._collector = threading.Thread(
            target=self._collector_loop, name="serving-proc-collector", daemon=True
        )
        self._collector.start()
        self._start_timer()
        self._started = True
        return self

    def close(self) -> None:
        """Drain in-flight batches, stop the children, join everything.

        Per-child queues are FIFO, so the stop sentinel is processed only
        after every batch already dispatched to that child — close() waits
        for those results like the thread pool does.  Records still queued
        below the batch-size trigger stay in the batcher (flush() first).
        Every channel is shut down at the end — queues closed, slot
        segments unlinked — so no transport resource outlives the pool.
        """
        self._shutdown.set()
        self._stop_timer()
        with self._submit_lock:
            if not self._started:
                self._raise_pending_error()
                return
            self._started = False  # refuse new dispatches from here on
            with self._commit_cond:
                self._stopping = True
                children = list(self._slots) + list(self._graveyard)
        for child in self._slots:
            child.channel.send_stop()  # graveyard children already have one
        deadline = time.monotonic() + self.handshake_timeout
        for child in children:
            child.process.join(timeout=max(deadline - time.monotonic(), 0.1))
            if child.process.is_alive():
                child.process.terminate()
                child.process.join(timeout=5.0)
        if self._collector is not None:
            self._collector.join()
            self._collector = None
        # A terminated straggler may have taken results with it; commit the
        # holes so a later join() on a restarted pool can never deadlock.
        with self._commit_cond:
            orphaned = sorted(self._inflight)
            for sequence in orphaned:
                self._inflight.pop(sequence)
        if orphaned:
            self._record_error(
                RuntimeError(
                    f"{len(orphaned)} batch(es) were lost when their worker "
                    "process was terminated at close"
                )
            )
            for sequence in orphaned:
                self._commit(sequence, None)
        for child in children:
            child.channel.shutdown()
            self._transport_totals["slot_batches"] += child.channel.slot_batches
            self._transport_totals["inline_batches"] += child.channel.inline_batches
        with self._commit_cond:
            self._slots = []
            self._graveyard = []
        self._raise_pending_error()

    # ------------------------------------------------------------------ #
    # Dispatch and collection
    # ------------------------------------------------------------------ #
    def _require_running(self) -> None:
        # Refuse *before* the caller drains the batcher (the base-class
        # invariant): with every child gone, a drained batch could neither
        # be scored nor re-queued — it would vanish from the accounting.
        super()._require_running()
        with self._commit_cond:
            if all(
                child.token in self._failed_workers for child in self._slots
            ):
                raise RuntimeError(
                    "every worker process died: "
                    + "; ".join(self._failed_workers.values())
                )

    def _dispatch(self, records: TrafficRecords) -> None:
        # Caller holds _submit_lock and has checked _require_running().
        sequence = self._next_sequence
        self._next_sequence += 1
        # Equal-sized micro-batches round-robin cleanly; the per-child FIFO
        # is also what gives swap_detector its batch-boundary semantics.
        # Workers already diagnosed dead are skipped so one crash does not
        # strand a third of the traffic; if the last survivor dies in the
        # race window after _require_running, the task lands on a dead
        # child's queue and the orphan sweep commits it as an errored hole
        # — records are never silently dropped.
        with self._commit_cond:
            child = self._slots[sequence % len(self._slots)]
            if child.token in self._failed_workers:
                alive = [
                    candidate
                    for candidate in self._slots
                    if candidate.token not in self._failed_workers
                ]
                if alive:
                    child = alive[sequence % len(alive)]
            self._inflight[sequence] = (records, child.token, self.service.clock())
        child.channel.send_score(sequence, records)

    def _collector_loop(self) -> None:
        """Parent-side sink: turn child replies into in-order commits.

        Multiplexes the per-child channels (``connection.wait`` on their
        reply pipes).  Exits once close() has flagged ``_stopping``, every
        child has exited *and* a final drain has emptied the channels — a
        child can flush its last results into its pipe in the instant
        before its exit code becomes visible, and those must not be
        abandoned.  A channel a dying child corrupted mid-write poisons
        only that child's replies; its in-flight work is failed by the
        sweep and every other worker keeps committing.
        """
        readers: dict = {}
        dropped: set = set()
        while True:
            # Re-snapshot the children each pass: resize() appends fresh
            # slots and moves retiring children to the graveyard while the
            # collector runs, and their replies must keep flowing either way.
            with self._commit_cond:
                children = list(self._slots) + list(self._graveyard)
                stopping = self._stopping
            for child in children:
                reader = child.channel.reply_reader
                if reader not in readers and reader not in dropped:
                    readers[reader] = child.channel
            ready = multiprocessing.connection.wait(
                list(readers), timeout=_POLL_INTERVAL
            )
            if not ready:
                if stopping:
                    if all(c.process.exitcode is not None for c in children):
                        self._drain_remaining(
                            [child.channel for child in children]
                        )
                        return
                else:
                    self._check_children()
                continue
            for reader in ready:
                try:
                    message = readers[reader].receive_nowait()
                except queue_module.Empty:
                    continue
                except EOFError:
                    # The owner exited and its pipe is fully drained — the
                    # normal end of a cleanly retired graveyard child.  An
                    # *unexpected* death is diagnosed by exitcode in
                    # _check_children; nothing is lost by dropping the pipe.
                    del readers[reader]
                    dropped.add(reader)
                    continue
                except BaseException as exc:  # a channel torn by a dead child
                    # Drop the poisoned channel; the owner is dead or dying,
                    # so the next liveness check sweeps its in-flight work.
                    self._record_error(exc)
                    del readers[reader]
                    dropped.add(reader)
                    continue
                self._handle_message(message)

    def _drain_remaining(self, channels) -> None:
        """Consume every reply already flushed to the reply pipes.

        Called once all children have exited: their queue feeder threads
        flushed before exit, so anything in flight is in the pipes now and
        one pass down to Empty per channel collects it all.
        """
        for channel in channels:
            while True:
                try:
                    message = channel.receive(timeout=_POLL_INTERVAL)
                except BaseException:  # Empty, or a channel torn down mid-drain
                    break
                self._handle_message(message)

    def _handle_message(self, message) -> None:
        kind = message[0]
        if kind == "scored":
            _, sequence, predicted, latency, unknown_delta = message
            self._commit_scored(sequence, predicted, latency, unknown_delta)
        elif kind == "error":
            _, sequence, text = message
            self._record_error(
                RuntimeError(f"worker process scoring failed:\n{text}")
            )
            with self._commit_cond:
                known = self._inflight.pop(sequence, None) is not None
            if known:  # else the orphan sweep already committed the hole
                self._commit(sequence, None)
        elif kind == "swapped":
            _, worker_id, error = message
            with self._commit_cond:
                self._swap_awaiting.discard(worker_id)
                if error is not None:
                    self._swap_failures.append(f"worker {worker_id}: {error}")
                self._commit_cond.notify_all()
        elif kind == "init-error":
            # The child exits right after this; the liveness check will
            # fail its sequences — this just attaches the real cause.
            _, worker_id, text = message
            self._record_error(
                RuntimeError(
                    f"worker process {worker_id} failed to rehydrate its "
                    f"detector:\n{text}"
                )
            )

    def _commit_scored(self, sequence, predicted, child_latency, unknown_delta) -> None:
        """Assemble the BatchResult the synchronous path would have built.

        The child did preprocessing + inference; labels are encoded (and
        predictions decoded) here against the parent pipeline, and the
        child's unknown-categorical tallies fold into the parent's counters
        so the drift report matches a synchronous run exactly.  ``finished``
        is stamped with the parent service's clock — the only timeline the
        throughput monitor knows — and the latency is the parent-measured
        round trip (dispatch to collected reply, same clock), so transport
        cost shows up in the latency columns; ``child_latency`` (the pure
        scoring time) is informational.
        """
        with self._commit_cond:
            entry = self._inflight.pop(sequence, None)
        if entry is None:
            # Already written off (its child was diagnosed dead after the
            # reply was queued); the sequence was committed as a hole.
            return
        records, _, dispatched_at = entry
        pipeline = self.service.pipeline
        result: Optional[BatchResult]
        try:
            if unknown_delta:
                pipeline.absorb_unknown_counts(unknown_delta)
            finished = self.service.clock()
            result = BatchResult(
                size=len(records),
                latency=float(finished - dispatched_at),
                predictions=pipeline.decode_labels(predicted),
                class_indices=predicted,
                true_indices=pipeline.encode_labels(records),
                finished=finished,
            )
        except BaseException as exc:
            result = None
            self._record_error(exc)
        self._commit(sequence, result)

    def _check_children(self) -> None:
        """Fail fast when a child died: a sequence dispatched to a dead
        child would otherwise block join()/flush() forever.  Each in-flight
        sequence remembers which child it was dispatched to, so the orphans
        are exactly computable — including any dispatched to an
        already-failed worker through the liveness-check race window.

        A graveyard child exiting with code 0 is the *expected* end of a
        clean retirement (its stop sentinel drained behind its last batch);
        any other exit — an active slot exiting at all, or a retiring child
        exiting non-zero — is a failure and its in-flight work is swept.
        Either way the child is gone, so its channel's preallocated
        resources (the shm slot ring) are reclaimed on the spot — a
        SIGKILL'd child must not leak its segment until pool close.
        """
        with self._commit_cond:
            active = list(self._slots)
            graveyard = list(self._graveyard)
        for child, retiring in [(c, False) for c in active] + [
            (c, True) for c in graveyard
        ]:
            if (
                child.process.exitcode is None
                or child.token in self._failed_workers
                or child.token in self._retired_clean
            ):
                continue
            with self._commit_cond:
                stopping = self._stopping
            if (retiring or stopping) and child.process.exitcode == 0:
                # Expected ends: a retiring child drained its stop sentinel,
                # or an active child obeyed the shutdown stop during close().
                with self._commit_cond:
                    self._retired_clean.add(child.token)
                child.channel.reclaim()
                continue
            reason = (
                f"worker process {child.token} exited unexpectedly "
                f"(exitcode {child.process.exitcode})"
            )
            with self._commit_cond:
                self._failed_workers[child.token] = reason
                # A swap ack that will never arrive must not hang the
                # swapper; a worker that already acked owes nothing.
                if child.token in self._swap_awaiting:
                    self._swap_awaiting.discard(child.token)
                    self._swap_failures.append(reason)
                self._commit_cond.notify_all()
            self._record_error(RuntimeError(reason))
            child.channel.reclaim()
        # Sweep every poll, not only at diagnosis time: the sweep also has
        # to catch work routed to a dead child before its failure was known.
        with self._commit_cond:
            if not self._failed_workers:
                return
            orphaned = sorted(
                sequence
                for sequence, (_, worker_id, _) in self._inflight.items()
                if worker_id in self._failed_workers
            )
            for sequence in orphaned:
                self._inflight.pop(sequence)
        for sequence in orphaned:
            self._commit(sequence, None)

    # ------------------------------------------------------------------ #
    # Utilization
    # ------------------------------------------------------------------ #
    def stats(self) -> PoolStats:
        """Authoritative :class:`PoolStats` for the process backend.

        The inherited snapshot infers ``in_flight`` from sequence-counter
        distance (``dispatched - next_commit``), which cannot see *where*
        a dispatched batch is: batches shipped into per-child task queues,
        batches being scored, and batches whose replies already arrived but
        are parked in the reorder buffer behind a missing earlier sequence
        all look alike.  Under head-of-line blocking that reads as a
        saturated pool when the children are actually idle — and the fleet
        autoscaler scales from that stale backlog.

        This override counts the shipped-but-uncommitted sequences from the
        pool's own books: ``in_flight`` = batches the children still owe a
        reply for (the per-child in-flight map) plus replies held for
        in-order commit, and ``busy_fraction`` is computed from the *owed*
        batches only — the portion of the fleet that genuinely has work.
        """
        with self._submit_lock:
            workers = self.num_workers
            queue_depth = self.service.batcher.pending_count
        with self._commit_cond:
            shipped = len(self._inflight)      # shipped to a child, no reply yet
            buffered = len(self._out_of_order)  # replied, awaiting in-order commit
        return PoolStats(
            workers=workers,
            queue_depth=queue_depth,
            in_flight=shipped + buffered,
            busy_fraction=min(shipped, workers) / workers,
        )

    # ------------------------------------------------------------------ #
    # Autoscaling
    # ------------------------------------------------------------------ #
    def resize(self, num_workers: int) -> None:
        """Grow or shrink the child-process fleet on batch boundaries.

        Growing spawns fresh children that rehydrate the *currently
        serving* detector from a new checkpoint (each with its own channel
        — on the shm transport, its own slot ring).  Shrinking retires the
        trailing slots: each retiring child receives a stop sentinel behind
        whatever batches it already owns (per-child queues are FIFO),
        finishes them, replies and exits — nothing in flight is dropped,
        its segment is reclaimed as soon as the clean exit is diagnosed,
        and because every reply still commits through the reorder buffer in
        submission order, reports stay bit-equal to a fixed-size run of the
        same stream.
        """
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        num_workers = int(num_workers)
        with self._submit_lock:
            if not self._started:
                raise RuntimeError(
                    f"{type(self).__name__} is not running; call start() "
                    "before resize()"
                )
            if num_workers == self.num_workers:
                return
            if num_workers > self.num_workers:
                checkpoint = DetectorCheckpoint.capture(self.service.detector)
                for _ in range(num_workers - self.num_workers):
                    self._spawn_child(checkpoint)
            else:
                with self._commit_cond:
                    retiring = self._slots[num_workers:]
                    del self._slots[num_workers:]
                    self._graveyard.extend(retiring)
                for child in retiring:
                    child.channel.send_stop()
            self.num_workers = num_workers

    # ------------------------------------------------------------------ #
    # Hot-swap
    # ------------------------------------------------------------------ #
    def swap_detector(self, detector, carry_unknown_counts: bool = True):
        """Swap the parent engine and re-ship the checkpoint to the children.

        Drains every dispatched batch first, so the swap lands on a batch
        boundary: nothing scored by the old engine commits after it, and —
        because each child applies the swap message before any later task on
        its FIFO queue — nothing dispatched afterwards is scored by the old
        model.  Blocks until every child acknowledges the rehydration and
        raises if any of them failed, leaving no silent model skew.
        Returns the retired detector, like the in-process swap.
        """
        self.join()
        with self._submit_lock:
            self._require_running()
            retired = self.service.swap_detector(
                detector, carry_unknown_counts=carry_unknown_counts
            )
            checkpoint = DetectorCheckpoint.capture(detector)
            with self._commit_cond:
                # Only surviving *active* children can acknowledge (join()
                # above has already surfaced any worker death to the caller;
                # graveyard children are exiting and never score another
                # batch, so they need no challenger).
                recipients = [
                    child
                    for child in self._slots
                    if child.token not in self._failed_workers
                ]
                self._swap_awaiting = {child.token for child in recipients}
                self._swap_failures = []
            for child in recipients:
                child.channel.send_swap(checkpoint)
        with self._commit_cond:
            acknowledged = self._commit_cond.wait_for(
                lambda: not self._swap_awaiting, self.handshake_timeout
            )
            failures = list(self._swap_failures)
        if not acknowledged:
            raise TimeoutError(
                "child processes did not acknowledge the detector swap "
                f"within {self.handshake_timeout} s"
            )
        if failures:
            raise RuntimeError(
                "detector swap failed in child process(es): " + "; ".join(failures)
            )
        return retired

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def transport_counters(self) -> Dict[str, int]:
        """Aggregate per-channel data-plane counters (slot vs inline batches)
        across every child ever owned by this pool — the number the benches
        record to prove the shm path actually carried traffic.  Closed
        children's counters are folded into running totals at close(), so
        the numbers survive ``run_stream``."""
        with self._commit_cond:
            children = list(self._slots) + list(self._graveyard)
            totals = dict(self._transport_totals)
        for child in children:
            totals["slot_batches"] += child.channel.slot_batches
            totals["inline_batches"] += child.channel.inline_batches
        return totals
