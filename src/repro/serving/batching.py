"""Micro-batching queue for the detection service.

Requests arriving at a streaming detector are rarely the size the model
runs fastest at.  :class:`MicroBatcher` buffers incoming
:class:`~repro.data.dataset.TrafficRecords` and releases model-ready
batches under the classic two-trigger policy:

* **size** — as soon as ``max_batch_size`` records are pending, a batch of
  exactly that size is released (splitting submissions when needed);
* **age** — records never wait longer than ``flush_interval`` seconds; a
  partial batch whose oldest record has exceeded the interval is released
  on the next :meth:`submit` / :meth:`poll` (or by the
  :class:`~repro.serving.workers.WorkerPool` background timer, which polls
  on a schedule instead of waiting for traffic).

Each submission is stamped with its arrival time and the stamp travels with
the records — including the left-behind tail when a size-triggered drain
splits a submission — so the age trigger always measures from the true
oldest pending record.  The clock is injectable so tests (and deterministic
replays) can drive the age trigger without sleeping.

The batcher itself is not thread-safe; concurrent callers (the worker
pool's submitters and its age-trigger timer) serialise access through a
lock of their own.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from ..data.dataset import TrafficRecords

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Size- and age-triggered micro-batching of traffic records.

    Parameters
    ----------
    max_batch_size:
        Batches released by the size trigger contain exactly this many
        records; the age trigger and :meth:`flush` may release fewer.
    flush_interval:
        Maximum time (in clock units, normally seconds) a record may sit in
        the queue before the age trigger releases it.
    clock:
        Zero-argument callable returning the current time; defaults to
        :func:`time.monotonic`.
    """

    def __init__(
        self,
        max_batch_size: int = 256,
        flush_interval: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if flush_interval < 0:
            raise ValueError("flush_interval must be non-negative")
        self.max_batch_size = int(max_batch_size)
        self.flush_interval = float(flush_interval)
        self.clock = clock
        # FIFO of (arrival time, records); split tails keep their stamp.
        # A deque: every size-triggered drain pops from the left, where
        # list.pop(0) would shift the whole queue on each release.
        self._pending: Deque[Tuple[float, TrafficRecords]] = deque()
        self._pending_count = 0

    # ------------------------------------------------------------------ #
    @property
    def pending_count(self) -> int:
        """Number of records currently buffered."""
        return self._pending_count

    @property
    def oldest_arrival(self) -> Optional[float]:
        """Arrival time of the oldest buffered record (None when empty)."""
        return self._pending[0][0] if self._pending else None

    def _drain(self, count: int) -> TrafficRecords:
        """Remove and return exactly ``count`` pending records (FIFO order)."""
        taken: List[TrafficRecords] = []
        remaining = count
        while remaining > 0:
            arrival, part = self._pending[0]
            if len(part) <= remaining:
                taken.append(part)
                remaining -= len(part)
                self._pending.popleft()
            else:
                taken.append(part.subset(range(remaining)))
                # The tail keeps its original arrival stamp: a size-triggered
                # drain must not restart the age clock for records that are
                # still waiting.
                self._pending[0] = (arrival, part.subset(range(remaining, len(part))))
                remaining = 0
        self._pending_count -= count
        return taken[0] if len(taken) == 1 else TrafficRecords.concatenate(taken)

    def submit(self, records: TrafficRecords) -> List[TrafficRecords]:
        """Buffer ``records`` and return every batch that became ready.

        Zero-record submissions are accepted and buffered nowhere (empty
        batches are routine at stream edges).  The returned list holds zero
        or more size-triggered batches, plus an age-triggered partial batch
        when the oldest pending record has waited past ``flush_interval``.
        """
        if len(records) > 0:
            self._pending.append((self.clock(), records))
            self._pending_count += len(records)
        ready: List[TrafficRecords] = []
        while self._pending_count >= self.max_batch_size:
            ready.append(self._drain(self.max_batch_size))
        overdue = self.poll()
        if overdue is not None:
            ready.append(overdue)
        return ready

    def poll(self) -> Optional[TrafficRecords]:
        """Release the pending partial batch if it is past the age trigger."""
        oldest = self.oldest_arrival
        if oldest is not None and self.clock() - oldest >= self.flush_interval:
            return self._drain(self._pending_count)
        return None

    def flush(self) -> Optional[TrafficRecords]:
        """Release everything that is pending, regardless of triggers."""
        if self._pending_count == 0:
            return None
        return self._drain(self._pending_count)
