"""The streaming detection service.

Architecture (one request path, three stages):

1. **Micro-batching** — incoming :class:`~repro.data.dataset.TrafficRecords`
   are buffered by a :class:`~repro.serving.batching.MicroBatcher` and
   released as model-sized batches (size trigger) or after a bounded wait
   (age trigger), so tiny submissions do not pay a full forward pass each.
2. **Cached preprocessing** — :class:`CachedPreprocessor` precomputes the
   one-hot layout (per-column value→position tables) and folds the standard
   scaler into a single multiply-add, replacing the per-record Python loops
   of the training-time :class:`~repro.preprocessing.pipeline.IDSPreprocessor`
   with vectorised lookups.  Numerics match the training pipeline to
   float64 round-off.  Categorical values missing from the training
   vocabulary are zero-encoded *and counted* per column — vocabulary drift
   is surfaced in every :class:`ServiceReport` instead of being swallowed.
3. **Graph-free inference** — the batch runs through
   ``Model.predict(..., fast=True)`` (see :mod:`repro.nn.inference`), and
   every batch updates a rolling ACC/DR/FAR monitor plus per-batch
   latency/throughput accounting.

Execution models on top of this path:

* **synchronous** (this module) — :meth:`DetectionService.submit` /
  :meth:`~DetectionService.poll` / :meth:`~DetectionService.flush` run
  everything on the calling thread;
* **worker pool** (:mod:`repro.serving.workers`) — scoring fans out to a
  thread pool, monitor updates commit in submission order;
* **process pool** (:mod:`repro.serving.procpool`) — scoring fans out to
  checkpoint-rehydrated child processes (off the GIL), committing through
  the same in-order protocol;
* **sharded** (:mod:`repro.serving.sharding`) — a router fans records out
  across several services (replicas or heterogeneous detectors) and their
  reports merge back into one.

The scoring path is split so those models compose: :meth:`DetectionService.score`
is pure (thread-safe, no monitor writes) and :meth:`DetectionService.observe`
applies a result to the monitors; :meth:`DetectionService.process` is simply
one followed by the other.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..core.detector import PelicanDetector
from ..data.dataset import TrafficRecords
from ..data.generator import StreamBatch
from ..metrics.ids_metrics import DetectionReport
from ..preprocessing.pipeline import IDSPreprocessor
from .batching import MicroBatcher
from .monitor import RollingDetectionMonitor, ThroughputMonitor

__all__ = [
    "CachedPreprocessor",
    "BatchResult",
    "ServiceReport",
    "PhaseAttributor",
    "DetectionService",
]


class CachedPreprocessor:
    """Vectorised, cache-backed version of a fitted ``IDSPreprocessor``.

    Built once from the training-time preprocessor, it caches everything the
    per-request transform needs: the categorical value→column tables, the
    folded scaler coefficients and the label mapping.  The per-batch work is
    then one dict lookup per categorical value and a single fused
    multiply-add over the feature matrix.

    Categorical values outside the training vocabulary cannot be one-hot
    encoded; they contribute an all-zero block (the same behaviour the
    training pipeline has for unseen values) and are tallied per column in
    :attr:`unknown_categoricals` so the drift is visible to operators.
    """

    def __init__(self, preprocessor: IDSPreprocessor) -> None:
        scaler = preprocessor.scaler
        if scaler.mean_ is None or scaler.scale_ is None:
            raise RuntimeError(
                "CachedPreprocessor requires a fitted IDSPreprocessor"
            )
        self.schema = preprocessor.schema
        self._n_numeric = len(self.schema.numeric_features)
        # Per categorical column: (offset into the feature vector, value->slot).
        self._categorical_tables: List[Tuple[str, int, Dict[str, int]]] = []
        offset = self._n_numeric
        for name, vocabulary in preprocessor.encoder.categories_.items():
            table = {value: position for position, value in enumerate(vocabulary)}
            self._categorical_tables.append((name, offset, table))
            offset += len(vocabulary)
        self.num_features = offset
        # Fold (x - mean) / scale into x * weight + shift.
        self._scale_weight = 1.0 / scaler.scale_
        self._scale_shift = -scaler.mean_ / scaler.scale_
        self.class_names = list(preprocessor.label_encoder.classes_)
        self._label_table = {
            name: index for index, name in enumerate(self.class_names)
        }
        self.normal_index = self.class_names.index(self.schema.normal_class)
        self._unknown_lock = threading.Lock()
        self._unknown_counts: Dict[str, int] = {
            name: 0 for name, _, _ in self._categorical_tables
        }

    @property
    def unknown_categoricals(self) -> Dict[str, int]:
        """Per-column tally of values missing from the training vocabulary."""
        with self._unknown_lock:
            return dict(self._unknown_counts)

    def absorb_unknown_counts(self, counts: Dict[str, int]) -> None:
        """Fold a predecessor's drift tallies into this pipeline's counters.

        A hot-swapped service keeps one continuous drift history: the
        replacement pipeline starts from the retired pipeline's per-column
        counts (columns the new vocabulary does not declare are dropped).
        """
        with self._unknown_lock:
            for column, count in counts.items():
                if column in self._unknown_counts:
                    self._unknown_counts[column] += int(count)

    def transform_inputs(self, records: TrafficRecords) -> np.ndarray:
        """Records → network input ``(n, 1, features)`` (fitted statistics)."""
        n_records = len(records)
        features = np.zeros((n_records, self.num_features))
        features[:, : self._n_numeric] = records.numeric
        rows = np.arange(n_records)
        unknown_per_column: List[Tuple[str, int]] = []
        for name, offset, table in self._categorical_tables:
            positions = np.fromiter(
                (table.get(str(value), -1) for value in records.categorical[name]),
                dtype=np.int64,
                count=n_records,
            )
            known = positions >= 0
            n_unknown = n_records - int(known.sum())
            if n_unknown:
                unknown_per_column.append((name, n_unknown))
            features[rows[known], offset + positions[known]] = 1.0
        if unknown_per_column:
            with self._unknown_lock:
                for name, n_unknown in unknown_per_column:
                    self._unknown_counts[name] += n_unknown
        features = features * self._scale_weight + self._scale_shift
        return features[:, np.newaxis, :]

    def encode_labels(self, records: TrafficRecords) -> np.ndarray:
        """Class names → integer ids in the detector's class order."""
        try:
            return np.fromiter(
                (self._label_table[str(label)] for label in records.labels),
                dtype=np.int64,
                count=len(records),
            )
        except KeyError as exc:
            raise ValueError(f"unknown label {exc.args[0]!r}") from exc

    def decode_labels(self, class_indices: np.ndarray) -> np.ndarray:
        """Integer ids → class names (object array)."""
        names = np.asarray(self.class_names, dtype=object)
        return names[np.asarray(class_indices, dtype=np.int64)]


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one processed micro-batch."""

    size: int
    latency: float
    predictions: np.ndarray          # predicted class names
    class_indices: np.ndarray        # predicted integer classes
    true_indices: np.ndarray         # ground-truth integer classes
    finished: Optional[float] = None  # clock reading when scoring ended


@dataclass(frozen=True)
class ServiceReport:
    """Summary of a served stream (see :meth:`DetectionService.run_stream`)."""

    batches: int
    records: int
    throughput: float                # records / second of merged busy time
    mean_latency: float
    p95_latency: float
    rolling: Optional[DetectionReport]
    phase_reports: Dict[str, DetectionReport] = field(default_factory=dict)
    # Per categorical column: serve-time values unseen during training.
    unknown_categoricals: Dict[str, int] = field(default_factory=dict)
    # Per shard name: the shard's own report (sharded services only).
    shard_reports: Dict[str, "ServiceReport"] = field(default_factory=dict)
    # Fleet-controller event timeline (scaling and rollout events, in
    # order); a tuple of repro.serving.fleet.FleetEvent, kept loosely typed
    # here so the core report does not import the controller layer.
    timeline: Tuple = ()

    def __str__(self) -> str:
        rolling = f" rolling[{self.rolling}]" if self.rolling else ""
        unknown = sum(self.unknown_categoricals.values())
        drift = f" unknown-categoricals={unknown}" if unknown else ""
        return (
            f"ServiceReport(records={self.records}, batches={self.batches}, "
            f"throughput={self.throughput:,.0f} rec/s, "
            f"p95={self.p95_latency * 1e3:.1f} ms{rolling}{drift})"
        )


class PhaseAttributor:
    """FIFO attribution of served results back to the emitting stream phases.

    The micro-batching queue preserves submission order, so every processed
    batch corresponds to a contiguous run of previously announced records.
    Callers announce each stream batch with :meth:`expect` *before*
    submitting its records and feed every :class:`BatchResult` — in
    submission order — to :meth:`attribute`; per-phase rolling monitors
    accumulate the quality breakdown.

    This is the attribution seam shared by all three execution models: the
    synchronous service calls it inline, the worker pool calls it from its
    in-order commit hook, and a sharded service keeps one attributor per
    shard and merges the per-phase reports afterwards.
    """

    def __init__(self, normal_index: int, window: int = 512) -> None:
        self.normal_index = int(normal_index)
        self.window = int(window)
        # FIFO of [phase name, records still unattributed from that phase].
        self._queue: Deque[List] = deque()
        self.monitors: Dict[str, RollingDetectionMonitor] = {}

    def expect(self, phase: str, count: int) -> None:
        """Announce that ``count`` records of ``phase`` are about to be submitted."""
        if count > 0:
            self._queue.append([phase, count])

    def attribute(self, result: BatchResult) -> None:
        """Attribute one result (in submission order) to its phases."""
        consumed = 0
        while consumed < result.size:
            phase, remaining = self._queue[0]
            take = min(remaining, result.size - consumed)
            monitor = self.monitors.setdefault(
                phase,
                RollingDetectionMonitor(
                    normal_index=self.normal_index, window=self.window
                ),
            )
            monitor.update(
                result.true_indices[consumed:consumed + take],
                result.class_indices[consumed:consumed + take],
            )
            consumed += take
            if take == remaining:
                self._queue.popleft()
            else:
                self._queue[0][1] = remaining - take

    def reports(self) -> Dict[str, DetectionReport]:
        """Per-phase detection reports (phases without traffic omitted)."""
        return {
            phase: report
            for phase, monitor in self.monitors.items()
            if (report := monitor.report()) is not None
        }


class DetectionService:
    """Streaming front-end for a fitted :class:`PelicanDetector`.

    Parameters
    ----------
    detector:
        A fitted detector; its preprocessing pipeline and network are
        wrapped, not copied.
    max_batch_size / flush_interval:
        Micro-batching policy (see :class:`MicroBatcher`).
    window:
        Rolling-monitor width in records.
    fast:
        Route forward passes through the graph-free inference path
        (``Model.predict(..., fast=True)``); on by default.
    clock:
        Injectable time source shared by the batcher and the latency
        accounting.
    """

    def __init__(
        self,
        detector: PelicanDetector,
        max_batch_size: int = 256,
        flush_interval: float = 0.05,
        window: int = 512,
        fast: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not detector.is_fitted:
            raise RuntimeError("DetectionService requires a fitted detector")
        self.fast = bool(fast)
        self.clock = clock
        # The scoring engine is one tuple so a hot-swap replaces detector and
        # pipeline in a single atomic attribute store: a concurrent score()
        # can never see the new network with the old vocabulary tables.
        self._engine: Tuple[PelicanDetector, CachedPreprocessor] = (
            detector,
            CachedPreprocessor(detector.preprocessor),
        )
        self.batcher = MicroBatcher(
            max_batch_size=max_batch_size,
            flush_interval=flush_interval,
            clock=clock,
        )
        self.monitor = RollingDetectionMonitor(
            normal_index=self.pipeline.normal_index, window=window
        )
        self.throughput = ThroughputMonitor(clock=clock)

    # ------------------------------------------------------------------ #
    @property
    def detector(self) -> PelicanDetector:
        """The currently serving detector (see :meth:`swap_detector`)."""
        return self._engine[0]

    @property
    def pipeline(self) -> CachedPreprocessor:
        """The currently serving cached preprocessor."""
        return self._engine[1]

    def swap_detector(
        self,
        detector: PelicanDetector,
        carry_unknown_counts: bool = True,
    ) -> PelicanDetector:
        """Atomically replace the serving detector; returns the retired one.

        The swap is a single attribute store, so concurrent scorers see
        either the old engine or the new one, never a mixture.  It commits
        on a *batch boundary* by construction — a batch that already read
        the engine finishes on the model it started with; the next batch
        picks up the replacement.  Callers that need stop-the-world
        equivalence (the :class:`~repro.serving.lifecycle.DriftSupervisor`)
        flush/join first so no batch is in flight and nothing is pending in
        the micro-batcher.

        Monitors, the micro-batcher and the throughput history all survive
        the swap untouched: the service keeps one continuous record of the
        traffic it served, which is what makes a hot-swapped run's confusion
        counts equal a drain-stop-restart run's record for record.

        The replacement must be fitted on the same schema with the same
        class order — otherwise the rolling monitors' integer labels would
        silently change meaning mid-stream.
        """
        if not detector.is_fitted:
            raise RuntimeError("swap_detector requires a fitted detector")
        old_detector, old_pipeline = self._engine
        new_pipeline = CachedPreprocessor(detector.preprocessor)
        if new_pipeline.class_names != old_pipeline.class_names:
            raise ValueError(
                f"challenger class order {new_pipeline.class_names} does not "
                f"match the serving order {old_pipeline.class_names}"
            )
        if detector.schema.name != old_detector.schema.name:
            raise ValueError(
                f"challenger is fitted on schema {detector.schema.name!r}, "
                f"the service is serving {old_detector.schema.name!r}"
            )
        if carry_unknown_counts:
            new_pipeline.absorb_unknown_counts(old_pipeline.unknown_categoricals)
        self._engine = (detector, new_pipeline)
        return old_detector

    # ------------------------------------------------------------------ #
    def score(self, records: TrafficRecords) -> BatchResult:
        """Run preprocessing + inference on one batch, without side effects.

        Thread-safe: touches no monitor state, so the worker pool calls it
        concurrently and commits the results through :meth:`observe`.  The
        engine (detector + pipeline) is read once, so a concurrent
        :meth:`swap_detector` takes effect only between batches.
        """
        detector, pipeline = self._engine
        started = self.clock()
        inputs = pipeline.transform_inputs(records)
        probabilities = detector.network.predict(
            inputs, batch_size=max(len(records), 1), fast=self.fast
        )
        predicted = np.argmax(probabilities, axis=-1)
        finished = self.clock()
        true_indices = pipeline.encode_labels(records)
        return BatchResult(
            size=len(records),
            latency=finished - started,
            predictions=pipeline.decode_labels(predicted),
            class_indices=predicted,
            true_indices=true_indices,
            finished=finished,
        )

    def observe(self, result: BatchResult) -> None:
        """Fold one scored batch into the rolling and throughput monitors."""
        self.monitor.update(result.true_indices, result.class_indices)
        self.throughput.update(result.size, result.latency, end_time=result.finished)

    def process(self, records: TrafficRecords) -> BatchResult:
        """Run one batch through preprocessing + inference immediately.

        Bypasses the micro-batching queue; :meth:`submit` is the queued
        entry point.
        """
        result = self.score(records)
        self.observe(result)
        return result

    def submit(self, records: TrafficRecords) -> List[BatchResult]:
        """Enqueue records; process and return whatever batches became due."""
        return [self.process(batch) for batch in self.batcher.submit(records)]

    # ------------------------------------------------------------------ #
    # Raw-event ingress (see repro.ingest).  The extractor is created
    # lazily so services that never see packets pay nothing and the
    # serving layer has no import-time dependency on the ingest package.
    @property
    def event_extractor(self):
        """The service's raw-event ingress extractor (created on first use
        via :meth:`open_event_ingress`)."""
        return getattr(self, "_event_extractor", None)

    def open_event_ingress(
        self,
        window: int = 100,
        idle_timeout: Optional[float] = None,
        derive_features: bool = False,
    ):
        """Attach (and return) a flow-feature extractor for raw packet
        events targeting this service's schema; replaces any previous one.
        See :class:`repro.ingest.FlowFeatureExtractor` for the knobs."""
        from ..ingest import FlowFeatureExtractor

        self._event_extractor = FlowFeatureExtractor(
            self.pipeline.schema,
            window=window,
            idle_timeout=idle_timeout,
            derive_features=derive_features,
        )
        return self._event_extractor

    def submit_events(self, events, final: bool = True) -> List[BatchResult]:
        """Aggregate raw packet events into feature rows and enqueue them.

        The ingress path: events flow through the service's
        :class:`~repro.ingest.FlowFeatureExtractor` (attached on first use
        with default settings; call :meth:`open_event_ingress` first to
        configure it) and the closed flows' rows go through the ordinary
        :meth:`submit` queue.  ``final=False`` keeps quiet flows open
        across calls (streaming captures); the default closes each call's
        interval completely.
        """
        extractor = self.event_extractor or self.open_event_ingress()
        records = extractor.extract(events, final=final)
        if len(records) == 0:
            return []
        return self.submit(records)

    def poll(self) -> List[BatchResult]:
        """Process the pending partial batch if it aged past the interval."""
        batch = self.batcher.poll()
        return [self.process(batch)] if batch is not None else []

    def flush(self) -> List[BatchResult]:
        """Drain and process everything still queued."""
        batch = self.batcher.flush()
        return [self.process(batch)] if batch is not None else []

    def report(self) -> ServiceReport:
        """Current rolling quality + throughput summary."""
        stats = self.throughput.snapshot()  # one lock: a consistent row
        return ServiceReport(
            batches=int(stats["batches"]),
            records=int(stats["records"]),
            throughput=stats["throughput_rps"],
            mean_latency=stats["mean_latency_s"],
            p95_latency=stats["p95_latency_s"],
            rolling=self.monitor.report(),
            unknown_categoricals=self.pipeline.unknown_categoricals,
        )

    # ------------------------------------------------------------------ #
    def run_stream(
        self,
        stream: Iterable[StreamBatch],
        max_batches: Optional[int] = None,
    ) -> ServiceReport:
        """Serve a :class:`~repro.data.generator.TrafficStream` end-to-end.

        Every stream batch goes through the micro-batching queue; a final
        flush drains the tail.  Because the queue preserves submission
        order, results can be attributed back to the emitting phase, giving
        the per-phase ACC/DR/FAR breakdown in the returned report.

        Records already queued when the stream starts belong to no phase:
        they are flushed through (scored and counted in the rolling
        monitors) before attribution begins, so the per-phase breakdown
        covers exactly the stream's records.
        """
        self.flush()
        attributor = PhaseAttributor(
            normal_index=self.pipeline.normal_index, window=self.monitor.window
        )
        served = 0
        for stream_batch in stream:
            if max_batches is not None and served >= max_batches:
                break
            attributor.expect(stream_batch.phase, len(stream_batch.records))
            for result in self.submit(stream_batch.records):
                attributor.attribute(result)
            served += 1
        for result in self.flush():
            attributor.attribute(result)

        return replace(self.report(), phase_reports=attributor.reports())

    def run_event_stream(
        self,
        events,
        extractor=None,
        max_batches: Optional[int] = None,
    ) -> ServiceReport:
        """Serve a raw packet-event stream end-to-end.

        ``events`` is an :class:`~repro.ingest.EventTrafficStream` or any
        iterable of :class:`~repro.ingest.EventBatch`.  Each event batch is
        aggregated into feature rows by ``extractor`` (default: this
        service's ingress extractor, attached on first use) and then served
        exactly like :meth:`run_stream`, including the per-phase
        attribution.  The extractor's :meth:`~repro.ingest.FlowFeatureExtractor.stats_row`
        afterwards gives the events-vs-rows and time-in-extractor
        accounting.
        """
        from ..ingest.lowering import EventTrafficStream

        if extractor is None:
            extractor = self.event_extractor or self.open_event_ingress()
        batches = (
            events.event_batches()
            if isinstance(events, EventTrafficStream)
            else iter(events)
        )

        def _aggregate() -> Iterable[StreamBatch]:
            for event_batch in batches:
                yield StreamBatch(
                    records=extractor.extract(event_batch.events, final=True),
                    phase=event_batch.phase,
                    index=event_batch.index,
                    phase_index=event_batch.phase_index,
                    mix=event_batch.mix,
                )

        return self.run_stream(_aggregate(), max_batches=max_batches)
