"""Single-archive detector checkpoints.

The paper's workflow trains a detector once and deploys it into the NIDS
(Fig. 1).  :class:`DetectorCheckpoint` is the deployable artifact that
workflow needs: **one** ``.npz`` archive bundling everything required to
reconstruct a scoring-identical detector on another process or machine —

* the architecture recipe (schema name, block count, residual family, the
  Table I-style :class:`~repro.core.config.NetworkConfig`, seed);
* the network's complete inference state: trainable weights *and*
  non-trainable buffers (batch-norm moving statistics) in
  :meth:`~repro.nn.layers.base.Layer.get_weights` /
  :meth:`~repro.nn.layers.base.Layer.get_buffers` order;
* the fitted preprocessing statistics: per-column categorical vocabularies,
  the standard-scaler mean/scale, and the class order.

``restore()`` rebuilds the detector from the recipe, loads the state and
returns a :class:`~repro.core.detector.PelicanDetector` whose
``predict(fast=True)`` outputs are bitwise-identical to the captured one.
Loading bumps the global weights epoch, so the fast path's folded
batch-norm constants are re-derived from the restored buffers instead of
being served stale.

Format: metadata is a JSON document stored as a zero-dimensional unicode
array under ``meta`` (no pickling anywhere); float arrays are stored
exactly (``float64`` npz round-trips are lossless).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from ...core.config import NetworkConfig
from ...core.detector import PelicanDetector
from ...data.schema import get_schema
from ...nn.serialization import (
    BUFFER_KEY,
    WEIGHT_KEY,
    check_array_specs,
    load_prefixed_arrays,
)

__all__ = ["DetectorCheckpoint", "CHECKPOINT_FORMAT"]

CHECKPOINT_FORMAT = "repro-detector-checkpoint/1"


@dataclass
class DetectorCheckpoint:
    """A captured, serialisable snapshot of a fitted detector.

    Use the three classmethod/method entry points::

        checkpoint = DetectorCheckpoint.capture(detector)
        path = checkpoint.save("models/pelican-v3")        # one .npz archive
        clone = DetectorCheckpoint.load(path).restore()    # scoring-identical

    Attributes
    ----------
    meta:
        JSON-able architecture + preprocessing metadata.
    weights / buffers:
        The network's parameter and buffer arrays.
    scaler_mean / scaler_scale:
        The fitted standard-scaler statistics (stored exactly).
    """

    meta: Dict[str, object]
    weights: List[np.ndarray] = field(repr=False)
    buffers: List[np.ndarray] = field(repr=False)
    scaler_mean: np.ndarray = field(repr=False)
    scaler_scale: np.ndarray = field(repr=False)

    # ------------------------------------------------------------------ #
    @classmethod
    def capture(cls, detector: PelicanDetector) -> "DetectorCheckpoint":
        """Snapshot a fitted detector (arrays are copied, nothing shared)."""
        if not detector.is_fitted:
            raise RuntimeError("only a fitted detector can be checkpointed")
        preprocessor_state = detector.preprocessor.export_state()
        meta = {
            "format": CHECKPOINT_FORMAT,
            "schema": detector.schema.name,
            "num_blocks": detector.num_blocks,
            "residual": bool(detector.residual),
            "seed": detector.seed,
            "config": asdict(detector.config),
            "classes": list(preprocessor_state["classes"]),
            "categories": preprocessor_state["categories"],
            "num_features": detector.preprocessor.num_features,
        }
        return cls(
            meta=meta,
            weights=detector.network.get_weights(),
            buffers=detector.network.get_buffers(),
            scaler_mean=np.asarray(preprocessor_state["scaler_mean"]),
            scaler_scale=np.asarray(preprocessor_state["scaler_scale"]),
        )

    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> Path:
        """Write the single-archive bundle (``.npz`` appended if missing)."""
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_suffix(".npz")
        arrays: Dict[str, np.ndarray] = {
            "meta": np.array(json.dumps(self.meta)),
            "scaler_mean": self.scaler_mean,
            "scaler_scale": self.scaler_scale,
        }
        for index, array in enumerate(self.weights):
            arrays[WEIGHT_KEY.format(index=index)] = array
        for index, array in enumerate(self.buffers):
            arrays[BUFFER_KEY.format(index=index)] = array
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez(path, **arrays)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "DetectorCheckpoint":
        """Read a bundle written by :meth:`save`."""
        path = Path(path)
        if not path.exists() and path.suffix != ".npz":
            path = path.with_suffix(".npz")
        with np.load(path) as archive:
            if "meta" not in archive.files:
                raise ValueError(
                    f"{path.name} is not a detector checkpoint (no metadata); "
                    "weight-only archives load with repro.nn.serialization"
                )
            meta = json.loads(str(archive["meta"][()]))
            if meta.get("format") != CHECKPOINT_FORMAT:
                raise ValueError(
                    f"unsupported checkpoint format {meta.get('format')!r} "
                    f"(expected {CHECKPOINT_FORMAT!r})"
                )
            scaler_mean = archive["scaler_mean"]
            scaler_scale = archive["scaler_scale"]
        return cls(
            meta=meta,
            weights=load_prefixed_arrays(path, "weight_"),
            buffers=load_prefixed_arrays(path, "buffer_"),
            scaler_mean=scaler_mean,
            scaler_scale=scaler_scale,
        )

    # ------------------------------------------------------------------ #
    def restore(self) -> PelicanDetector:
        """Reconstruct a fitted, scoring-identical detector from the bundle.

        Rebuilds the architecture from the recipe, loads the weight and
        buffer arrays (shape-validated, naming the offending array on
        mismatch), and restores the preprocessing statistics.  The returned
        detector is independent of the captured one — retraining either
        does not affect the other.
        """
        meta = self.meta
        schema = get_schema(str(meta["schema"]))
        detector = PelicanDetector(
            schema,
            num_blocks=int(meta["num_blocks"]),
            residual=bool(meta["residual"]),
            config=NetworkConfig(**meta["config"]),
            seed=meta["seed"],
        )
        detector.preprocessor.restore_state(
            {
                "schema": meta["schema"],
                "categories": meta["categories"],
                "classes": meta["classes"],
                "scaler_mean": self.scaler_mean,
                "scaler_scale": self.scaler_scale,
            }
        )
        network = detector.build_untrained(
            num_classes=len(meta["classes"]),
            num_features=int(meta["num_features"]),
        )
        source = "the checkpoint bundle"
        check_array_specs("weight", network.weight_specs(), self.weights, source)
        check_array_specs("buffer", network.buffer_specs(), self.buffers, source)
        network.set_weights(self.weights)
        network.set_buffers(self.buffers)
        detector.network = network
        return detector
