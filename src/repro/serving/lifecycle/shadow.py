"""Shadow deployment: trial a challenger detector on live traffic.

A challenger fresh out of retraining should not take over the request path
on faith.  :class:`ShadowDeployment` runs it *in shadow*: the challenger
scores exactly the records the primary serves — through its own
micro-batcher configured identically, so the micro-batch boundaries match
— into its **own** monitors, while the primary's results remain the only
ones anything downstream sees.  The primary can be any execution model:

* a synchronous :class:`~repro.serving.service.DetectionService`;
* a :class:`~repro.serving.workers.WorkerPool` (challenger scores inline on
  the driving thread while the primary fans out to its workers);
* a :class:`~repro.serving.sharding.ShardedDetectionService` (the
  challenger shadows the *whole* fleet's traffic — which requires a
  single-schema stream, i.e. replica or class-family sharding).

The deployment's :meth:`~ShadowDeployment.run_stream` tees the stream:
each :class:`~repro.data.generator.StreamBatch` is first fed to the
challenger (with its own per-phase attribution) and then yielded onward to
the primary's own ``run_stream``, so both sides observe the identical
record sequence and the primary's ordering guarantees are untouched.  The
result is a :class:`ShadowReport` carrying both service reports plus a
:class:`ShadowComparison` — per-phase and overall DR/FAR/ACC deltas and a
promotion verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, Optional, Union

from ...core.detector import PelicanDetector
from ...data.generator import StreamBatch
from ...metrics.ids_metrics import DetectionReport
from ..service import DetectionService, PhaseAttributor, ServiceReport
from ..sharding import ShardedDetectionService
from ..workers import WorkerPool

__all__ = ["ShadowDeployment", "ShadowComparison", "ShadowReport"]

#: Execution models a shadow can attach to.
Primary = Union[DetectionService, WorkerPool, ShardedDetectionService]


@dataclass(frozen=True)
class ShadowComparison:
    """Side-by-side quality deltas (challenger minus primary).

    Positive ``dr_delta`` / ``acc_delta`` and negative ``far_delta`` favour
    the challenger.  ``phase_deltas`` maps each phase both sides served to
    ``{"dr": ..., "far": ..., "acc": ...}`` delta rows.
    """

    records: int
    dr_delta: float
    far_delta: float
    acc_delta: float
    phase_deltas: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def challenger_wins(
        self,
        min_dr_gain: float = 0.0,
        max_far_regression: float = 0.0,
    ) -> bool:
        """Promotion verdict: DR improved enough, FAR did not regress too far."""
        return (
            self.dr_delta >= min_dr_gain
            and self.far_delta <= max_far_regression
        )

    def __str__(self) -> str:
        return (
            f"ShadowComparison(records={self.records}, "
            f"ΔDR={self.dr_delta:+.4f}, ΔFAR={self.far_delta:+.4f}, "
            f"ΔACC={self.acc_delta:+.4f})"
        )


@dataclass(frozen=True)
class ShadowReport:
    """Outcome of one shadowed stream: both reports plus the comparison."""

    primary: ServiceReport
    challenger: ServiceReport
    comparison: ShadowComparison


def compare_reports(
    primary: ServiceReport, challenger: ServiceReport
) -> ShadowComparison:
    """Build the delta row from two service reports over the same records."""

    def deltas(a: Optional[DetectionReport], b: Optional[DetectionReport]):
        if a is None or b is None:
            return 0.0, 0.0, 0.0
        return (
            b.detection_rate - a.detection_rate,
            b.false_alarm_rate - a.false_alarm_rate,
            b.accuracy - a.accuracy,
        )

    dr_delta, far_delta, acc_delta = deltas(primary.rolling, challenger.rolling)
    phase_deltas: Dict[str, Dict[str, float]] = {}
    for phase, primary_phase in primary.phase_reports.items():
        challenger_phase = challenger.phase_reports.get(phase)
        if challenger_phase is None:
            continue
        dr, far, acc = deltas(primary_phase, challenger_phase)
        phase_deltas[phase] = {"dr": dr, "far": far, "acc": acc}
    return ShadowComparison(
        records=challenger.records,
        dr_delta=dr_delta,
        far_delta=far_delta,
        acc_delta=acc_delta,
        phase_deltas=phase_deltas,
    )


class ShadowDeployment:
    """Score a challenger on the primary's traffic without serving it.

    Parameters
    ----------
    primary:
        The serving execution model (service, worker pool or sharded fleet).
    challenger:
        A fitted detector to trial, or a ready-made
        :class:`DetectionService` for it.  When a detector is given, the
        shadow service mirrors the primary's micro-batching policy and
        monitor window so the two sides batch and window identically.
    """

    def __init__(
        self,
        primary: Primary,
        challenger: Union[PelicanDetector, DetectionService],
    ) -> None:
        self.primary = primary
        template = self._template_service(primary)
        if isinstance(challenger, DetectionService):
            self.challenger_service = challenger
        else:
            self.challenger_service = DetectionService(
                challenger,
                max_batch_size=template.batcher.max_batch_size,
                flush_interval=template.batcher.flush_interval,
                window=template.monitor.window,
                fast=template.fast,
                clock=template.clock,
            )
        if (
            self.challenger_service.pipeline.class_names
            != template.pipeline.class_names
        ):
            raise ValueError(
                "challenger class order does not match the primary's; a "
                "shadow comparison over mismatched labels is meaningless"
            )

    @staticmethod
    def _template_service(primary: Primary) -> DetectionService:
        if isinstance(primary, DetectionService):
            return primary
        if isinstance(primary, WorkerPool):
            return primary.service
        if isinstance(primary, ShardedDetectionService):
            return primary.shards[0]
        raise TypeError(
            f"unsupported primary {type(primary).__name__}; expected "
            "DetectionService, WorkerPool or ShardedDetectionService"
        )

    # ------------------------------------------------------------------ #
    def run_stream(
        self,
        stream: Iterable[StreamBatch],
        max_batches: Optional[int] = None,
        **primary_kwargs,
    ) -> ShadowReport:
        """Serve the stream on the primary while the challenger shadows it.

        Extra keyword arguments go to the primary's ``run_stream`` (e.g.
        ``num_workers=...`` for a sharded primary).  The challenger scores
        each stream batch synchronously on the driving thread *before* the
        batch is handed to the primary, so both sides see the identical
        record sequence; its report carries its own per-phase attribution.
        """
        self.challenger_service.flush()  # pre-stream records belong to no phase
        attributor = PhaseAttributor(
            normal_index=self.challenger_service.pipeline.normal_index,
            window=self.challenger_service.monitor.window,
        )

        def tee() -> Iterator[StreamBatch]:
            served = 0
            for stream_batch in stream:
                if max_batches is not None and served >= max_batches:
                    break
                attributor.expect(stream_batch.phase, len(stream_batch.records))
                for result in self.challenger_service.submit(stream_batch.records):
                    attributor.attribute(result)
                yield stream_batch
                served += 1

        primary_report = self.primary.run_stream(tee(), **primary_kwargs)
        for result in self.challenger_service.flush():
            attributor.attribute(result)
        challenger_report = replace(
            self.challenger_service.report(), phase_reports=attributor.reports()
        )
        return ShadowReport(
            primary=primary_report,
            challenger=challenger_report,
            comparison=compare_reports(primary_report, challenger_report),
        )
