"""Drift-triggered retraining and zero-drop hot-swap.

The serving tier measures its own degradation — rolling DR/FAR windows and
per-column unknown-categorical drift counters — but through PR 3 it could
only *report* it.  :class:`DriftSupervisor` closes the loop:

1. **Watch** — after every stream batch the supervisor evaluates a
   :class:`DriftPolicy` against the service's rolling report and the
   vocabulary-drift counters.
2. **Remember** — a bounded :class:`ReplayBuffer` keeps the most recent
   labelled batches; when drift trips the policy, the buffer snapshot is
   the challenger's training set (it contains the drifted distribution the
   primary was trained without).
3. **Retrain** — a trainer callable produces the challenger, on a
   background thread by default so serving continues at full rate, or
   inline (``background=False``) for deterministic tests.
4. **Trial** — optionally the challenger shadows the next
   ``shadow_batches`` stream batches into its own monitor before a
   promotion decision is taken.
5. **Swap** — promotion is an atomic hot-swap committed on a batch
   boundary: the execution model is flushed (every dispatched batch scored
   and committed, nothing pending in any micro-batcher), then
   :meth:`~repro.serving.service.DetectionService.swap_detector` replaces
   the engine in one attribute store.  No record is dropped or scored
   twice, and because predictions are per-record deterministic, the run's
   confusion counts are bitwise-equal to a drain-stop-restart deployment
   of the same two models at the same boundary.

The supervisor drives any of the four execution models through a small
adapter: a synchronous :class:`~repro.serving.service.DetectionService`, a
:class:`~repro.serving.workers.WorkerPool` or
:class:`~repro.serving.procpool.ProcessWorkerPool` (results commit in
submission order, so attribution is unchanged; a process pool's swap also
re-ships the challenger's checkpoint to its children) or a
:class:`~repro.serving.sharding.ShardedDetectionService` (per-shard
attribution mirrors its own ``run_stream``; a swap replaces every shard's
engine — replica fleets share one detector, so one challenger serves all).

:meth:`DriftSupervisor.run_stream` returns a :class:`LifecycleOutcome`:
the final :class:`~repro.serving.service.ServiceReport` plus the event
timeline (drift detected → retrain complete → promoted), the per-batch
rolling-DR curve and recovery-time accessors — the numbers
``BENCH_scenarios.json`` records for the ``retrain-recovery`` preset.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, List, Optional, Union

from ...core.detector import PelicanDetector
from ...data.dataset import TrafficRecords
from ...data.generator import StreamBatch
from ...metrics.ids_metrics import DetectionReport
from ..service import BatchResult, DetectionService, PhaseAttributor, ServiceReport
from ..sharding import ShardedDetectionService
from ..workers import WorkerPool

__all__ = [
    "DriftPolicy",
    "ReplayBuffer",
    "LifecycleEvent",
    "LifecycleOutcome",
    "DriftSupervisor",
    "default_retrainer",
]

#: Trainer signature: (replay records, currently serving detector) -> challenger.
Trainer = Callable[[TrafficRecords, PelicanDetector], PelicanDetector]


def default_retrainer(
    records: TrafficRecords, detector: PelicanDetector
) -> PelicanDetector:
    """Clone the serving architecture and fit it on the replay buffer."""
    challenger = detector.clone_architecture()
    challenger.fit(records)
    return challenger


@dataclass(frozen=True)
class DriftPolicy:
    """When is the serving detector considered degraded?

    Thresholds are evaluated after every stream batch; any one tripping
    triggers a retrain.  ``None`` disables a dimension.

    Parameters
    ----------
    far_ceiling:
        Trigger when the rolling false-alarm rate exceeds this.
    dr_floor:
        Trigger when the rolling detection rate falls below this (only
        evaluated while the window contains attack traffic — DR over zero
        attacks is vacuously 0 and must not trip the policy).
    unknown_ceiling:
        Trigger when this many serve-time categorical values outside the
        training vocabulary have accumulated since the last swap (or the
        start of the run).
    min_records:
        Do not evaluate the quality thresholds before the rolling window
        holds at least this many records (fresh windows are noisy).
    cooldown_records:
        After a swap (or the start of the run), serve at least this many
        records before the policy may trigger again.
    """

    far_ceiling: Optional[float] = None
    dr_floor: Optional[float] = None
    unknown_ceiling: Optional[int] = None
    min_records: int = 256
    cooldown_records: int = 0

    def __post_init__(self) -> None:
        for name in ("far_ceiling", "dr_floor"):
            value = getattr(self, name)
            if value is not None and not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1] when given")
        if self.unknown_ceiling is not None and self.unknown_ceiling < 0:
            raise ValueError("unknown_ceiling must be non-negative when given")
        if self.min_records < 0 or self.cooldown_records < 0:
            raise ValueError("min_records and cooldown_records must be non-negative")
        if (
            self.far_ceiling is None
            and self.dr_floor is None
            and self.unknown_ceiling is None
        ):
            raise ValueError("a DriftPolicy needs at least one enabled threshold")

    def check(
        self, rolling: Optional[DetectionReport], unknown_since_mark: int
    ) -> Optional[str]:
        """The trigger reason, or ``None`` while everything is healthy."""
        if (
            self.unknown_ceiling is not None
            and unknown_since_mark >= self.unknown_ceiling
        ):
            return (
                f"unknown-categoricals {unknown_since_mark} >= "
                f"{self.unknown_ceiling}"
            )
        if rolling is None or rolling.total < self.min_records:
            return None
        if (
            self.far_ceiling is not None
            and rolling.false_alarm_rate > self.far_ceiling
        ):
            return (
                f"rolling FAR {rolling.false_alarm_rate:.4f} > "
                f"{self.far_ceiling:.4f}"
            )
        if (
            self.dr_floor is not None
            and (rolling.tp + rolling.fn) > 0
            and rolling.detection_rate < self.dr_floor
        ):
            return (
                f"rolling DR {rolling.detection_rate:.4f} < {self.dr_floor:.4f}"
            )
        return None


class ReplayBuffer:
    """Bounded FIFO of recent labelled record batches.

    Whole batches are evicted oldest-first once the record budget is
    exceeded, so the buffer always holds the *most recent* traffic — which
    is exactly the distribution a drift-triggered retrain must learn.
    """

    def __init__(self, max_records: int = 4096) -> None:
        if max_records <= 0:
            raise ValueError("max_records must be positive")
        self.max_records = int(max_records)
        # Deque, not list: oldest-first eviction is a popleft on the hot
        # append path, where list.pop(0) would shift every element.
        self._batches: Deque[TrafficRecords] = deque()
        self._records = 0

    def __len__(self) -> int:
        return self._records

    def append(self, records: TrafficRecords) -> None:
        if len(records) == 0:
            return
        self._batches.append(records)
        self._records += len(records)
        while self._records > self.max_records and len(self._batches) > 1:
            evicted = self._batches.popleft()
            self._records -= len(evicted)

    def snapshot(self) -> TrafficRecords:
        """The buffered records as one batch (oldest first)."""
        if not self._batches:
            raise RuntimeError("the replay buffer is empty")
        if len(self._batches) == 1:
            return self._batches[0]
        return TrafficRecords.concatenate(list(self._batches))


@dataclass(frozen=True)
class LifecycleEvent:
    """One timeline entry of a supervised run."""

    kind: str               # drift-detected | retrain-complete | retrain-failed
    #                       # | promoted | trial-rejected | promotion-delegated
    batch_index: int        # stream batch after which the event fired
    records_seen: int       # records served when it fired
    time: float             # service-clock reading
    detail: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        detail = ", ".join(f"{k}={v}" for k, v in self.detail.items())
        return (
            f"[batch {self.batch_index:>4d} | {self.records_seen:>6d} rec] "
            f"{self.kind}" + (f" ({detail})" if detail else "")
        )


@dataclass(frozen=True)
class LifecycleOutcome:
    """What a supervised stream run produced."""

    report: ServiceReport
    events: List[LifecycleEvent]
    dr_curve: List[Optional[float]]   # rolling DR after each stream batch
    far_curve: List[Optional[float]]  # rolling FAR after each stream batch

    def _first(self, kind: str) -> Optional[LifecycleEvent]:
        return next((e for e in self.events if e.kind == kind), None)

    @property
    def triggered(self) -> bool:
        return self._first("drift-detected") is not None

    @property
    def promoted(self) -> bool:
        return self._first("promoted") is not None

    @property
    def recovery_batches(self) -> Optional[int]:
        """Stream batches from drift detection to promotion (None if no swap)."""
        detected, promoted = self._first("drift-detected"), self._first("promoted")
        if detected is None or promoted is None:
            return None
        return promoted.batch_index - detected.batch_index

    @property
    def recovery_seconds(self) -> Optional[float]:
        """Service-clock seconds from drift detection to promotion."""
        detected, promoted = self._first("drift-detected"), self._first("promoted")
        if detected is None or promoted is None:
            return None
        return promoted.time - detected.time


# ---------------------------------------------------------------------- #
# Execution-model adapters
# ---------------------------------------------------------------------- #
#: Per-phase attribution window for supervised runs.  The service's own
#: rolling window stays small (it is the drift signal), but the outcome's
#: per-phase rows are a baseline artifact and must be exact totals — a
#: windowed phase row would silently truncate phases longer than the
#: rolling window and skew ``BENCH_scenarios.json`` comparisons.
_PHASE_WINDOW = 1 << 20


class _ServiceAdapter:
    """Synchronous :class:`DetectionService` under supervision."""

    def __init__(self, service: DetectionService) -> None:
        self.service = service
        self.attributor = PhaseAttributor(
            normal_index=service.pipeline.normal_index,
            window=max(service.monitor.window, _PHASE_WINDOW),
        )

    def open(self) -> None:
        self.service.flush()  # pre-stream records belong to no phase

    def submit(self, stream_batch: StreamBatch) -> List[BatchResult]:
        self.attributor.expect(stream_batch.phase, len(stream_batch.records))
        results = self.service.submit(stream_batch.records)
        for result in results:
            self.attributor.attribute(result)
        return results

    def flush(self) -> List[BatchResult]:
        """Drain every pending and in-flight batch — the swap boundary."""
        results = self.service.flush()
        for result in results:
            self.attributor.attribute(result)
        return results

    def close(self) -> None:
        pass

    def swap(self, challenger: PelicanDetector) -> None:
        self.service.swap_detector(challenger)

    def rolling_report(self) -> Optional[DetectionReport]:
        return self.service.monitor.report()

    def unknown_total(self) -> int:
        return sum(self.service.pipeline.unknown_categoricals.values())

    def records_seen(self) -> int:
        return self.service.monitor.seen

    def clock(self) -> float:
        return self.service.clock()

    def serving_detector(self) -> PelicanDetector:
        return self.service.detector

    def final_report(self) -> ServiceReport:
        return replace(
            self.service.report(), phase_reports=self.attributor.reports()
        )


class _PoolAdapter(_ServiceAdapter):
    """Worker-pool execution under supervision.

    Results are collected through the pool's submit/flush returns, which
    deliver them in submission order (the reorder buffer's guarantee), so
    the single-attributor bookkeeping of the synchronous adapter carries
    over unchanged — results merely arrive a few batches late.
    """

    def __init__(self, pool: WorkerPool) -> None:
        super().__init__(pool.service)
        if pool._result_callback is not None:
            # A standing callback would swallow the committed results the
            # adapter attributes phases from.
            raise ValueError(
                "DriftSupervisor cannot supervise a WorkerPool constructed "
                "with a result_callback"
            )
        self.pool = pool
        self._owns_lifecycle = False

    def open(self) -> None:
        if not self.pool.running:
            self.pool.start()
            self._owns_lifecycle = True
        self.pool.flush()  # drain pre-stream work before attribution starts

    def submit(self, stream_batch: StreamBatch) -> List[BatchResult]:
        self.attributor.expect(stream_batch.phase, len(stream_batch.records))
        results = self.pool.submit(stream_batch.records)
        for result in results:
            self.attributor.attribute(result)
        return results

    def flush(self) -> List[BatchResult]:
        results = self.pool.flush()
        for result in results:
            self.attributor.attribute(result)
        return results

    def close(self) -> None:
        if self._owns_lifecycle:
            self.pool.close()
            self._owns_lifecycle = False

    def swap(self, challenger: PelicanDetector) -> None:
        # Through the pool, not the bare service: a ProcessWorkerPool must
        # also re-ship the challenger's checkpoint to its child processes.
        self.pool.swap_detector(challenger)


class _ShardedAdapter:
    """Sharded execution under supervision (inline shard scoring).

    Mirrors :meth:`ShardedDetectionService.run_stream`: one attributor per
    shard, router-partitioned submissions, merged per-phase reports.  A
    swap replaces *every* shard's engine with the challenger — the replica
    fleet the supervisor targets shares one detector across shards.
    """

    def __init__(self, sharded: ShardedDetectionService) -> None:
        self.sharded = sharded
        self.attributors = [
            PhaseAttributor(
                normal_index=shard.pipeline.normal_index,
                window=max(shard.monitor.window, _PHASE_WINDOW),
            )
            for shard in sharded.shards
        ]

    def open(self) -> None:
        self.sharded.flush()

    def submit(self, stream_batch: StreamBatch) -> List[BatchResult]:
        results: List[BatchResult] = []
        for index, indices in enumerate(
            self.sharded.router.route(stream_batch.records)
        ):
            if len(indices) == 0:
                continue
            part = stream_batch.records.subset(indices)
            self.attributors[index].expect(stream_batch.phase, len(part))
            for result in self.sharded.shards[index].submit(part):
                self.attributors[index].attribute(result)
                results.append(result)
        return results

    def flush(self) -> List[BatchResult]:
        results: List[BatchResult] = []
        for index, shard in enumerate(self.sharded.shards):
            for result in shard.flush():
                self.attributors[index].attribute(result)
                results.append(result)
        return results

    def close(self) -> None:
        pass

    def swap(self, challenger: PelicanDetector) -> None:
        for shard in self.sharded.shards:
            shard.swap_detector(challenger)

    def rolling_report(self) -> Optional[DetectionReport]:
        parts = [
            report
            for shard in self.sharded.shards
            if (report := shard.monitor.report()) is not None
        ]
        return DetectionReport.merge(parts) if parts else None

    def unknown_total(self) -> int:
        return sum(
            count
            for shard in self.sharded.shards
            for count in shard.pipeline.unknown_categoricals.values()
        )

    def records_seen(self) -> int:
        return sum(shard.monitor.seen for shard in self.sharded.shards)

    def clock(self) -> float:
        return self.sharded.shards[0].clock()

    def serving_detector(self) -> PelicanDetector:
        return self.sharded.shards[0].detector

    def final_report(self) -> ServiceReport:
        merged: Dict[str, DetectionReport] = {}
        for attributor in self.attributors:
            for phase, report in attributor.reports().items():
                existing = merged.get(phase)
                merged[phase] = (
                    report
                    if existing is None
                    else DetectionReport.merge([existing, report])
                )
        return self.sharded._merge(phase_reports=merged)


# ---------------------------------------------------------------------- #
Supervised = Union[DetectionService, WorkerPool, ShardedDetectionService]


class DriftSupervisor:
    """Close the measure → retrain → swap loop over a served stream.

    Parameters
    ----------
    target:
        The execution model to supervise: a synchronous service, a worker
        pool or a (replica-)sharded service.
    policy:
        The :class:`DriftPolicy` thresholds.
    trainer:
        ``(replay records, serving detector) -> challenger`` callable;
        defaults to :func:`default_retrainer` (clone the architecture, fit
        on the replay buffer).
    replay_records:
        Capacity of the :class:`ReplayBuffer`.
    shadow_batches:
        Stream batches the challenger shadows before the promotion
        decision; ``0`` promotes at the first boundary after the retrain
        completes.
    promote_if:
        Optional ``(challenger trial report, primary rolling report) ->
        bool`` gate evaluated after the trial; defaults to unconditional
        promotion.  Only consulted when ``shadow_batches > 0``.
    background:
        Retrain on a daemon thread (serving continues meanwhile).  With
        ``False`` the retrain runs inline at the trigger boundary —
        deterministic, used by tests and benchmarks.
    max_retrains:
        Upper bound on retrain cycles in one run (a runaway-threshold
        backstop).
    promotion_hook:
        Optional ``(challenger) -> None`` callable that takes over the
        promotion: instead of flushing and swapping the supervised target
        itself, the supervisor hands the challenger off (logging a
        ``promotion-delegated`` event) and leaves the deployment to the
        hook.  This is how a fleet delegates its rollouts: the hook is
        typically :meth:`repro.serving.fleet.FleetController.request_rollout`,
        which stages the challenger through a canary shard instead of
        swapping every shard at once.
    """

    def __init__(
        self,
        target: Supervised,
        policy: DriftPolicy,
        trainer: Optional[Trainer] = None,
        replay_records: int = 4096,
        shadow_batches: int = 0,
        promote_if: Optional[
            Callable[[DetectionReport, Optional[DetectionReport]], bool]
        ] = None,
        background: bool = True,
        max_retrains: int = 4,
        promotion_hook: Optional[Callable[[PelicanDetector], None]] = None,
    ) -> None:
        if shadow_batches < 0:
            raise ValueError("shadow_batches must be non-negative")
        if max_retrains <= 0:
            raise ValueError("max_retrains must be positive")
        self._adapter(target)  # fail fast on unsupported/mis-configured targets
        self.target = target
        self.policy = policy
        self.trainer = trainer or default_retrainer
        self.replay = ReplayBuffer(max_records=replay_records)
        self.shadow_batches = int(shadow_batches)
        self.promote_if = promote_if
        self.background = bool(background)
        self.max_retrains = int(max_retrains)
        self.promotion_hook = promotion_hook

    # ------------------------------------------------------------------ #
    @staticmethod
    def _adapter(target: Supervised):
        if isinstance(target, WorkerPool):
            return _PoolAdapter(target)
        if isinstance(target, ShardedDetectionService):
            return _ShardedAdapter(target)
        if isinstance(target, DetectionService):
            return _ServiceAdapter(target)
        raise TypeError(
            f"unsupported target {type(target).__name__}; expected "
            "DetectionService, WorkerPool or ShardedDetectionService"
        )

    # ------------------------------------------------------------------ #
    def run_stream(
        self,
        stream,
        max_batches: Optional[int] = None,
    ) -> LifecycleOutcome:
        """Serve the stream under supervision; see the module docstring.

        The returned outcome's report carries the usual rolling, per-phase
        and throughput numbers — one continuous history across any number
        of swaps — plus the event timeline and per-batch DR/FAR curves.
        """
        adapter = self._adapter(self.target)
        adapter.open()
        events: List[LifecycleEvent] = []
        dr_curve: List[Optional[float]] = []
        far_curve: List[Optional[float]] = []

        retrain_thread: Optional[threading.Thread] = None
        retrain_box: Dict[str, object] = {}
        challenger: Optional[PelicanDetector] = None
        shadow_service: Optional[DetectionService] = None
        shadow_remaining = 0
        retrains = 0
        unknown_mark = adapter.unknown_total()
        cooldown_mark = adapter.records_seen()

        def log(kind: str, batch_index: int, **detail) -> None:
            events.append(
                LifecycleEvent(
                    kind=kind,
                    batch_index=batch_index,
                    records_seen=adapter.records_seen(),
                    time=adapter.clock(),
                    detail=detail,
                )
            )

        def start_retrain(batch_index: int, reason: str) -> None:
            nonlocal retrain_thread, retrains
            retrains += 1
            log("drift-detected", batch_index, reason=reason)
            replay = self.replay.snapshot()
            serving = adapter.serving_detector()
            if self.background:
                def worker() -> None:
                    try:
                        retrain_box["challenger"] = self.trainer(replay, serving)
                    except BaseException as exc:  # surfaced at the boundary
                        retrain_box["error"] = exc
                retrain_thread = threading.Thread(
                    target=worker, name="lifecycle-retrain", daemon=True
                )
                retrain_thread.start()
            else:
                try:
                    retrain_box["challenger"] = self.trainer(replay, serving)
                except Exception as exc:
                    retrain_box["error"] = exc

        def collect_retrain(batch_index: int, wait: bool) -> None:
            """Move a finished retrain's result into the challenger slot."""
            nonlocal retrain_thread, challenger, shadow_service, shadow_remaining
            if retrain_thread is not None:
                if wait:
                    retrain_thread.join()
                if retrain_thread.is_alive():
                    return
                retrain_thread = None
            if "error" in retrain_box:
                error = retrain_box.pop("error")
                # Structured type/message fields, not one repr blob: the
                # timeline is the only place a failed retrain surfaces
                # (serving deliberately continues on the primary), so the
                # event must be machine-readable for operators and tests.
                log(
                    "retrain-failed",
                    batch_index,
                    error_type=type(error).__name__,
                    error_message=str(error),
                )
                return
            if "challenger" not in retrain_box:
                return
            challenger = retrain_box.pop("challenger")
            log("retrain-complete", batch_index, replay_records=len(self.replay))
            if self.shadow_batches > 0:
                shadow_service = DetectionService(
                    challenger,
                    max_batch_size=1 << 30,  # score each trial batch whole
                    flush_interval=0.0,
                    window=1 << 20,
                )
                shadow_remaining = self.shadow_batches

        def promote(batch_index: int) -> None:
            nonlocal challenger, shadow_service, unknown_mark, cooldown_mark
            trial_report = None
            if shadow_service is not None:
                trial_report = shadow_service.monitor.report()
                if self.promote_if is not None and not self.promote_if(
                    trial_report, adapter.rolling_report()
                ):
                    log(
                        "trial-rejected",
                        batch_index,
                        trial=str(trial_report) if trial_report else "no traffic",
                    )
                    challenger, shadow_service = None, None
                    cooldown_mark = adapter.records_seen()
                    return
            if self.promotion_hook is not None:
                # Fleet-wide promotion is delegated: the hook (a fleet
                # controller's request_rollout) owns the deployment — canary
                # shadow, staged swaps, rollback — so the supervisor only
                # hands over the challenger and stands down until cooldown.
                handed_off = challenger
                log(
                    "promotion-delegated",
                    batch_index,
                    challenger_schema=handed_off.schema.name,
                )
                challenger, shadow_service = None, None
                unknown_mark = adapter.unknown_total()
                cooldown_mark = adapter.records_seen()
                self.promotion_hook(handed_off)
                return
            # The swap boundary: drain everything dispatched or pending so
            # the challenger's first batch is exactly the next submission —
            # stop-the-world-equivalent, with zero records dropped.
            adapter.flush()
            adapter.swap(challenger)
            detail: Dict[str, object] = {}
            if trial_report is not None:
                detail["trial"] = str(trial_report)
            log("promoted", batch_index, **detail)
            challenger, shadow_service = None, None
            unknown_mark = adapter.unknown_total()
            cooldown_mark = adapter.records_seen()

        served = 0
        try:
            for stream_batch in stream:
                if max_batches is not None and served >= max_batches:
                    break
                adapter.submit(stream_batch)
                self.replay.append(stream_batch.records)
                if shadow_service is not None and shadow_remaining > 0:
                    shadow_service.process(stream_batch.records)
                    shadow_remaining -= 1

                rolling = adapter.rolling_report()
                dr_curve.append(rolling.detection_rate if rolling else None)
                far_curve.append(rolling.false_alarm_rate if rolling else None)

                collect_retrain(served, wait=False)
                if challenger is not None and shadow_remaining == 0:
                    promote(served)
                elif (
                    challenger is None
                    and retrain_thread is None
                    and "challenger" not in retrain_box
                    and retrains < self.max_retrains
                    and adapter.records_seen() - cooldown_mark
                    >= self.policy.cooldown_records
                ):
                    reason = self.policy.check(
                        rolling, adapter.unknown_total() - unknown_mark
                    )
                    if reason is not None:
                        start_retrain(served, reason)
                served += 1

            adapter.flush()
            # A retrain still running when the stream ends is joined so its
            # outcome (success or failure) lands in the timeline, but the
            # challenger is not promoted — there is no next batch boundary.
            collect_retrain(served, wait=True)
        finally:
            adapter.close()

        return LifecycleOutcome(
            report=adapter.final_report(),
            events=events,
            dr_curve=dr_curve,
            far_curve=far_curve,
        )
