"""``repro.serving.lifecycle`` — the detector lifecycle subsystem.

The serving tier (PR 1–3) measures its own degradation; this package acts
on it.  Three pieces, composable with every execution model:

* :class:`DetectorCheckpoint` (:mod:`~repro.serving.lifecycle.checkpoint`)
  — a single-archive bundle of architecture config, network weights *and*
  buffers, and the fitted preprocessing statistics; ``restore()`` rebuilds
  a scoring-identical detector (``predict(fast=True)`` bitwise-equal).
* :class:`ShadowDeployment` (:mod:`~repro.serving.lifecycle.shadow`) — a
  challenger scores the same record stream as the primary (synchronous,
  worker-pool or sharded) into its own monitors; the result is a
  side-by-side :class:`ShadowComparison`.
* :class:`DriftSupervisor` (:mod:`~repro.serving.lifecycle.supervisor`) —
  watches a :class:`DriftPolicy` over the rolling DR/FAR window and the
  unknown-categorical drift counters, keeps a bounded :class:`ReplayBuffer`
  of recent labelled batches, retrains a challenger (in the background or
  inline) and promotes it via an atomic hot-swap committed on a batch
  boundary — zero records dropped or duplicated, confusion counts
  bitwise-equal to a drain-stop-restart deployment.

Format, semantics and guarantees: ``docs/SERVING.md``.
"""

from .checkpoint import CHECKPOINT_FORMAT, DetectorCheckpoint
from .shadow import ShadowComparison, ShadowDeployment, ShadowReport
from .supervisor import (
    DriftPolicy,
    DriftSupervisor,
    LifecycleEvent,
    LifecycleOutcome,
    ReplayBuffer,
    default_retrainer,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "DetectorCheckpoint",
    "ShadowDeployment",
    "ShadowComparison",
    "ShadowReport",
    "DriftPolicy",
    "DriftSupervisor",
    "LifecycleEvent",
    "LifecycleOutcome",
    "ReplayBuffer",
    "default_retrainer",
]
