"""Worker-pool execution for the detection service.

:class:`WorkerPool` turns a synchronous
:class:`~repro.serving.service.DetectionService` into a concurrent one:

* micro-batches released by the service's :class:`~repro.serving.batching.MicroBatcher`
  are **scored on a thread pool** (``DetectionService.score`` is pure, so
  any number of workers can run it at once — numpy releases the GIL inside
  the heavy kernels);
* the **age trigger fires on a background timer** that polls the batcher on
  a schedule, so a lull in traffic can no longer strand a partial batch
  until the next ``submit``/``poll`` call;
* monitor updates stay **deterministic**: scored batches pass through a
  reorder buffer and are committed — rolling quality, throughput, phase
  attribution — strictly in submission order.

Ordering guarantee: every report produced through a worker pool is
record-for-record identical to the report of a synchronous run over the
same stream; only the wall-clock numbers differ.  The throughput headline
reflects the concurrency because :class:`~repro.serving.monitor.ThroughputMonitor`
divides by the overlap-merged busy time, under which simultaneous batches
share wall-clock seconds instead of stacking their latencies.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional

from ..data.dataset import TrafficRecords
from ..data.generator import StreamBatch
from .service import BatchResult, DetectionService, PhaseAttributor, ServiceReport

__all__ = ["PoolStats", "WorkerPool"]


@dataclass(frozen=True)
class PoolStats:
    """Live utilization snapshot of a worker pool (one lock-consistent read).

    The fleet controller's autoscaler polls this every control tick; the
    fields are chosen so a scaling decision needs no further pool access:

    * ``workers`` — current worker count (the autoscaler's actuator state);
    * ``queue_depth`` — records buffered in the micro-batcher, not yet
      released as a batch;
    * ``in_flight`` — batches dispatched to workers but not yet committed
      through the reorder buffer;
    * ``busy_fraction`` — in-flight batches per worker, clipped to 1.0: the
      pool's instantaneous saturation (1.0 = every worker has work).
    """

    workers: int
    queue_depth: int
    in_flight: int
    busy_fraction: float

    @property
    def backlog_per_worker(self) -> float:
        """In-flight batches plus queued records' worth, per worker."""
        return (self.in_flight + (1.0 if self.queue_depth else 0.0)) / max(
            self.workers, 1
        )


class WorkerPool:
    """Concurrent scoring mode for a :class:`DetectionService`.

    Use as a context manager (or call :meth:`start`/:meth:`close`)::

        with WorkerPool(service, num_workers=4) as pool:
            report = pool.run_stream(stream)

    Parameters
    ----------
    service:
        The wrapped synchronous service.  Its batcher, monitors and
        preprocessing pipeline are shared; the pool only changes *where*
        scoring runs and *when* the age trigger fires.
    num_workers:
        Number of scoring threads.
    timer_interval:
        Period of the background age-trigger timer.  Defaults to half the
        batcher's flush interval (at least 1 ms); pass ``0`` to disable the
        timer, in which case age triggers fire only inside
        :meth:`submit`/:meth:`poll`, like the synchronous service.
    result_callback:
        Optional hook invoked with every committed :class:`BatchResult`,
        in submission order.  When set, results are delivered to the
        callback instead of accumulating for :meth:`collect`.
    """

    def __init__(
        self,
        service: DetectionService,
        num_workers: int = 4,
        timer_interval: Optional[float] = None,
        result_callback: Optional[Callable[[BatchResult], None]] = None,
    ) -> None:
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.service = service
        self.num_workers = int(num_workers)
        if timer_interval is None:
            timer_interval = max(service.batcher.flush_interval / 2.0, 0.001)
        if timer_interval < 0:
            raise ValueError("timer_interval must be non-negative")
        self.timer_interval = float(timer_interval)
        # _submit_lock serialises batcher access and sequence assignment, so
        # sequence order == FIFO drain order.  _commit_cond guards the
        # reorder buffer; workers commit under it and waiters block on it.
        self._submit_lock = threading.Lock()
        self._commit_cond = threading.Condition()
        self._next_sequence = 0
        self._next_commit = 0
        self._out_of_order: Dict[int, Optional[BatchResult]] = {}
        self._committed: List[BatchResult] = []
        self._result_callback = result_callback
        self._errors: List[BaseException] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        # Executors replaced by resize(): their already-queued batches still
        # score and commit through the reorder buffer; close() joins them.
        self._retired_executors: List[ThreadPoolExecutor] = []
        self._timer: Optional[threading.Thread] = None
        self._shutdown = threading.Event()
        self._streaming = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def running(self) -> bool:
        return self._executor is not None

    def _start_timer(self) -> None:
        if self.timer_interval > 0:
            self._timer = threading.Thread(
                target=self._timer_loop, name="serving-age-timer", daemon=True
            )
            self._timer.start()

    def _stop_timer(self) -> None:
        if self._timer is not None:
            self._timer.join()
            self._timer = None

    def start(self) -> "WorkerPool":
        """Start the scoring threads and the age-trigger timer (idempotent)."""
        if self._executor is None:
            self._shutdown.clear()
            self._executor = ThreadPoolExecutor(
                max_workers=self.num_workers, thread_name_prefix="serving-worker"
            )
            self._start_timer()
        return self

    def close(self) -> None:
        """Stop the timer, wait for in-flight batches and release the threads.

        Records still buffered below the batch-size trigger stay queued (use
        :meth:`flush` first to force them through).  Detaching the executor
        happens under the submit lock, so a concurrent submitter either
        dispatches before the shutdown (and is waited for) or is refused
        before it drains anything from the batcher.
        """
        self._shutdown.set()
        self._stop_timer()
        with self._submit_lock:
            executor, self._executor = self._executor, None
            retired, self._retired_executors = self._retired_executors, []
        for old in retired:
            old.shutdown(wait=True)
        if executor is not None:
            executor.shutdown(wait=True)
        self._raise_pending_error()

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _timer_loop(self) -> None:
        while not self._shutdown.wait(self.timer_interval):
            self._dispatch_due()

    def _dispatch_due(self) -> None:
        with self._submit_lock:
            if not self.running:  # timer racing a close(): nothing to do
                return
            batch = self.service.batcher.poll()
            if batch is not None:
                self._dispatch(batch)

    def _require_running(self) -> None:
        """Refuse before touching the batcher: draining records and then
        failing to dispatch them would lose traffic silently.  Callers hold
        ``_submit_lock``, so the check cannot race a concurrent close()."""
        if not self.running:
            raise RuntimeError(
                f"{type(self).__name__} is not running; call start() or use "
                "it as a context manager"
            )
        if self._streaming:
            # An external batch committing mid-stream would consume phase
            # records from the attribution FIFO and shift every later
            # record's attribution.
            raise RuntimeError(
                "WorkerPool is serving a stream; submit/poll/flush are "
                "unavailable until run_stream returns"
            )

    def _dispatch(self, records: TrafficRecords) -> None:
        # Caller holds _submit_lock and has checked _require_running().
        sequence = self._next_sequence
        self._next_sequence += 1
        self._executor.submit(self._score_and_commit, sequence, records)

    def _score_and_commit(self, sequence: int, records: TrafficRecords) -> None:
        result: Optional[BatchResult]
        try:
            result = self.service.score(records)
        except BaseException as exc:  # surfaced on join/flush/close
            result = None
            self._record_error(exc)
        self._commit(sequence, result)

    def _record_error(self, error: BaseException) -> None:
        """Stash an error for re-raise on the next join/flush/close."""
        with self._commit_cond:
            self._errors.append(error)

    def _commit(self, sequence: int, result: Optional[BatchResult]) -> None:
        """Feed one scored batch into the reorder buffer; commit what's due.

        This is the ordering seam shared by every concurrent backend: the
        thread pool calls it from its scoring threads, the process pool from
        its result-collector thread.  Results enter in any order; monitor
        updates and callbacks leave strictly in submission order.  A ``None``
        result (the batch errored) is skipped but still advances the commit
        cursor, so one failure cannot stall every later batch.
        """
        with self._commit_cond:
            self._out_of_order[sequence] = result
            while self._next_commit in self._out_of_order:
                ready = self._out_of_order.pop(self._next_commit)
                self._next_commit += 1
                if ready is not None:
                    try:
                        self.service.observe(ready)
                        if self._result_callback is not None:
                            self._result_callback(ready)
                        else:
                            self._committed.append(ready)
                    except BaseException as exc:  # keep the buffer draining
                        self._errors.append(exc)
            self._commit_cond.notify_all()

    # ------------------------------------------------------------------ #
    # Autoscaling seams
    # ------------------------------------------------------------------ #
    def resize(self, num_workers: int) -> None:
        """Change the worker count without disturbing in-flight batches.

        Batches already dispatched keep running on the previous executor
        (retired with ``shutdown(wait=False)`` and joined at close); batches
        dispatched after the call land on the replacement.  Because every
        result still commits through the same reorder buffer in submission
        order, a resize is invisible to the reports — only wall-clock
        concurrency changes.  This is the actuator the fleet controller's
        autoscaler drives; it works mid-stream (the controller resizes pools
        it is feeding via :meth:`submit`).
        """
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        num_workers = int(num_workers)
        with self._submit_lock:
            if not self.running:
                raise RuntimeError(
                    f"{type(self).__name__} is not running; call start() "
                    "before resize()"
                )
            if num_workers == self.num_workers:
                return
            old = self._executor
            self._executor = ThreadPoolExecutor(
                max_workers=num_workers, thread_name_prefix="serving-worker"
            )
            self.num_workers = num_workers
            old.shutdown(wait=False)
            self._retired_executors.append(old)

    def stats(self) -> PoolStats:
        """One consistent :class:`PoolStats` snapshot (the autoscaler input)."""
        with self._submit_lock:
            workers = self.num_workers
            queue_depth = self.service.batcher.pending_count
            dispatched = self._next_sequence
        with self._commit_cond:
            in_flight = max(dispatched - self._next_commit, 0)
        return PoolStats(
            workers=workers,
            queue_depth=queue_depth,
            in_flight=in_flight,
            busy_fraction=min(in_flight, workers) / workers,
        )

    # ------------------------------------------------------------------ #
    # Public API (mirrors the synchronous service)
    # ------------------------------------------------------------------ #
    def submit(self, records: TrafficRecords) -> List[BatchResult]:
        """Enqueue records, dispatching every due micro-batch to the workers.

        Returns the results committed since the last call — which, because
        scoring is asynchronous, are generally *older* batches, not the ones
        just submitted.
        """
        with self._submit_lock:
            self._require_running()
            for batch in self.service.batcher.submit(records):
                self._dispatch(batch)
        return self.collect()

    def poll(self) -> List[BatchResult]:
        """Dispatch the pending partial batch if overdue; collect results."""
        with self._submit_lock:
            self._require_running()
            batch = self.service.batcher.poll()
            if batch is not None:
                self._dispatch(batch)
        return self.collect()

    def collect(self) -> List[BatchResult]:
        """Drain the committed results accumulated so far (non-blocking)."""
        with self._commit_cond:
            committed, self._committed = self._committed, []
        return committed

    def join(self, timeout: Optional[float] = None) -> None:
        """Block until every batch dispatched so far has been committed."""
        with self._submit_lock:
            target = self._next_sequence
        with self._commit_cond:
            if not self._commit_cond.wait_for(
                lambda: self._next_commit >= target, timeout
            ):
                raise TimeoutError(
                    f"worker pool did not drain within {timeout} s "
                    f"({target - self._next_commit} batches outstanding)"
                )
        self._raise_pending_error()

    def flush(self) -> List[BatchResult]:
        """Force the queued tail through, wait for everything, collect."""
        with self._submit_lock:
            self._require_running()
            batch = self.service.batcher.flush()
            if batch is not None:
                self._dispatch(batch)
        self.join()
        return self.collect()

    def report(self) -> ServiceReport:
        """The wrapped service's current report."""
        return self.service.report()

    def swap_detector(self, detector, carry_unknown_counts: bool = True):
        """Hot-swap the wrapped service's engine; returns the retired detector.

        Drains every dispatched batch first (:meth:`join`), so no batch
        scored by the old engine commits after the swap — the same boundary
        :class:`~repro.serving.lifecycle.DriftSupervisor` flushes to.  This
        is the swap seam shared by all pool backends; the process pool
        overrides it to also re-ship the new checkpoint to its children.
        """
        self.join()
        return self.service.swap_detector(
            detector, carry_unknown_counts=carry_unknown_counts
        )

    def _raise_pending_error(self) -> None:
        with self._commit_cond:
            if not self._errors:
                return
            errors, self._errors = self._errors, []
        error = errors[0]
        if len(errors) > 1:
            error.add_note(
                f"{len(errors) - 1} additional worker error(s) occurred: "
                + "; ".join(repr(extra) for extra in errors[1:3])
            )
        raise error

    # ------------------------------------------------------------------ #
    def run_stream(
        self,
        stream: Iterable[StreamBatch],
        max_batches: Optional[int] = None,
    ) -> ServiceReport:
        """Serve a :class:`~repro.data.generator.TrafficStream` concurrently.

        Identical semantics to :meth:`DetectionService.run_stream` — the
        in-order commit makes the rolling and per-phase reports match a
        synchronous run record for record — at worker-pool wall-clock speed.
        Starts and stops the pool automatically when not already running.
        The stream owns the pool for the duration: work queued beforehand
        is drained to the previous sink first, and concurrent
        ``submit``/``poll``/``flush`` calls are rejected until the run
        returns (they would corrupt the phase attribution).
        """
        attributor = PhaseAttributor(
            normal_index=self.service.pipeline.normal_index,
            window=self.service.monitor.window,
        )
        owns_lifecycle = not self.running
        if owns_lifecycle:
            self.start()
        # Take stream ownership and drain pre-stream work in one lock scope:
        # records queued before the stream (on this pool or directly on the
        # service) belong to no phase, and once _streaming is set no foreign
        # submit can slip another batch in.  The drained batches commit
        # through the *previous* sink — the standing callback, or the
        # collect() buffer — before the attribution sink is installed.
        with self._submit_lock:
            self._streaming = True
            tail = self.service.batcher.flush()
            if tail is not None:
                self._dispatch(tail)
        self.join()

        previous_callback = self._result_callback

        def stream_sink(result: BatchResult) -> None:
            # Attribute, then keep honouring the user's standing callback.
            attributor.attribute(result)
            if previous_callback is not None:
                previous_callback(result)

        with self._commit_cond:
            self._result_callback = stream_sink
        try:
            served = 0
            for stream_batch in stream:
                if max_batches is not None and served >= max_batches:
                    break
                with self._submit_lock:
                    # expect() before dispatch, under the same lock, so the
                    # attribution FIFO is always ahead of the commits.
                    attributor.expect(
                        stream_batch.phase, len(stream_batch.records)
                    )
                    for batch in self.service.batcher.submit(stream_batch.records):
                        self._dispatch(batch)
                served += 1
            # Flush the tail without collect(): results accumulated for the
            # caller (e.g. re-stashed pre-stream work) must stay collectable.
            with self._submit_lock:
                tail = self.service.batcher.flush()
                if tail is not None:
                    self._dispatch(tail)
            self.join()
        finally:
            # Mirror order: retire the sink before re-admitting submitters.
            with self._commit_cond:
                self._result_callback = previous_callback
            with self._submit_lock:
                self._streaming = False
            if owns_lifecycle:
                self.close()
        return replace(self.report(), phase_reports=attributor.reports())
