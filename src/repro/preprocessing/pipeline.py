"""End-to-end preprocessing pipeline (Section V-A of the paper).

The paper's three steps are reproduced exactly:

1. **Numerical conversion** — categorical columns are one-hot encoded (the
   Pandas ``get_dummies`` equivalent), using the schema-declared vocabularies
   so the encoded width is 121 for NSL-KDD and 196 for UNSW-NB15.
2. **Normalization** — numeric columns are standardized to zero mean and unit
   standard deviation (statistics fitted on the training portion only).
3. **Training/testing dataset creation** — k-fold cross-validation over the
   preprocessed records.

The networks consume inputs shaped ``(batch, 1, features)``; targets are
one-hot encoded class vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..data.dataset import TrafficRecords
from ..data.schema import DatasetSchema
from .encoding import LabelEncoder, OneHotEncoder, one_hot
from .kfold import StratifiedKFold, train_test_indices
from .scaling import StandardScaler

__all__ = ["PreparedData", "PreparedSplit", "IDSPreprocessor"]


@dataclass
class PreparedData:
    """Model-ready arrays for one portion (train or test) of a dataset.

    Attributes
    ----------
    inputs:
        Float array shaped ``(n, 1, features)`` — the paper's network input.
    targets:
        One-hot class matrix shaped ``(n, n_classes)``.
    class_indices:
        Integer class ids (aligned with ``class_names``).
    binary_labels:
        1 for attacks, 0 for normal traffic (used by the DR/FAR metrics).
    class_names:
        Class-name order matching the one-hot columns.
    normal_index:
        Position of the normal class inside ``class_names``.
    """

    inputs: np.ndarray
    targets: np.ndarray
    class_indices: np.ndarray
    binary_labels: np.ndarray
    class_names: List[str]
    normal_index: int

    def __len__(self) -> int:
        return len(self.inputs)

    @property
    def flat_inputs(self) -> np.ndarray:
        """Inputs flattened to ``(n, features)`` for the classical baselines."""
        return self.inputs.reshape(len(self.inputs), -1)

    @property
    def num_features(self) -> int:
        return self.inputs.shape[-1]

    @property
    def num_classes(self) -> int:
        return self.targets.shape[-1]


@dataclass
class PreparedSplit:
    """A train/test pair produced by the preprocessor."""

    train: PreparedData
    test: PreparedData

    @property
    def num_features(self) -> int:
        return self.train.num_features

    @property
    def num_classes(self) -> int:
        return self.train.num_classes


class IDSPreprocessor:
    """Turn :class:`TrafficRecords` into model-ready tensors.

    Parameters
    ----------
    schema:
        Dataset schema; supplies the declared categorical vocabularies and the
        class order (so the one-hot layout is identical across folds).
    """

    def __init__(self, schema: DatasetSchema) -> None:
        self.schema = schema
        self.encoder = OneHotEncoder(
            categories={
                feature.name: feature.values
                for feature in schema.categorical_features
            }
        )
        self.label_encoder = LabelEncoder(classes=list(schema.classes))
        self.scaler = StandardScaler()
        self._fitted = False

    # ------------------------------------------------------------------ #
    # Feature assembly
    # ------------------------------------------------------------------ #
    def _raw_matrix(self, records: TrafficRecords) -> np.ndarray:
        """Numeric columns followed by the one-hot categorical block."""
        encoded = self.encoder.transform(records.categorical)
        return np.concatenate([records.numeric, encoded], axis=1)

    def fit(self, records: TrafficRecords) -> "IDSPreprocessor":
        """Fit the encoder vocabulary and the scaler statistics."""
        self.encoder.fit(records.categorical)
        self.scaler.fit(self._raw_matrix(records))
        self._fitted = True
        return self

    def transform(self, records: TrafficRecords) -> PreparedData:
        """Transform records into :class:`PreparedData` (requires ``fit``)."""
        if not self._fitted:
            raise RuntimeError("IDSPreprocessor must be fitted before transform")
        features = self.scaler.transform(self._raw_matrix(records))
        inputs = features[:, np.newaxis, :]
        class_indices = self.label_encoder.transform(records.labels)
        targets = one_hot(class_indices, self.label_encoder.num_classes)
        normal_index = self.label_encoder.classes_.index(self.schema.normal_class)
        return PreparedData(
            inputs=inputs,
            targets=targets,
            class_indices=class_indices,
            binary_labels=(class_indices != normal_index).astype(np.int64),
            class_names=list(self.label_encoder.classes_),
            normal_index=normal_index,
        )

    def fit_transform(self, records: TrafficRecords) -> PreparedData:
        return self.fit(records).transform(records)

    # ------------------------------------------------------------------ #
    # Fitted-state persistence (used by the serving checkpoint bundle)
    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def export_state(self) -> Dict[str, object]:
        """The fitted statistics as plain data (vocabularies, scaler, classes).

        The scaler arrays come back as ``float64`` numpy arrays so a
        checkpoint can store them losslessly; everything else is JSON-able.
        Restoring with :meth:`restore_state` reproduces transforms bitwise.
        """
        if not self._fitted:
            raise RuntimeError("IDSPreprocessor must be fitted before export_state")
        return {
            "schema": self.schema.name,
            "categories": {
                name: list(values)
                for name, values in self.encoder.categories_.items()
            },
            "classes": list(self.label_encoder.classes_),
            "scaler_mean": np.asarray(self.scaler.mean_, dtype=np.float64),
            "scaler_scale": np.asarray(self.scaler.scale_, dtype=np.float64),
        }

    def restore_state(self, state: Dict[str, object]) -> "IDSPreprocessor":
        """Restore the fitted statistics exported by :meth:`export_state`.

        Validates the state against this preprocessor's schema (name, class
        order, encoded width) before mutating anything, so a failed restore
        leaves the pipeline untouched.
        """
        if state.get("schema") != self.schema.name:
            raise ValueError(
                f"preprocessor state is for schema {state.get('schema')!r}, "
                f"this pipeline uses {self.schema.name!r}"
            )
        classes = [str(name) for name in state["classes"]]
        if classes != list(self.label_encoder.classes_):
            raise ValueError(
                f"class order mismatch: state has {classes}, schema declares "
                f"{list(self.label_encoder.classes_)}"
            )
        categories = {
            str(name): [str(value) for value in values]
            for name, values in state["categories"].items()
        }
        expected_columns = [f.name for f in self.schema.categorical_features]
        if list(categories) != expected_columns:
            raise ValueError(
                f"categorical columns mismatch: state has {list(categories)}, "
                f"schema declares {expected_columns}"
            )
        mean = np.asarray(state["scaler_mean"], dtype=np.float64)
        scale = np.asarray(state["scaler_scale"], dtype=np.float64)
        width = len(self.schema.numeric_features) + sum(
            len(values) for values in categories.values()
        )
        if mean.shape != (width,) or scale.shape != (width,):
            raise ValueError(
                f"scaler statistics shaped {mean.shape}/{scale.shape} do not "
                f"match the encoded width {width}"
            )
        self.encoder.categories_ = categories
        self.encoder._fitted = True
        self.scaler.mean_ = mean.copy()
        self.scaler.scale_ = scale.copy()
        self._fitted = True
        return self

    @property
    def num_features(self) -> int:
        """Width of the encoded feature vector (121 / 196 for the paper's datasets)."""
        return len(self.schema.numeric_features) + sum(
            feature.cardinality for feature in self.schema.categorical_features
        )

    # ------------------------------------------------------------------ #
    # Split construction
    # ------------------------------------------------------------------ #
    def holdout_split(
        self, records: TrafficRecords, test_fraction: float = 0.2, seed: int = 0
    ) -> PreparedSplit:
        """Single stratified train/test split (fit on train, transform both)."""
        train_idx, test_idx = train_test_indices(
            len(records), test_fraction=test_fraction, seed=seed, labels=records.labels
        )
        train_records = records.subset(train_idx)
        test_records = records.subset(test_idx)
        self.fit(train_records)
        return PreparedSplit(
            train=self.transform(train_records), test=self.transform(test_records)
        )

    def kfold_splits(
        self, records: TrafficRecords, n_splits: int = 10, seed: int = 0
    ) -> Iterator[PreparedSplit]:
        """Yield the paper's k-fold cross-validation splits (default k=10).

        The scaler is refitted on each fold's training portion so no test
        statistics leak into training, and stratification keeps the rare
        attack classes present in every fold.
        """
        splitter = StratifiedKFold(n_splits=n_splits, seed=seed)
        for train_idx, test_idx in splitter.split(records.labels):
            train_records = records.subset(train_idx)
            test_records = records.subset(test_idx)
            self.fit(train_records)
            yield PreparedSplit(
                train=self.transform(train_records), test=self.transform(test_records)
            )
