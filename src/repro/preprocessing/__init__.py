"""``repro.preprocessing`` — the paper's Section V-A data pipeline.

One-hot encoding of categorical columns ("numerical conversion"),
standardization ("normalization") and k-fold split creation, composed by
:class:`IDSPreprocessor`.
"""

from .encoding import LabelEncoder, OneHotEncoder, one_hot
from .kfold import KFold, StratifiedKFold, train_test_indices
from .pipeline import IDSPreprocessor, PreparedData, PreparedSplit
from .scaling import MinMaxScaler, StandardScaler

__all__ = [
    "OneHotEncoder",
    "LabelEncoder",
    "one_hot",
    "StandardScaler",
    "MinMaxScaler",
    "KFold",
    "StratifiedKFold",
    "train_test_indices",
    "IDSPreprocessor",
    "PreparedData",
    "PreparedSplit",
]
