"""Feature scaling: the paper's "Step 2, Normalization" (zero mean, unit variance)."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["StandardScaler", "MinMaxScaler"]


class StandardScaler:
    """Standardize columns to zero mean and unit standard deviation.

    Constant columns (zero variance) are left centred but unscaled, matching
    scikit-learn's behaviour and avoiding division by zero for features such
    as ``num_outbound_cmds`` that are constant in NSL-KDD.
    """

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("StandardScaler expects a 2-D (samples x features) array")
        self.mean_ = features.mean(axis=0)
        scale = features.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler must be fitted before transform")
        features = np.asarray(features, dtype=np.float64)
        if features.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"expected {self.mean_.shape[0]} features, got {features.shape[1]}"
            )
        return (features - self.mean_) / self.scale_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)

    def inverse_transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler must be fitted before inverse_transform")
        return np.asarray(features, dtype=np.float64) * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale columns linearly to ``[minimum, maximum]`` (default ``[0, 1]``)."""

    def __init__(self, feature_range: tuple = (0.0, 1.0)) -> None:
        low, high = feature_range
        if high <= low:
            raise ValueError("feature_range must be an increasing pair")
        self.feature_range = (float(low), float(high))
        self.data_min_: Optional[np.ndarray] = None
        self.data_max_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "MinMaxScaler":
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("MinMaxScaler expects a 2-D (samples x features) array")
        self.data_min_ = features.min(axis=0)
        self.data_max_ = features.max(axis=0)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.data_min_ is None or self.data_max_ is None:
            raise RuntimeError("MinMaxScaler must be fitted before transform")
        features = np.asarray(features, dtype=np.float64)
        span = self.data_max_ - self.data_min_
        span[span == 0.0] = 1.0
        low, high = self.feature_range
        unit = (features - self.data_min_) / span
        return unit * (high - low) + low

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)
