"""Categorical encoding: the reproduction of the paper's "Step 1, Numerical
Conversion" (Pandas ``get_dummies``) plus a label encoder for the class column.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["OneHotEncoder", "LabelEncoder", "one_hot"]


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode an integer vector into a ``(n, num_classes)`` float array."""
    indices = np.asarray(indices, dtype=np.int64).reshape(-1)
    if indices.size and (indices.min() < 0 or indices.max() >= num_classes):
        raise ValueError(
            f"indices must be in [0, {num_classes}), got range "
            f"[{indices.min()}, {indices.max()}]"
        )
    encoded = np.zeros((len(indices), num_classes))
    encoded[np.arange(len(indices)), indices] = 1.0
    return encoded


class OneHotEncoder:
    """One-hot (dummy) encoding of string-valued categorical columns.

    Equivalent to ``pandas.get_dummies`` for the paper's use case, with one
    important difference: the category vocabulary can be *declared* up front
    (from the dataset schema) so that the encoded width is stable regardless
    of which values happen to appear in a particular sample or fold.

    Parameters
    ----------
    categories:
        Optional mapping ``column name -> ordered sequence of values``.  Any
        column not listed has its vocabulary learned from the data in ``fit``.
    handle_unknown:
        ``"ignore"`` encodes unseen values as all-zeros; ``"error"`` raises.
    """

    def __init__(
        self,
        categories: Optional[Dict[str, Sequence[str]]] = None,
        handle_unknown: str = "ignore",
    ) -> None:
        if handle_unknown not in ("ignore", "error"):
            raise ValueError("handle_unknown must be 'ignore' or 'error'")
        self.declared_categories = {
            name: list(values) for name, values in (categories or {}).items()
        }
        self.handle_unknown = handle_unknown
        self.categories_: Dict[str, List[str]] = {}
        self._fitted = False

    def fit(self, columns: Dict[str, np.ndarray]) -> "OneHotEncoder":
        """Learn (or adopt the declared) vocabulary for every column."""
        self.categories_ = {}
        for name, values in columns.items():
            if name in self.declared_categories:
                self.categories_[name] = list(self.declared_categories[name])
            else:
                self.categories_[name] = sorted({str(v) for v in np.asarray(values)})
        self._fitted = True
        return self

    def transform(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        """Encode the columns into a single ``(n, total_width)`` float matrix."""
        if not self._fitted:
            raise RuntimeError("OneHotEncoder must be fitted before transform")
        missing = set(self.categories_) - set(columns)
        if missing:
            raise ValueError(f"missing categorical columns: {sorted(missing)}")

        blocks: List[np.ndarray] = []
        for name in self.categories_:
            vocabulary = self.categories_[name]
            index = {value: position for position, value in enumerate(vocabulary)}
            values = np.asarray(columns[name])
            block = np.zeros((len(values), len(vocabulary)))
            for row, value in enumerate(values):
                position = index.get(str(value))
                if position is None:
                    if self.handle_unknown == "error":
                        raise ValueError(
                            f"unknown category {value!r} in column {name!r}"
                        )
                    continue
                block[row, position] = 1.0
            blocks.append(block)
        if not blocks:
            n_rows = len(next(iter(columns.values()))) if columns else 0
            return np.zeros((n_rows, 0))
        return np.concatenate(blocks, axis=1)

    def fit_transform(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        return self.fit(columns).transform(columns)

    @property
    def feature_names(self) -> List[str]:
        """Names of the encoded columns in output order (``column=value``)."""
        if not self._fitted:
            raise RuntimeError("OneHotEncoder must be fitted first")
        names = []
        for column, vocabulary in self.categories_.items():
            names.extend(f"{column}={value}" for value in vocabulary)
        return names

    @property
    def encoded_width(self) -> int:
        """Total number of encoded columns."""
        if not self._fitted:
            raise RuntimeError("OneHotEncoder must be fitted first")
        return sum(len(v) for v in self.categories_.values())


class LabelEncoder:
    """Map string class labels to contiguous integer ids (and back)."""

    def __init__(self, classes: Optional[Sequence[str]] = None) -> None:
        self.classes_: List[str] = list(classes) if classes is not None else []
        self._fitted = classes is not None

    def fit(self, labels: Iterable[str]) -> "LabelEncoder":
        self.classes_ = sorted({str(label) for label in labels})
        self._fitted = True
        return self

    def transform(self, labels: Iterable[str]) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("LabelEncoder must be fitted before transform")
        index = {name: position for position, name in enumerate(self.classes_)}
        try:
            return np.array([index[str(label)] for label in labels], dtype=np.int64)
        except KeyError as exc:
            raise ValueError(f"unknown label {exc.args[0]!r}") from exc

    def fit_transform(self, labels: Iterable[str]) -> np.ndarray:
        return self.fit(labels).transform(labels)

    def inverse_transform(self, indices: Iterable[int]) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("LabelEncoder must be fitted before inverse_transform")
        indices = np.asarray(list(indices), dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= len(self.classes_)):
            raise ValueError("index out of range for the fitted classes")
        return np.array([self.classes_[i] for i in indices], dtype=object)

    @property
    def num_classes(self) -> int:
        return len(self.classes_)
