"""Cross-validation splitters: the paper's "Step 3, Training/Testing Dataset
Creation" uses 10-fold cross-validation; the stratified variant keeps the rare
attack classes (U2R, Worms) represented in every fold.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["KFold", "StratifiedKFold", "train_test_indices"]


class KFold:
    """Plain k-fold splitter over sample indices.

    Parameters
    ----------
    n_splits:
        Number of folds (the paper uses ``k=10``).
    shuffle:
        Whether to permute the indices before splitting.
    seed:
        Seed for the shuffle permutation.
    """

    def __init__(self, n_splits: int = 10, shuffle: bool = True, seed: int = 0) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = int(n_splits)
        self.shuffle = shuffle
        self.seed = seed

    def split(self, n_samples: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` pairs."""
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            np.random.default_rng(self.seed).shuffle(indices)
        folds = np.array_split(indices, self.n_splits)
        for position in range(self.n_splits):
            test = folds[position]
            train = np.concatenate(
                [folds[i] for i in range(self.n_splits) if i != position]
            )
            yield train, test


class StratifiedKFold:
    """K-fold splitter that preserves per-class proportions in every fold."""

    def __init__(self, n_splits: int = 10, shuffle: bool = True, seed: int = 0) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = int(n_splits)
        self.shuffle = shuffle
        self.seed = seed

    def split(self, labels: np.ndarray) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` pairs stratified by ``labels``."""
        labels = np.asarray(labels)
        n_samples = len(labels)
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        rng = np.random.default_rng(self.seed)

        # Assign each class's samples round-robin to folds so that every fold
        # receives as equal a share as possible (rare classes may be missing
        # from some test folds when they have fewer samples than folds).
        fold_assignment = np.empty(n_samples, dtype=np.int64)
        for class_value in np.unique(labels):
            class_indices = np.flatnonzero(labels == class_value)
            if self.shuffle:
                rng.shuffle(class_indices)
            fold_ids = np.arange(len(class_indices)) % self.n_splits
            fold_assignment[class_indices] = fold_ids

        for position in range(self.n_splits):
            test = np.flatnonzero(fold_assignment == position)
            train = np.flatnonzero(fold_assignment != position)
            if self.shuffle:
                rng.shuffle(test)
                rng.shuffle(train)
            yield train, test


def train_test_indices(
    n_samples: int, test_fraction: float = 0.2, seed: int = 0,
    labels: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Single random (optionally stratified) train/test split of indices."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    if labels is None:
        order = rng.permutation(n_samples)
        n_test = max(1, int(round(n_samples * test_fraction)))
        return order[n_test:], order[:n_test]

    labels = np.asarray(labels)
    if len(labels) != n_samples:
        raise ValueError("labels length must equal n_samples")
    train_parts: List[np.ndarray] = []
    test_parts: List[np.ndarray] = []
    for class_value in np.unique(labels):
        class_indices = np.flatnonzero(labels == class_value)
        rng.shuffle(class_indices)
        n_test = max(1, int(round(len(class_indices) * test_fraction)))
        test_parts.append(class_indices[:n_test])
        train_parts.append(class_indices[n_test:])
    train = np.concatenate(train_parts)
    test = np.concatenate(test_parts)
    rng.shuffle(train)
    rng.shuffle(test)
    return train, test
