"""``repro.metrics`` — the paper's evaluation metrics (ACC, DR, FAR) and helpers."""

from .confusion import binary_confusion_counts, confusion_matrix
from .ids_metrics import (
    DetectionReport,
    accuracy,
    binarize_predictions,
    detection_rate,
    evaluate_detection,
    f1_score,
    false_alarm_rate,
    per_class_report,
    precision,
)

__all__ = [
    "confusion_matrix",
    "binary_confusion_counts",
    "DetectionReport",
    "accuracy",
    "detection_rate",
    "false_alarm_rate",
    "precision",
    "f1_score",
    "binarize_predictions",
    "evaluate_detection",
    "per_class_report",
]
