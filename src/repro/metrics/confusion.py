"""Confusion-matrix utilities."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["confusion_matrix", "binary_confusion_counts"]


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: Optional[int] = None
) -> np.ndarray:
    """Return the ``(num_classes, num_classes)`` confusion matrix.

    Rows index the true class, columns the predicted class.
    """
    y_true = np.asarray(y_true, dtype=np.int64).reshape(-1)
    y_pred = np.asarray(y_pred, dtype=np.int64).reshape(-1)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"y_true and y_pred lengths differ: {len(y_true)} vs {len(y_pred)}"
        )
    if num_classes is None:
        num_classes = int(max(y_true.max(initial=-1), y_pred.max(initial=-1)) + 1)
    if y_true.size and (y_true.min() < 0 or y_pred.min() < 0):
        raise ValueError("class indices must be non-negative")
    if y_true.size and (y_true.max() >= num_classes or y_pred.max() >= num_classes):
        raise ValueError("class index exceeds num_classes")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def binary_confusion_counts(y_true: np.ndarray, y_pred: np.ndarray) -> dict:
    """TP/TN/FP/FN counts for binary labels where 1 = attack, 0 = normal.

    Follows the paper's Section V-B convention: TP counts attacks flagged as
    attacks, FP counts normal records flagged as attacks.
    """
    y_true = np.asarray(y_true, dtype=np.int64).reshape(-1)
    y_pred = np.asarray(y_pred, dtype=np.int64).reshape(-1)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"y_true and y_pred lengths differ: {len(y_true)} vs {len(y_pred)}"
        )
    invalid = set(np.unique(np.concatenate([y_true, y_pred]))) - {0, 1}
    if invalid:
        raise ValueError(f"binary labels must be 0/1, found {sorted(invalid)}")
    return {
        "tp": int(np.sum((y_true == 1) & (y_pred == 1))),
        "tn": int(np.sum((y_true == 0) & (y_pred == 0))),
        "fp": int(np.sum((y_true == 0) & (y_pred == 1))),
        "fn": int(np.sum((y_true == 1) & (y_pred == 0))),
    }
