"""Intrusion-detection metrics from Section V-B of the paper.

The paper evaluates every model with three quantities computed from the
attack-vs-normal binarisation of the multi-class predictions::

    ACC = (TP + TN) / (TP + TN + FP + FN)      (validation accuracy)
    DR  = TP / (TP + FN)                        (detection rate / recall)
    FAR = FP / (FP + TN)                        (false-alarm rate / fall-out)

where TP counts attacks classified as *any* attack class and FP counts normal
records classified as an attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from .confusion import binary_confusion_counts, confusion_matrix

__all__ = [
    "DetectionReport",
    "accuracy",
    "detection_rate",
    "false_alarm_rate",
    "precision",
    "f1_score",
    "binarize_predictions",
    "evaluate_detection",
    "per_class_report",
]


def _safe_divide(numerator: float, denominator: float) -> float:
    return float(numerator) / float(denominator) if denominator else 0.0


def accuracy(counts: Dict[str, int]) -> float:
    """(TP + TN) / total."""
    total = counts["tp"] + counts["tn"] + counts["fp"] + counts["fn"]
    return _safe_divide(counts["tp"] + counts["tn"], total)


def detection_rate(counts: Dict[str, int]) -> float:
    """TP / (TP + FN) — the fraction of attacks that are caught."""
    return _safe_divide(counts["tp"], counts["tp"] + counts["fn"])


def false_alarm_rate(counts: Dict[str, int]) -> float:
    """FP / (FP + TN) — the fraction of normal traffic flagged as attack."""
    return _safe_divide(counts["fp"], counts["fp"] + counts["tn"])


def precision(counts: Dict[str, int]) -> float:
    """TP / (TP + FP)."""
    return _safe_divide(counts["tp"], counts["tp"] + counts["fp"])


def f1_score(counts: Dict[str, int]) -> float:
    """Harmonic mean of precision and detection rate."""
    p = precision(counts)
    r = detection_rate(counts)
    return _safe_divide(2.0 * p * r, p + r)


@dataclass(frozen=True)
class DetectionReport:
    """Summary of a detector's performance on one evaluation set.

    ``accuracy``, ``detection_rate`` and ``false_alarm_rate`` correspond to
    the paper's ACC, DR and FAR columns; the raw counts allow the Table II
    style TP/FP reporting.
    """

    tp: int
    tn: int
    fp: int
    fn: int
    accuracy: float
    detection_rate: float
    false_alarm_rate: float
    precision: float
    f1: float

    @property
    def total(self) -> int:
        return self.tp + self.tn + self.fp + self.fn

    def as_dict(self) -> Dict[str, float]:
        return {
            "tp": self.tp,
            "tn": self.tn,
            "fp": self.fp,
            "fn": self.fn,
            "accuracy": self.accuracy,
            "detection_rate": self.detection_rate,
            "false_alarm_rate": self.false_alarm_rate,
            "precision": self.precision,
            "f1": self.f1,
        }

    def __str__(self) -> str:
        return (
            f"DR={self.detection_rate:.4f} ACC={self.accuracy:.4f} "
            f"FAR={self.false_alarm_rate:.4f} (TP={self.tp}, FP={self.fp})"
        )

    @staticmethod
    def merge(reports: Sequence["DetectionReport"]) -> "DetectionReport":
        """Aggregate reports by summing their confusion counts (k-fold totals)."""
        if not reports:
            raise ValueError("cannot merge an empty list of reports")
        counts = {
            "tp": sum(r.tp for r in reports),
            "tn": sum(r.tn for r in reports),
            "fp": sum(r.fp for r in reports),
            "fn": sum(r.fn for r in reports),
        }
        return _report_from_counts(counts)


def _report_from_counts(counts: Dict[str, int]) -> DetectionReport:
    return DetectionReport(
        tp=counts["tp"],
        tn=counts["tn"],
        fp=counts["fp"],
        fn=counts["fn"],
        accuracy=accuracy(counts),
        detection_rate=detection_rate(counts),
        false_alarm_rate=false_alarm_rate(counts),
        precision=precision(counts),
        f1=f1_score(counts),
    )


def binarize_predictions(class_indices: np.ndarray, normal_index: int) -> np.ndarray:
    """Collapse multi-class predictions to attack(1)/normal(0)."""
    class_indices = np.asarray(class_indices, dtype=np.int64)
    return (class_indices != normal_index).astype(np.int64)


def evaluate_detection(
    true_classes: np.ndarray,
    predicted_classes: np.ndarray,
    normal_index: int,
) -> DetectionReport:
    """Compute the paper's ACC/DR/FAR report from multi-class predictions."""
    y_true = binarize_predictions(true_classes, normal_index)
    y_pred = binarize_predictions(predicted_classes, normal_index)
    counts = binary_confusion_counts(y_true, y_pred)
    return _report_from_counts(counts)


def per_class_report(
    true_classes: np.ndarray,
    predicted_classes: np.ndarray,
    class_names: Sequence[str],
) -> Dict[str, Dict[str, float]]:
    """Per-class precision/recall/F1 plus support, keyed by class name."""
    num_classes = len(class_names)
    matrix = confusion_matrix(true_classes, predicted_classes, num_classes=num_classes)
    report: Dict[str, Dict[str, float]] = {}
    for index, name in enumerate(class_names):
        tp = int(matrix[index, index])
        fn = int(matrix[index].sum() - tp)
        fp = int(matrix[:, index].sum() - tp)
        counts = {"tp": tp, "fp": fp, "fn": fn, "tn": 0}
        report[name] = {
            "precision": precision(counts),
            "recall": detection_rate(counts),
            "f1": f1_score(counts),
            "support": int(matrix[index].sum()),
        }
    return report
