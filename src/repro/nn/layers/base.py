"""Layer base class.

A layer owns trainable parameters (created lazily the first time it sees an
input, so that input shapes do not have to be specified up front) and
transforms a :class:`~repro.nn.tensor.Tensor` in :meth:`call`.  Composite
layers — such as the paper's plain and residual blocks — register sub-layers
with :meth:`register` so that ``parameters()`` recurses into them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..inference import invalidate_weight_caches
from ..initializers import Initializer, get_initializer
from ..random import spawn_rng
from ..tensor import Tensor, as_tensor, no_grad

__all__ = ["Layer"]


class Layer:
    """Base class for all neural-network layers.

    Parameters
    ----------
    name:
        Optional label used in ``summary()`` output; defaults to the class
        name in lower-case with a per-class counter.
    seed:
        Optional seed for the layer's private random generator (weight
        initialization, dropout masks).
    """

    _instance_counters: Dict[str, int] = {}

    def __init__(self, name: Optional[str] = None, seed: Optional[int] = None) -> None:
        if name is None:
            base = type(self).__name__.lower()
            count = Layer._instance_counters.get(base, 0)
            Layer._instance_counters[base] = count + 1
            name = f"{base}_{count}" if count else base
        self.name = name
        self.built = False
        self.trainable = True
        self.rng = spawn_rng(seed)
        self._parameters: Dict[str, Tensor] = {}
        self._buffers: Dict[str, np.ndarray] = {}
        self._sublayers: List["Layer"] = []

    # ------------------------------------------------------------------ #
    # Parameter management
    # ------------------------------------------------------------------ #
    def add_parameter(
        self,
        name: str,
        shape: Tuple[int, ...],
        initializer: Union[str, Initializer] = "glorot_uniform",
    ) -> Tensor:
        """Create, register and return a trainable parameter tensor."""
        initializer = get_initializer(initializer)
        parameter = Tensor(
            initializer(shape, self.rng),
            requires_grad=True,
            name=f"{self.name}/{name}",
        )
        self._parameters[name] = parameter
        return parameter

    def add_buffer(self, name: str, value: np.ndarray) -> np.ndarray:
        """Register a non-trainable state array (e.g. batch-norm running stats)."""
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        return self._buffers[name]

    def register(self, layer: "Layer") -> "Layer":
        """Register a sub-layer so its parameters are tracked recursively."""
        self._sublayers.append(layer)
        return layer

    def parameters(self) -> List[Tensor]:
        """Return all trainable parameters of this layer and its sub-layers."""
        parameters = list(self._parameters.values()) if self.trainable else []
        for sublayer in self._sublayers:
            parameters.extend(sublayer.parameters())
        return parameters

    def count_params(self) -> int:
        """Total number of scalar trainable parameters."""
        return int(sum(p.size for p in self.parameters()))

    @property
    def sublayers(self) -> List["Layer"]:
        return list(self._sublayers)

    # ------------------------------------------------------------------ #
    # Forward pass
    # ------------------------------------------------------------------ #
    def build(self, input_shape: Tuple[int, ...]) -> None:
        """Create parameters once the input shape is known (no-op by default)."""

    def call(self, inputs: Tensor, training: bool = False) -> Tensor:
        raise NotImplementedError

    def __call__(self, inputs, training: bool = False) -> Tensor:
        if isinstance(inputs, (list, tuple)):
            tensors = [as_tensor(x) for x in inputs]
            if not self.built:
                self.build(tuple(t.shape for t in tensors))
                self.built = True
            return self.call(tensors, training=training)
        inputs = as_tensor(inputs)
        if not self.built:
            self.build(inputs.shape)
            self.built = True
        return self.call(inputs, training=training)

    # ------------------------------------------------------------------ #
    # Graph-free inference fast path (see repro.nn.inference)
    # ------------------------------------------------------------------ #
    def fast_call(self, inputs):
        """Inference-mode forward on raw ndarrays, bypassing the autodiff tape.

        Subclasses override this with pure-numpy kernels; the default falls
        back to the tape path under ``no_grad`` so custom layers remain
        usable (just without the speedup).  Inference semantics apply:
        dropout is a no-op and batch norm uses its moving statistics.
        """
        with no_grad():
            if isinstance(inputs, (list, tuple)):
                result = self.call([as_tensor(x) for x in inputs], training=False)
            else:
                result = self.call(as_tensor(inputs), training=False)
        return result.data

    def fast_forward(self, inputs):
        """Build the layer if needed, then run :meth:`fast_call`."""
        if isinstance(inputs, (list, tuple)):
            arrays = [np.asarray(x) for x in inputs]
            if not self.built:
                self.build(tuple(a.shape for a in arrays))
                self.built = True
            return self.fast_call(arrays)
        inputs = np.asarray(inputs)
        if not self.built:
            self.build(inputs.shape)
            self.built = True
        return self.fast_call(inputs)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"

    # ------------------------------------------------------------------ #
    # Serialization helpers (used by Model.get_weights / set_weights)
    # ------------------------------------------------------------------ #
    def get_weights(self) -> List[np.ndarray]:
        """Return copies of this layer's (and sub-layers') parameter arrays."""
        weights = [p.data.copy() for p in self._parameters.values()]
        for sublayer in self._sublayers:
            weights.extend(sublayer.get_weights())
        return weights

    def weight_specs(self) -> List[Tuple[str, Tuple[int, ...]]]:
        """``(qualified name, shape)`` pairs in :meth:`get_weights` order.

        Lets serialization code name the offending array when a load fails
        instead of surfacing a bare positional mismatch.
        """
        specs = [
            (p.name, tuple(p.data.shape)) for p in self._parameters.values()
        ]
        for sublayer in self._sublayers:
            specs.extend(sublayer.weight_specs())
        return specs

    def get_buffers(self) -> List[np.ndarray]:
        """Copies of the non-trainable state arrays (e.g. BN moving stats).

        Ordered like :meth:`get_weights`: this layer's buffers first, then
        each sub-layer's, so ``(get_weights(), get_buffers())`` is the full
        inference state of the layer tree.
        """
        buffers = [buffer.copy() for buffer in self._buffers.values()]
        for sublayer in self._sublayers:
            buffers.extend(sublayer.get_buffers())
        return buffers

    def buffer_specs(self) -> List[Tuple[str, Tuple[int, ...]]]:
        """``(qualified name, shape)`` pairs in :meth:`get_buffers` order."""
        specs = [
            (f"{self.name}/{name}", tuple(buffer.shape))
            for name, buffer in self._buffers.items()
        ]
        for sublayer in self._sublayers:
            specs.extend(sublayer.buffer_specs())
        return specs

    def set_buffers(self, buffers: Sequence[np.ndarray]) -> int:
        """Load buffer arrays in the order produced by :meth:`get_buffers`.

        Returns the number of arrays consumed so nested layers can continue
        from the right offset.  Bumps the weights epoch: derived constants
        such as the folded batch-norm scale/shift depend on buffer state.
        """
        consumed = 0
        for name, current in self._buffers.items():
            value = np.asarray(buffers[consumed], dtype=np.float64)
            if value.shape != current.shape:
                raise ValueError(
                    f"buffer shape mismatch for {self.name}/{name}: "
                    f"expected {current.shape}, got {value.shape}"
                )
            self._buffers[name] = value.copy()
            consumed += 1
        if consumed:
            invalidate_weight_caches()
        for sublayer in self._sublayers:
            consumed += sublayer.set_buffers(buffers[consumed:])
        return consumed

    def set_weights(self, weights: Sequence[np.ndarray]) -> int:
        """Load parameter arrays in the order produced by :meth:`get_weights`.

        Returns the number of arrays consumed so nested layers can continue
        from the right offset.
        """
        consumed = 0
        for parameter in self._parameters.values():
            value = np.asarray(weights[consumed], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"weight shape mismatch for {parameter.name}: "
                    f"expected {parameter.data.shape}, got {value.shape}"
                )
            parameter.data = value.copy()
            consumed += 1
        if consumed:
            invalidate_weight_caches()
        for sublayer in self._sublayers:
            consumed += sublayer.set_weights(weights[consumed:])
        return consumed
