"""Batch normalization.

The paper applies BN before both the convolution and the GRU in every block to
"reduce the internal covariate shift" and, crucially for Pelican, the residual
shortcut is taken from the output of the block's first BN layer.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import tensor as ops
from ..inference import fold_batch_norm, invalidate_weight_caches, weights_epoch
from ..tensor import Tensor
from .base import Layer

__all__ = ["BatchNormalization"]


class BatchNormalization(Layer):
    """Normalize activations to zero mean / unit variance per channel.

    During training the batch statistics are used and exponential moving
    averages are maintained; during inference the moving averages are used.

    Parameters
    ----------
    momentum:
        Momentum of the moving-average update.  The default (0.9) is lower
        than Keras' 0.99 because the scaled-down experiments take far fewer
        optimizer steps than the paper's full runs; the moving statistics are
        also seeded from the first training batch for the same reason.
    epsilon:
        Small constant added to the variance for numerical stability.
    """

    def __init__(
        self,
        momentum: float = 0.9,
        epsilon: float = 1e-3,
        name: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(name=name, seed=seed)
        if not 0.0 < momentum < 1.0:
            raise ValueError("momentum must be in (0, 1)")
        self.momentum = float(momentum)
        self.epsilon = float(epsilon)
        self.gamma: Optional[Tensor] = None
        self.beta: Optional[Tensor] = None
        # (weights epoch, scale, shift) — see repro.nn.inference.
        self._folded: Optional[Tuple[int, np.ndarray, np.ndarray]] = None

    def build(self, input_shape: Tuple[int, ...]) -> None:
        channels = input_shape[-1]
        self.gamma = self.add_parameter("gamma", (channels,), "ones")
        self.beta = self.add_parameter("beta", (channels,), "zeros")
        self.add_buffer("moving_mean", np.zeros(channels))
        self.add_buffer("moving_variance", np.ones(channels))
        self._moving_stats_initialized = False

    def call(self, inputs: Tensor, training: bool = False) -> Tensor:
        reduce_axes = tuple(range(inputs.ndim - 1))
        if training:
            batch_mean = inputs.data.mean(axis=reduce_axes)
            batch_variance = inputs.data.var(axis=reduce_axes)
            if not self._moving_stats_initialized:
                # Seed the moving statistics with the first batch so inference
                # is sensible even after very few training steps.
                self._buffers["moving_mean"] = batch_mean.copy()
                self._buffers["moving_variance"] = batch_variance.copy()
                self._moving_stats_initialized = True
            self._buffers["moving_mean"] = (
                self.momentum * self._buffers["moving_mean"]
                + (1.0 - self.momentum) * batch_mean
            )
            self._buffers["moving_variance"] = (
                self.momentum * self._buffers["moving_variance"]
                + (1.0 - self.momentum) * batch_variance
            )
            # The moving statistics feed the fast path's folded constants.
            invalidate_weight_caches()
            # Normalisation must participate in the autodiff graph, so the
            # statistics are recomputed with tensor ops here.
            mean = ops.reduce_mean(inputs, axis=reduce_axes, keepdims=True)
            centered = inputs - mean
            variance = ops.reduce_mean(centered * centered, axis=reduce_axes, keepdims=True)
            normalized = centered * ops.power(variance + self.epsilon, -0.5)
        else:
            mean = self._buffers["moving_mean"]
            variance = self._buffers["moving_variance"]
            normalized = (inputs - mean) * ((variance + self.epsilon) ** -0.5)
        return normalized * self.gamma + self.beta

    def set_buffers(self, buffers) -> int:
        """Load moving statistics and mark them as seeded.

        Restored statistics come from a trained model, so the next training
        batch must blend into them with the usual momentum instead of
        overwriting them the way the first-ever batch does.
        """
        consumed = super().set_buffers(buffers)
        if consumed:
            self._moving_stats_initialized = True
        return consumed

    def folded_constants(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cached ``(scale, shift)`` of the inference-mode normalization.

        Re-derived only when the global weights epoch has moved since the
        last call (optimizer step, weight load, training-mode statistics
        update).  Concurrent callers may race to recompute, but the result
        is identical either way, so the worst case is duplicated work.
        """
        epoch = weights_epoch()
        folded = self._folded
        if folded is None or folded[0] != epoch:
            scale, shift = fold_batch_norm(
                self.gamma.data,
                self.beta.data,
                self._buffers["moving_mean"],
                self._buffers["moving_variance"],
                self.epsilon,
            )
            folded = (epoch, scale, shift)
            self._folded = folded
        return folded[1], folded[2]

    def fast_call(self, inputs: np.ndarray) -> np.ndarray:
        scale, shift = self.folded_constants()
        return inputs * scale + shift
