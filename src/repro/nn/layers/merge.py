"""Merge layers: the residual ``Add`` and a ``Concatenate`` helper.

``Add`` is the heart of the residual block — the shortcut taken from the block
input (the first BN output in the paper's Fig. 4(b)) is summed element-wise
with the block's transformation output.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .. import tensor as ops
from ..tensor import Tensor
from .base import Layer

__all__ = ["Add", "Concatenate"]


class Add(Layer):
    """Element-wise sum of a list of equally-shaped tensors."""

    def call(self, inputs: Sequence[Tensor], training: bool = False) -> Tensor:
        if not isinstance(inputs, (list, tuple)) or len(inputs) < 2:
            raise ValueError("Add expects a list of at least two input tensors")
        shapes = {tuple(t.shape) for t in inputs}
        if len(shapes) != 1:
            raise ValueError(f"Add requires identical input shapes, got {sorted(shapes)}")
        total = inputs[0]
        for tensor in inputs[1:]:
            total = total + tensor
        return total

    def fast_call(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        if not isinstance(inputs, (list, tuple)) or len(inputs) < 2:
            raise ValueError("Add expects a list of at least two input tensors")
        shapes = {tuple(x.shape) for x in inputs}
        if len(shapes) != 1:
            raise ValueError(f"Add requires identical input shapes, got {sorted(shapes)}")
        total = inputs[0]
        for array in inputs[1:]:
            total = total + array
        return total


class Concatenate(Layer):
    """Concatenate tensors along a given axis (default: the channel axis)."""

    def __init__(self, axis: int = -1, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        self.axis = axis

    def call(self, inputs: Sequence[Tensor], training: bool = False) -> Tensor:
        if not isinstance(inputs, (list, tuple)) or len(inputs) < 2:
            raise ValueError("Concatenate expects a list of at least two input tensors")
        return ops.concatenate(list(inputs), axis=self.axis)

    def fast_call(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        if not isinstance(inputs, (list, tuple)) or len(inputs) < 2:
            raise ValueError("Concatenate expects a list of at least two input tensors")
        return np.concatenate(list(inputs), axis=self.axis)
