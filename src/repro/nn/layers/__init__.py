"""Neural-network layers used to assemble Pelican and the baseline models."""

from .base import Layer
from .convolutional import Conv1D
from .core import Activation, Dense, Dropout, Flatten, Reshape, get_activation
from .merge import Add, Concatenate
from .normalization import BatchNormalization
from .pooling import (
    AveragePooling1D,
    GlobalAveragePooling1D,
    GlobalMaxPooling1D,
    MaxPooling1D,
)
from .recurrent import GRU, LSTM, SimpleRNN

__all__ = [
    "Layer",
    "Dense",
    "Activation",
    "Dropout",
    "Flatten",
    "Reshape",
    "get_activation",
    "Conv1D",
    "MaxPooling1D",
    "AveragePooling1D",
    "GlobalAveragePooling1D",
    "GlobalMaxPooling1D",
    "BatchNormalization",
    "GRU",
    "LSTM",
    "SimpleRNN",
    "Add",
    "Concatenate",
]
