"""Recurrent layers: GRU (used by Pelican/LuNet) and LSTM (used by baselines).

The gate formulations follow the Keras conventions the paper relied on:
``tanh`` candidate activation and ``hard_sigmoid`` recurrent (gate) activation,
Glorot-uniform input kernels and orthogonal recurrent kernels.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from .. import tensor as ops
from ..inference import get_raw_activation
from ..tensor import Tensor
from .base import Layer
from .core import get_activation

__all__ = ["GRU", "LSTM", "SimpleRNN"]


class _RecurrentBase(Layer):
    """Shared plumbing for recurrent layers operating on (batch, steps, features)."""

    def __init__(
        self,
        units: int,
        activation: Union[str, Callable] = "tanh",
        recurrent_activation: Union[str, Callable] = "hard_sigmoid",
        return_sequences: bool = False,
        name: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(name=name, seed=seed)
        if units <= 0:
            raise ValueError("units must be a positive integer")
        self.units = int(units)
        self.activation = get_activation(activation)
        self.activation_raw = get_raw_activation(activation)
        self.recurrent_activation = get_activation(recurrent_activation)
        self.recurrent_activation_raw = get_raw_activation(recurrent_activation)
        self.return_sequences = return_sequences

    def _validate_input(self, input_shape: Tuple[int, ...]) -> int:
        if len(input_shape) != 3:
            raise ValueError(
                f"{type(self).__name__} expects (batch, steps, features) inputs, "
                f"got {input_shape}"
            )
        return input_shape[-1]

    def _stack_outputs(self, outputs: List[Tensor]) -> Tensor:
        if self.return_sequences:
            return ops.stack(outputs, axis=1)
        return outputs[-1]


class GRU(_RecurrentBase):
    """Gated recurrent unit.

    Gate equations (Keras ``reset_after=False`` convention)::

        z_t = sigma(x_t W_z + h_{t-1} U_z + b_z)
        r_t = sigma(x_t W_r + h_{t-1} U_r + b_r)
        c_t = tanh(x_t W_c + (r_t * h_{t-1}) U_c + b_c)
        h_t = z_t * h_{t-1} + (1 - z_t) * c_t

    where ``sigma`` is the hard sigmoid by default.
    """

    def build(self, input_shape: Tuple[int, ...]) -> None:
        input_dim = self._validate_input(input_shape)
        self.kernel = self.add_parameter(
            "kernel", (input_dim, 3 * self.units), "glorot_uniform"
        )
        self.recurrent_kernel = self.add_parameter(
            "recurrent_kernel", (self.units, 3 * self.units), "orthogonal"
        )
        self.bias = self.add_parameter("bias", (3 * self.units,), "zeros")

    def call(self, inputs: Tensor, training: bool = False) -> Tensor:
        batch, steps, _ = inputs.shape
        units = self.units
        hidden = ops.as_tensor(np.zeros((batch, units)))
        outputs: List[Tensor] = []
        for step in range(steps):
            x_t = inputs[:, step, :]
            gates_x = ops.matmul(x_t, self.kernel) + self.bias
            gates_h = ops.matmul(hidden, self.recurrent_kernel)
            update = self.recurrent_activation(
                gates_x[:, 0:units] + gates_h[:, 0:units]
            )
            reset = self.recurrent_activation(
                gates_x[:, units:2 * units] + gates_h[:, units:2 * units]
            )
            candidate = self.activation(
                gates_x[:, 2 * units:3 * units]
                + reset * gates_h[:, 2 * units:3 * units]
            )
            hidden = update * hidden + (1.0 - update) * candidate
            outputs.append(hidden)
        return self._stack_outputs(outputs)

    def fast_call(self, inputs: np.ndarray) -> np.ndarray:
        batch, steps, _ = inputs.shape
        units = self.units
        kernel = self.kernel.data
        recurrent_kernel = self.recurrent_kernel.data
        bias = self.bias.data
        hidden: Optional[np.ndarray] = None  # None encodes the all-zero initial state
        outputs: List[np.ndarray] = []
        for step in range(steps):
            gates_x = inputs[:, step, :] @ kernel + bias
            if hidden is None:
                # h_0 == 0, so the recurrent matmul contributes exactly zero
                # (and the reset gate, which only scales gates_h, is moot).
                update = self.recurrent_activation_raw(gates_x[:, 0:units])
                candidate = self.activation_raw(gates_x[:, 2 * units:3 * units])
                hidden = (1.0 - update) * candidate
            else:
                gates_h = hidden @ recurrent_kernel
                update = self.recurrent_activation_raw(
                    gates_x[:, 0:units] + gates_h[:, 0:units]
                )
                reset = self.recurrent_activation_raw(
                    gates_x[:, units:2 * units] + gates_h[:, units:2 * units]
                )
                candidate = self.activation_raw(
                    gates_x[:, 2 * units:3 * units]
                    + reset * gates_h[:, 2 * units:3 * units]
                )
                hidden = update * hidden + (1.0 - update) * candidate
            if self.return_sequences:
                outputs.append(hidden)
        return np.stack(outputs, axis=1) if self.return_sequences else hidden


class LSTM(_RecurrentBase):
    """Long short-term memory layer (the recurrent core of the LSTM baseline).

    Gate equations::

        i_t = sigma(x_t W_i + h_{t-1} U_i + b_i)
        f_t = sigma(x_t W_f + h_{t-1} U_f + b_f)
        o_t = sigma(x_t W_o + h_{t-1} U_o + b_o)
        c_t = f_t * c_{t-1} + i_t * tanh(x_t W_c + h_{t-1} U_c + b_c)
        h_t = o_t * tanh(c_t)
    """

    def build(self, input_shape: Tuple[int, ...]) -> None:
        input_dim = self._validate_input(input_shape)
        self.kernel = self.add_parameter(
            "kernel", (input_dim, 4 * self.units), "glorot_uniform"
        )
        self.recurrent_kernel = self.add_parameter(
            "recurrent_kernel", (self.units, 4 * self.units), "orthogonal"
        )
        self.bias = self.add_parameter("bias", (4 * self.units,), "zeros")

    def call(self, inputs: Tensor, training: bool = False) -> Tensor:
        batch, steps, _ = inputs.shape
        units = self.units
        hidden = ops.as_tensor(np.zeros((batch, units)))
        cell = ops.as_tensor(np.zeros((batch, units)))
        outputs: List[Tensor] = []
        for step in range(steps):
            x_t = inputs[:, step, :]
            gates = (
                ops.matmul(x_t, self.kernel)
                + ops.matmul(hidden, self.recurrent_kernel)
                + self.bias
            )
            input_gate = self.recurrent_activation(gates[:, 0:units])
            forget_gate = self.recurrent_activation(gates[:, units:2 * units])
            candidate = self.activation(gates[:, 2 * units:3 * units])
            output_gate = self.recurrent_activation(gates[:, 3 * units:4 * units])
            cell = forget_gate * cell + input_gate * candidate
            hidden = output_gate * self.activation(cell)
            outputs.append(hidden)
        return self._stack_outputs(outputs)

    def fast_call(self, inputs: np.ndarray) -> np.ndarray:
        batch, steps, _ = inputs.shape
        units = self.units
        kernel = self.kernel.data
        recurrent_kernel = self.recurrent_kernel.data
        bias = self.bias.data
        hidden: Optional[np.ndarray] = None  # None encodes the all-zero initial state
        cell: Optional[np.ndarray] = None
        outputs: List[np.ndarray] = []
        for step in range(steps):
            gates = inputs[:, step, :] @ kernel
            if hidden is not None:
                gates = gates + hidden @ recurrent_kernel
            gates = gates + bias
            input_gate = self.recurrent_activation_raw(gates[:, 0:units])
            forget_gate = self.recurrent_activation_raw(gates[:, units:2 * units])
            candidate = self.activation_raw(gates[:, 2 * units:3 * units])
            output_gate = self.recurrent_activation_raw(gates[:, 3 * units:4 * units])
            cell = input_gate * candidate if cell is None else forget_gate * cell + input_gate * candidate
            hidden = output_gate * self.activation_raw(cell)
            if self.return_sequences:
                outputs.append(hidden)
        return np.stack(outputs, axis=1) if self.return_sequences else hidden


class SimpleRNN(_RecurrentBase):
    """Vanilla (Elman) recurrent layer, provided for completeness and ablations."""

    def build(self, input_shape: Tuple[int, ...]) -> None:
        input_dim = self._validate_input(input_shape)
        self.kernel = self.add_parameter(
            "kernel", (input_dim, self.units), "glorot_uniform"
        )
        self.recurrent_kernel = self.add_parameter(
            "recurrent_kernel", (self.units, self.units), "orthogonal"
        )
        self.bias = self.add_parameter("bias", (self.units,), "zeros")

    def call(self, inputs: Tensor, training: bool = False) -> Tensor:
        batch, steps, _ = inputs.shape
        hidden = ops.as_tensor(np.zeros((batch, self.units)))
        outputs: List[Tensor] = []
        for step in range(steps):
            x_t = inputs[:, step, :]
            hidden = self.activation(
                ops.matmul(x_t, self.kernel)
                + ops.matmul(hidden, self.recurrent_kernel)
                + self.bias
            )
            outputs.append(hidden)
        return self._stack_outputs(outputs)

    def fast_call(self, inputs: np.ndarray) -> np.ndarray:
        batch, steps, _ = inputs.shape
        kernel = self.kernel.data
        recurrent_kernel = self.recurrent_kernel.data
        bias = self.bias.data
        hidden: Optional[np.ndarray] = None  # None encodes the all-zero initial state
        outputs: List[np.ndarray] = []
        for step in range(steps):
            preact = inputs[:, step, :] @ kernel
            if hidden is not None:
                preact = preact + hidden @ recurrent_kernel
            hidden = self.activation_raw(preact + bias)
            if self.return_sequences:
                outputs.append(hidden)
        return np.stack(outputs, axis=1) if self.return_sequences else hidden
