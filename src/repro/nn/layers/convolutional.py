"""1-D convolution layer (channels-last), the spatial feature extractor of Pelican."""

from __future__ import annotations

from typing import Callable, Optional, Tuple, Union

import numpy as np

from .. import tensor as ops
from ..inference import get_raw_activation, raw_conv1d
from ..initializers import Initializer
from ..tensor import Tensor
from .base import Layer
from .core import get_activation

__all__ = ["Conv1D"]


class Conv1D(Layer):
    """1-D convolution over ``(batch, steps, channels)`` inputs.

    Parameters
    ----------
    filters:
        Number of output channels.  In the paper this equals the number of
        post-encoding input features (196 for UNSW-NB15, 121 for NSL-KDD) so
        the residual shortcut's ``add`` has matching shapes.
    kernel_size:
        Length of the convolution window (10 in the paper).
    strides:
        Stride of the window.
    padding:
        ``"same"`` (paper setting, keeps the time dimension) or ``"valid"``.
    activation:
        Optional activation applied to the convolution output (ReLU in the
        paper's plain block).
    """

    def __init__(
        self,
        filters: int,
        kernel_size: int,
        strides: int = 1,
        padding: str = "same",
        activation: Union[str, Callable, None] = None,
        use_bias: bool = True,
        kernel_initializer: Union[str, Initializer] = "glorot_uniform",
        name: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(name=name, seed=seed)
        if filters <= 0 or kernel_size <= 0 or strides <= 0:
            raise ValueError("filters, kernel_size and strides must be positive")
        if padding not in ("same", "valid"):
            raise ValueError("padding must be 'same' or 'valid'")
        self.filters = int(filters)
        self.kernel_size = int(kernel_size)
        self.strides = int(strides)
        self.padding = padding
        self.activation = get_activation(activation)
        self.activation_raw = get_raw_activation(activation)
        self.use_bias = use_bias
        self.kernel_initializer = kernel_initializer
        self.kernel: Optional[Tensor] = None
        self.bias: Optional[Tensor] = None

    def build(self, input_shape: Tuple[int, ...]) -> None:
        if len(input_shape) != 3:
            raise ValueError(
                f"Conv1D expects (batch, steps, channels) inputs, got {input_shape}"
            )
        in_channels = input_shape[-1]
        self.kernel = self.add_parameter(
            "kernel",
            (self.kernel_size, in_channels, self.filters),
            self.kernel_initializer,
        )
        if self.use_bias:
            self.bias = self.add_parameter("bias", (self.filters,), "zeros")

    def call(self, inputs: Tensor, training: bool = False) -> Tensor:
        outputs = ops.conv1d(
            inputs,
            self.kernel,
            bias=self.bias if self.use_bias else None,
            stride=self.strides,
            padding=self.padding,
        )
        return self.activation(outputs)

    def fast_call(self, inputs: np.ndarray) -> np.ndarray:
        outputs = raw_conv1d(
            inputs,
            self.kernel.data,
            bias=self.bias.data if self.use_bias else None,
            stride=self.strides,
            padding=self.padding,
        )
        return self.activation_raw(outputs)
