"""Core layers: Dense, Activation, Dropout, Flatten, Reshape.

These correspond directly to the Keras layers the paper's implementation was
composed of (the "Dense" classifier head, the ReLU activations after the
convolutions, the Dropout regulariser, and the Reshape used to keep data
dimensions consistent between the convolutional and recurrent stages).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple, Union

import numpy as np

from .. import tensor as ops
from ..inference import get_raw_activation
from ..initializers import Initializer
from ..tensor import Tensor
from .base import Layer

__all__ = ["Dense", "Activation", "Dropout", "Flatten", "Reshape", "get_activation"]

_ACTIVATIONS = {
    "linear": lambda x: x,
    "relu": ops.relu,
    "sigmoid": ops.sigmoid,
    "hard_sigmoid": ops.hard_sigmoid,
    "tanh": ops.tanh,
    "softmax": ops.softmax,
}


def get_activation(identifier: Union[str, Callable, None]) -> Callable[[Tensor], Tensor]:
    """Resolve an activation function from its name (or pass a callable through)."""
    if identifier is None:
        return _ACTIVATIONS["linear"]
    if callable(identifier):
        return identifier
    try:
        return _ACTIVATIONS[identifier]
    except KeyError as exc:
        known = ", ".join(sorted(_ACTIVATIONS))
        raise ValueError(
            f"unknown activation {identifier!r}; known activations: {known}"
        ) from exc


class Dense(Layer):
    """Fully-connected layer: ``output = activation(inputs @ kernel + bias)``.

    Parameters
    ----------
    units:
        Output dimensionality.
    activation:
        Name of an activation applied to the affine output.
    use_bias:
        Whether to add a bias vector.
    """

    def __init__(
        self,
        units: int,
        activation: Union[str, Callable, None] = None,
        use_bias: bool = True,
        kernel_initializer: Union[str, Initializer] = "glorot_uniform",
        name: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(name=name, seed=seed)
        if units <= 0:
            raise ValueError("units must be a positive integer")
        self.units = int(units)
        self.activation = get_activation(activation)
        self.activation_raw = get_raw_activation(activation)
        self.use_bias = use_bias
        self.kernel_initializer = kernel_initializer
        self.kernel: Optional[Tensor] = None
        self.bias: Optional[Tensor] = None

    def build(self, input_shape: Tuple[int, ...]) -> None:
        input_dim = input_shape[-1]
        self.kernel = self.add_parameter(
            "kernel", (input_dim, self.units), self.kernel_initializer
        )
        if self.use_bias:
            self.bias = self.add_parameter("bias", (self.units,), "zeros")

    def call(self, inputs: Tensor, training: bool = False) -> Tensor:
        outputs = ops.matmul(inputs, self.kernel)
        if self.use_bias:
            outputs = outputs + self.bias
        return self.activation(outputs)

    def fast_call(self, inputs: np.ndarray) -> np.ndarray:
        outputs = inputs @ self.kernel.data
        if self.use_bias:
            outputs = outputs + self.bias.data
        return self.activation_raw(outputs)


class Activation(Layer):
    """Standalone activation layer (e.g. the ReLU after each residual add)."""

    def __init__(self, activation: Union[str, Callable], name: Optional[str] = None) -> None:
        super().__init__(name=name)
        self.activation = get_activation(activation)
        self.activation_raw = get_raw_activation(activation)

    def call(self, inputs: Tensor, training: bool = False) -> Tensor:
        return self.activation(inputs)

    def fast_call(self, inputs: np.ndarray) -> np.ndarray:
        return self.activation_raw(inputs)


class Dropout(Layer):
    """Inverted dropout; active only when ``training`` is True.

    The paper uses a high rate (0.6) to counter overfitting on the small
    intrusion-detection datasets.
    """

    def __init__(self, rate: float, name: Optional[str] = None, seed: Optional[int] = None) -> None:
        super().__init__(name=name, seed=seed)
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = float(rate)

    def call(self, inputs: Tensor, training: bool = False) -> Tensor:
        if not training or self.rate == 0.0:
            return inputs
        return ops.dropout(inputs, self.rate, rng=self.rng)

    def fast_call(self, inputs: np.ndarray) -> np.ndarray:
        return inputs


class Flatten(Layer):
    """Flatten everything except the batch dimension."""

    def call(self, inputs: Tensor, training: bool = False) -> Tensor:
        batch = inputs.shape[0]
        return ops.reshape(inputs, (batch, -1))

    def fast_call(self, inputs: np.ndarray) -> np.ndarray:
        return inputs.reshape(inputs.shape[0], -1)


class Reshape(Layer):
    """Reshape the non-batch dimensions to ``target_shape``.

    In the paper's blocks this restores the ``(timesteps, features)`` layout
    after the GRU collapses the time axis.
    """

    def __init__(self, target_shape: Tuple[int, ...], name: Optional[str] = None) -> None:
        super().__init__(name=name)
        self.target_shape = tuple(int(d) for d in target_shape)

    def call(self, inputs: Tensor, training: bool = False) -> Tensor:
        self._check_size(inputs.shape)
        return ops.reshape(inputs, (inputs.shape[0], *self.target_shape))

    def fast_call(self, inputs: np.ndarray) -> np.ndarray:
        self._check_size(inputs.shape)
        return inputs.reshape(inputs.shape[0], *self.target_shape)

    def _check_size(self, shape: Tuple[int, ...]) -> None:
        expected = int(np.prod(self.target_shape))
        actual = int(np.prod(shape[1:]))
        if expected != actual:
            raise ValueError(
                f"cannot reshape input with {actual} features per sample into "
                f"{self.target_shape} ({expected} features)"
            )
