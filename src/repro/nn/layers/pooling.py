"""Pooling layers: max pooling, average pooling and global average pooling."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import tensor as ops
from ..inference import raw_max_pool1d
from ..tensor import Tensor
from .base import Layer

__all__ = ["MaxPooling1D", "AveragePooling1D", "GlobalAveragePooling1D", "GlobalMaxPooling1D"]


class MaxPooling1D(Layer):
    """Max pooling over the time axis of ``(batch, steps, channels)`` inputs.

    The paper's plain block uses this after the convolution to "select the
    most active neurons" before the recurrent stage.
    """

    def __init__(
        self,
        pool_size: int = 2,
        strides: Optional[int] = None,
        padding: str = "same",
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name)
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        if padding not in ("same", "valid"):
            raise ValueError("padding must be 'same' or 'valid'")
        self.pool_size = int(pool_size)
        self.strides = int(strides) if strides is not None else self.pool_size
        self.padding = padding

    def call(self, inputs: Tensor, training: bool = False) -> Tensor:
        return ops.max_pool1d(
            inputs, pool_size=self.pool_size, stride=self.strides, padding=self.padding
        )

    def fast_call(self, inputs: np.ndarray) -> np.ndarray:
        return raw_max_pool1d(
            inputs, pool_size=self.pool_size, stride=self.strides, padding=self.padding
        )


class AveragePooling1D(Layer):
    """Average pooling over the time axis of ``(batch, steps, channels)`` inputs."""

    def __init__(
        self,
        pool_size: int = 2,
        strides: Optional[int] = None,
        padding: str = "same",
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name)
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        if padding not in ("same", "valid"):
            raise ValueError("padding must be 'same' or 'valid'")
        self.pool_size = int(pool_size)
        self.strides = int(strides) if strides is not None else self.pool_size
        self.padding = padding

    def call(self, inputs: Tensor, training: bool = False) -> Tensor:
        # Average pooling is expressed with the existing primitives: a "same"
        # padded sum over each window divided by the window size.  For the
        # 1-timestep inputs used in the paper this is the identity.
        steps = inputs.shape[1]
        if steps == 1:
            return inputs
        pooled_windows = []
        for start in range(0, steps, self.strides):
            window = inputs[:, start:start + self.pool_size, :]
            pooled_windows.append(ops.reduce_mean(window, axis=1, keepdims=True))
        return ops.concatenate(pooled_windows, axis=1)

    def fast_call(self, inputs: np.ndarray) -> np.ndarray:
        steps = inputs.shape[1]
        if steps == 1:
            return inputs
        windows = [
            inputs[:, start:start + self.pool_size, :].mean(axis=1, keepdims=True)
            for start in range(0, steps, self.strides)
        ]
        return np.concatenate(windows, axis=1)


class GlobalAveragePooling1D(Layer):
    """Average over the whole time axis, producing ``(batch, channels)``.

    Both Pelican and the plain comparison networks use this to collapse the
    block stack's output before the dense classification layer.
    """

    def call(self, inputs: Tensor, training: bool = False) -> Tensor:
        return ops.global_average_pool1d(inputs)

    def fast_call(self, inputs: np.ndarray) -> np.ndarray:
        return inputs.mean(axis=1)


class GlobalMaxPooling1D(Layer):
    """Max over the whole time axis, producing ``(batch, channels)``."""

    def call(self, inputs: Tensor, training: bool = False) -> Tensor:
        return ops.reduce_max(inputs, axis=1)

    def fast_call(self, inputs: np.ndarray) -> np.ndarray:
        return inputs.max(axis=1)
