"""``repro.nn`` — a from-scratch neural-network framework on numpy.

This package substitutes for the TensorFlow/Keras stack the paper used.  It
provides reverse-mode autodiff (:mod:`repro.nn.tensor`), Keras-style layers
(:mod:`repro.nn.layers`), losses, optimizers (including the RMSprop variant
used throughout the paper), callbacks and the :class:`Sequential` model
container with a complete ``fit``/``evaluate``/``predict`` loop.
"""

from . import (
    callbacks,
    gradcheck,
    inference,
    initializers,
    layers,
    losses,
    metrics,
    optimizers,
    random,
)
from .callbacks import EarlyStopping, History, LearningRateScheduler
from .layers import (
    GRU,
    LSTM,
    Activation,
    Add,
    AveragePooling1D,
    BatchNormalization,
    Concatenate,
    Conv1D,
    Dense,
    Dropout,
    Flatten,
    GlobalAveragePooling1D,
    GlobalMaxPooling1D,
    Layer,
    MaxPooling1D,
    Reshape,
    SimpleRNN,
)
from .losses import (
    BinaryCrossentropy,
    CategoricalCrossentropy,
    MeanSquaredError,
    SparseCategoricalCrossentropy,
)
from .models import Model, Sequential
from .optimizers import SGD, Adadelta, Adagrad, Adam, Optimizer, RMSprop
from .random import seed
from .tensor import Tensor, as_tensor, no_grad

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "seed",
    "Layer",
    "Dense",
    "Activation",
    "Dropout",
    "Flatten",
    "Reshape",
    "Conv1D",
    "MaxPooling1D",
    "AveragePooling1D",
    "GlobalAveragePooling1D",
    "GlobalMaxPooling1D",
    "BatchNormalization",
    "GRU",
    "LSTM",
    "SimpleRNN",
    "Add",
    "Concatenate",
    "Model",
    "Sequential",
    "Optimizer",
    "SGD",
    "RMSprop",
    "Adam",
    "Adagrad",
    "Adadelta",
    "CategoricalCrossentropy",
    "SparseCategoricalCrossentropy",
    "BinaryCrossentropy",
    "MeanSquaredError",
    "History",
    "EarlyStopping",
    "LearningRateScheduler",
]
