"""Loss functions for training :mod:`repro.nn` models.

Each loss is a small class with a ``__call__(y_true, y_pred)`` method that
returns a scalar :class:`~repro.nn.tensor.Tensor` so gradients flow back into
the model.  ``y_true`` is always a plain numpy array; ``y_pred`` is the model's
output tensor.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .tensor import Tensor, as_tensor, clip, log, reduce_mean, reduce_sum, softmax

__all__ = [
    "Loss",
    "CategoricalCrossentropy",
    "SparseCategoricalCrossentropy",
    "BinaryCrossentropy",
    "MeanSquaredError",
    "get_loss",
]

_EPSILON = 1e-7


class Loss:
    """Base class for losses; subclasses implement :meth:`call`."""

    name = "loss"

    def __call__(self, y_true: np.ndarray, y_pred: Tensor) -> Tensor:
        return self.call(np.asarray(y_true), as_tensor(y_pred))

    def call(self, y_true: np.ndarray, y_pred: Tensor) -> Tensor:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class CategoricalCrossentropy(Loss):
    """Cross-entropy for one-hot targets.

    Parameters
    ----------
    from_logits:
        When True the predictions are unnormalised scores and a softmax is
        applied internally; otherwise they are assumed to be probabilities.
    """

    name = "categorical_crossentropy"

    def __init__(self, from_logits: bool = False) -> None:
        self.from_logits = from_logits

    def call(self, y_true: np.ndarray, y_pred: Tensor) -> Tensor:
        if y_true.shape != y_pred.shape:
            raise ValueError(
                f"shape mismatch: targets {y_true.shape} vs predictions {y_pred.shape}"
            )
        probabilities = softmax(y_pred) if self.from_logits else y_pred
        probabilities = clip(probabilities, _EPSILON, 1.0 - _EPSILON)
        per_sample = reduce_sum(as_tensor(y_true) * log(probabilities) * -1.0, axis=-1)
        return reduce_mean(per_sample)


class SparseCategoricalCrossentropy(Loss):
    """Cross-entropy for integer class-index targets."""

    name = "sparse_categorical_crossentropy"

    def __init__(self, from_logits: bool = False) -> None:
        self.from_logits = from_logits

    def call(self, y_true: np.ndarray, y_pred: Tensor) -> Tensor:
        labels = np.asarray(y_true).astype(np.int64).reshape(-1)
        num_classes = y_pred.shape[-1]
        one_hot = np.eye(num_classes)[labels]
        return CategoricalCrossentropy(from_logits=self.from_logits).call(
            one_hot, y_pred
        )


class BinaryCrossentropy(Loss):
    """Binary cross-entropy for probabilistic binary predictions."""

    name = "binary_crossentropy"

    def call(self, y_true: np.ndarray, y_pred: Tensor) -> Tensor:
        y_true = np.asarray(y_true).reshape(y_pred.shape)
        probabilities = clip(y_pred, _EPSILON, 1.0 - _EPSILON)
        losses = (
            as_tensor(y_true) * log(probabilities)
            + as_tensor(1.0 - y_true) * log(1.0 - probabilities)
        ) * -1.0
        return reduce_mean(losses)


class MeanSquaredError(Loss):
    """Mean squared error regression loss."""

    name = "mean_squared_error"

    def call(self, y_true: np.ndarray, y_pred: Tensor) -> Tensor:
        difference = y_pred - as_tensor(np.asarray(y_true).reshape(y_pred.shape))
        return reduce_mean(difference * difference)


_REGISTRY = {
    "categorical_crossentropy": CategoricalCrossentropy,
    "sparse_categorical_crossentropy": SparseCategoricalCrossentropy,
    "binary_crossentropy": BinaryCrossentropy,
    "mean_squared_error": MeanSquaredError,
    "mse": MeanSquaredError,
}


def get_loss(identifier: Union[str, Loss]) -> Loss:
    """Resolve a loss from a name or pass an instance through."""
    if isinstance(identifier, Loss):
        return identifier
    try:
        return _REGISTRY[identifier]()
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown loss {identifier!r}; known losses: {known}") from exc
