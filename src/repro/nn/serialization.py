"""Model weight serialization.

The paper's workflow trains a detector once and then deploys it inside the
NIDS (Fig. 1); this module provides the minimal persistence layer that makes
that workflow possible here: model weights are saved to a single ``.npz``
archive and can be loaded back into a freshly constructed model of the same
architecture.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

import numpy as np

from .layers.base import Layer

__all__ = ["save_weights", "load_weights"]


def save_weights(model: Layer, path: Union[str, Path]) -> Path:
    """Save a model's weights to ``path`` (``.npz`` appended if missing).

    The arrays are stored in the deterministic order produced by
    :meth:`Layer.get_weights`, so loading requires an identically structured
    (already built) model.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    weights = model.get_weights()
    if not weights:
        raise ValueError(
            "the model has no weights to save; build it by calling it on data first"
        )
    arrays = {f"weight_{index:04d}": array for index, array in enumerate(weights)}
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path


def load_weights(model: Layer, path: Union[str, Path]) -> Layer:
    """Load weights saved by :func:`save_weights` into ``model`` (in place).

    The model must already be built (its parameters created) and have the same
    architecture as the model the weights came from; shape mismatches raise
    ``ValueError``.
    """
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with np.load(path) as archive:
        keys = sorted(archive.files)
        weights: List[np.ndarray] = [archive[key] for key in keys]
    expected = len(model.get_weights())
    if expected != len(weights):
        raise ValueError(
            f"weight count mismatch: model has {expected} arrays, file has {len(weights)}"
        )
    model.set_weights(weights)
    return model
