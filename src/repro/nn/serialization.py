"""Model weight serialization.

The paper's workflow trains a detector once and then deploys it inside the
NIDS (Fig. 1); this module provides the persistence layer that makes that
workflow possible here:

* :func:`save_weights` / :func:`load_weights` — the trainable parameter
  arrays alone, in :meth:`~repro.nn.layers.base.Layer.get_weights` order;
* :func:`save_state` / :func:`load_state` — parameters **plus** the
  non-trainable buffers (batch-norm moving statistics), i.e. the complete
  inference state.  A model restored with :func:`load_state` scores
  identically to the one that was saved; a model restored from weights
  alone would fall back to freshly initialised moving statistics.

Both pairs store a single ``.npz`` archive and load back into a freshly
constructed (already built) model of the same architecture.  Loading bumps
the global weights epoch (via ``set_weights`` / ``set_buffers``), so cached
derived constants such as the folded batch-norm scale/shift are re-derived
on the next fast-path batch instead of serving stale values.

Shape mismatches are reported by array index *and* qualified parameter
name (``weight 3 ('dense/kernel'): ...``), so a wrong-architecture load
points at the offending layer instead of surfacing a bare positional
error.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Tuple, Union

import numpy as np

from .layers.base import Layer

__all__ = [
    "save_weights",
    "load_weights",
    "save_state",
    "load_state",
    "WEIGHT_KEY",
    "BUFFER_KEY",
    "check_array_specs",
    "load_prefixed_arrays",
]

#: Archive key templates shared by every weight container in the repo
#: (these files and the serving tier's ``DetectorCheckpoint`` bundle).
WEIGHT_KEY = "weight_{index:04d}"
BUFFER_KEY = "buffer_{index:04d}"


def _normalise_path(path: Union[str, Path], must_exist: bool) -> Path:
    path = Path(path)
    if must_exist:
        if not path.exists() and path.suffix != ".npz":
            path = path.with_suffix(".npz")
    elif path.suffix != ".npz":
        path = path.with_suffix(".npz")
    return path


def check_array_specs(
    kind: str,
    specs: Sequence[Tuple[str, Tuple[int, ...]]],
    arrays: Sequence[np.ndarray],
    source: str,
) -> None:
    """Validate loaded arrays against ``(name, shape)`` specs.

    Names the offending array index and qualified parameter/buffer name —
    and runs *before* the model is touched, so a failed load mutates
    nothing.  ``source`` labels where the arrays came from (a file name,
    a checkpoint bundle) in the error message.
    """
    if len(specs) != len(arrays):
        raise ValueError(
            f"{kind} count mismatch loading {source}: model has "
            f"{len(specs)} arrays, source has {len(arrays)}"
        )
    for index, ((name, shape), array) in enumerate(zip(specs, arrays)):
        if tuple(array.shape) != shape:
            raise ValueError(
                f"{kind} {index} ({name!r}) in {source}: model expects "
                f"shape {shape}, source has {tuple(array.shape)}"
            )


def load_prefixed_arrays(path: Union[str, Path], prefix: str) -> List[np.ndarray]:
    """All arrays whose key starts with ``prefix``, in sorted-key order."""
    with np.load(path) as archive:
        keys = sorted(key for key in archive.files if key.startswith(prefix))
        return [archive[key] for key in keys]


def save_weights(model: Layer, path: Union[str, Path]) -> Path:
    """Save a model's weights to ``path`` (``.npz`` appended if missing).

    The arrays are stored in the deterministic order produced by
    :meth:`Layer.get_weights`, so loading requires an identically structured
    (already built) model.
    """
    path = _normalise_path(path, must_exist=False)
    weights = model.get_weights()
    if not weights:
        raise ValueError(
            "the model has no weights to save; build it by calling it on data first"
        )
    arrays = {
        WEIGHT_KEY.format(index=index): array
        for index, array in enumerate(weights)
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path


def load_weights(model: Layer, path: Union[str, Path]) -> Layer:
    """Load weights saved by :func:`save_weights` into ``model`` (in place).

    The model must already be built (its parameters created) and have the same
    architecture as the model the weights came from; shape mismatches raise
    ``ValueError`` naming the offending array index and parameter.
    """
    path = _normalise_path(path, must_exist=True)
    weights = load_prefixed_arrays(path, "weight_")
    check_array_specs("weight", model.weight_specs(), weights, path.name)
    model.set_weights(weights)
    return model


def save_state(model: Layer, path: Union[str, Path]) -> Path:
    """Save weights *and* buffers — the model's complete inference state.

    Unlike :func:`save_weights`, the archive also carries the non-trainable
    state arrays (batch-norm moving mean/variance), so a model restored with
    :func:`load_state` produces bitwise-identical inference outputs.
    """
    path = _normalise_path(path, must_exist=False)
    weights = model.get_weights()
    if not weights:
        raise ValueError(
            "the model has no weights to save; build it by calling it on data first"
        )
    arrays = {
        WEIGHT_KEY.format(index=index): array
        for index, array in enumerate(weights)
    }
    for index, buffer in enumerate(model.get_buffers()):
        arrays[BUFFER_KEY.format(index=index)] = buffer
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path


def load_state(model: Layer, path: Union[str, Path]) -> Layer:
    """Load an archive saved by :func:`save_state` into ``model`` (in place).

    Validates every array's shape (weights and buffers) against the model
    before mutating anything, so a failed load leaves the model untouched.
    Accepts plain :func:`save_weights` archives too, in which case the
    buffers keep their current values.
    """
    path = _normalise_path(path, must_exist=True)
    weights = load_prefixed_arrays(path, "weight_")
    buffers = load_prefixed_arrays(path, "buffer_")
    check_array_specs("weight", model.weight_specs(), weights, path.name)
    if buffers:
        check_array_specs("buffer", model.buffer_specs(), buffers, path.name)
    model.set_weights(weights)
    if buffers:
        model.set_buffers(buffers)
    return model
