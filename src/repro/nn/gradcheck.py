"""Numerical gradient checking utilities.

Used by the test suite to confirm that every op's analytic backward pass
matches a central-difference approximation — the usual way to keep a
hand-written autodiff engine honest.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradient"]


def numerical_gradient(
    func: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    index: int,
    epsilon: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient of ``func(inputs).sum()`` w.r.t. ``inputs[index]``."""
    target = inputs[index]
    gradient = np.zeros_like(target.data)
    flat_data = target.data.reshape(-1)
    flat_grad = gradient.reshape(-1)
    for position in range(flat_data.size):
        original = flat_data[position]
        flat_data[position] = original + epsilon
        upper = float(func(inputs).data.sum())
        flat_data[position] = original - epsilon
        lower = float(func(inputs).data.sum())
        flat_data[position] = original
        flat_grad[position] = (upper - lower) / (2.0 * epsilon)
    return gradient


def check_gradient(
    func: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    tolerance: float = 1e-4,
    epsilon: float = 1e-5,
) -> Tuple[bool, float]:
    """Compare analytic and numerical gradients for every input that requires grad.

    Returns
    -------
    (ok, max_error):
        ``ok`` is True when the maximum relative error over all checked inputs
        is below ``tolerance``.
    """
    for tensor in inputs:
        tensor.zero_grad()
    output = func(inputs)
    output.sum().backward()

    max_error = 0.0
    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(func, inputs, index, epsilon=epsilon)
        scale = max(np.abs(numeric).max(), np.abs(analytic).max(), 1.0)
        error = float(np.abs(numeric - analytic).max() / scale)
        max_error = max(max_error, error)
    return max_error < tolerance, max_error
