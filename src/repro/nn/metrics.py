"""Training-time metrics reported by ``Model.fit`` and ``Model.evaluate``.

These are lightweight numpy computations on predictions; the richer
intrusion-detection metrics (detection rate, false-alarm rate) live in
:mod:`repro.metrics`.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

import numpy as np

__all__ = [
    "categorical_accuracy",
    "sparse_categorical_accuracy",
    "binary_accuracy",
    "get_metric",
]


def categorical_accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of samples whose argmax prediction matches the one-hot target."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    return float(np.mean(np.argmax(y_true, axis=-1) == np.argmax(y_pred, axis=-1)))


def sparse_categorical_accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of samples whose argmax prediction matches the integer target."""
    y_true = np.asarray(y_true).reshape(-1)
    y_pred = np.asarray(y_pred)
    return float(np.mean(y_true == np.argmax(y_pred, axis=-1)))


def binary_accuracy(y_true: np.ndarray, y_pred: np.ndarray, threshold: float = 0.5) -> float:
    """Fraction of samples whose thresholded probability matches the binary target."""
    y_true = np.asarray(y_true).reshape(-1)
    y_pred = np.asarray(y_pred).reshape(-1)
    return float(np.mean(y_true == (y_pred >= threshold)))


_REGISTRY: Dict[str, Callable[[np.ndarray, np.ndarray], float]] = {
    "accuracy": categorical_accuracy,
    "categorical_accuracy": categorical_accuracy,
    "sparse_categorical_accuracy": sparse_categorical_accuracy,
    "binary_accuracy": binary_accuracy,
}


def get_metric(identifier: Union[str, Callable]) -> Callable[[np.ndarray, np.ndarray], float]:
    """Resolve a metric from a name or pass a callable through."""
    if callable(identifier):
        return identifier
    try:
        return _REGISTRY[identifier]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown metric {identifier!r}; known metrics: {known}") from exc
