"""Training callbacks: history recording, early stopping and LR scheduling."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

__all__ = ["Callback", "History", "EarlyStopping", "LearningRateScheduler", "CallbackList"]


class Callback:
    """Base class; subclasses override the hooks they care about."""

    def set_model(self, model) -> None:
        self.model = model

    def on_train_begin(self, logs: Optional[Dict[str, float]] = None) -> None:
        pass

    def on_train_end(self, logs: Optional[Dict[str, float]] = None) -> None:
        pass

    def on_epoch_begin(self, epoch: int, logs: Optional[Dict[str, float]] = None) -> None:
        pass

    def on_epoch_end(self, epoch: int, logs: Optional[Dict[str, float]] = None) -> None:
        pass


class History(Callback):
    """Accumulate per-epoch metric values into ``history`` (a dict of lists)."""

    def on_train_begin(self, logs: Optional[Dict[str, float]] = None) -> None:
        self.history: Dict[str, List[float]] = {}
        self.epochs: List[int] = []

    def on_epoch_end(self, epoch: int, logs: Optional[Dict[str, float]] = None) -> None:
        logs = logs or {}
        self.epochs.append(epoch)
        for key, value in logs.items():
            self.history.setdefault(key, []).append(float(value))


class EarlyStopping(Callback):
    """Stop training when a monitored metric stops improving.

    Parameters
    ----------
    monitor:
        Name of the metric to watch (e.g. ``"val_loss"``).
    patience:
        Number of epochs with no improvement before stopping.
    min_delta:
        Minimum change that counts as an improvement.
    mode:
        ``"min"`` (losses) or ``"max"`` (accuracies).
    restore_best_weights:
        Whether to roll the model back to the best epoch's weights.
    """

    def __init__(
        self,
        monitor: str = "val_loss",
        patience: int = 5,
        min_delta: float = 0.0,
        mode: str = "min",
        restore_best_weights: bool = False,
    ) -> None:
        if mode not in ("min", "max"):
            raise ValueError("mode must be 'min' or 'max'")
        self.monitor = monitor
        self.patience = patience
        self.min_delta = abs(min_delta)
        self.mode = mode
        self.restore_best_weights = restore_best_weights

    def on_train_begin(self, logs: Optional[Dict[str, float]] = None) -> None:
        self.best = np.inf if self.mode == "min" else -np.inf
        self.wait = 0
        self.stopped_epoch: Optional[int] = None
        self.best_weights = None

    def _improved(self, value: float) -> bool:
        if self.mode == "min":
            return value < self.best - self.min_delta
        return value > self.best + self.min_delta

    def on_epoch_end(self, epoch: int, logs: Optional[Dict[str, float]] = None) -> None:
        logs = logs or {}
        value = logs.get(self.monitor)
        if value is None:
            return
        if self._improved(value):
            self.best = value
            self.wait = 0
            if self.restore_best_weights:
                self.best_weights = self.model.get_weights()
        else:
            self.wait += 1
            if self.wait >= self.patience:
                self.stopped_epoch = epoch
                self.model.stop_training = True

    def on_train_end(self, logs: Optional[Dict[str, float]] = None) -> None:
        if self.restore_best_weights and self.best_weights is not None:
            self.model.set_weights(self.best_weights)


class LearningRateScheduler(Callback):
    """Adjust the optimizer's learning rate with a ``schedule(epoch, lr)`` function."""

    def __init__(self, schedule) -> None:
        self.schedule = schedule

    def on_epoch_begin(self, epoch: int, logs: Optional[Dict[str, float]] = None) -> None:
        new_rate = float(self.schedule(epoch, self.model.optimizer.learning_rate))
        if new_rate <= 0:
            raise ValueError("learning-rate schedule produced a non-positive rate")
        self.model.optimizer.learning_rate = new_rate


class CallbackList:
    """Dispatch hook calls to a list of callbacks."""

    def __init__(self, callbacks: Optional[List[Callback]], model) -> None:
        self.callbacks = list(callbacks or [])
        for callback in self.callbacks:
            callback.set_model(model)

    def on_train_begin(self, logs=None) -> None:
        for callback in self.callbacks:
            callback.on_train_begin(logs)

    def on_train_end(self, logs=None) -> None:
        for callback in self.callbacks:
            callback.on_train_end(logs)

    def on_epoch_begin(self, epoch: int, logs=None) -> None:
        for callback in self.callbacks:
            callback.on_epoch_begin(epoch, logs)

    def on_epoch_end(self, epoch: int, logs=None) -> None:
        for callback in self.callbacks:
            callback.on_epoch_end(epoch, logs)
