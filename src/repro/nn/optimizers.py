"""Gradient-descent optimizers.

The paper trains every network with RMSprop; SGD, Adam, Adagrad and Adadelta
are provided both for the optimizer ablation bench and for the classical
baselines that use different training dynamics.

An optimizer updates :class:`~repro.nn.tensor.Tensor` parameters in place using
the gradients accumulated by ``backward()``.  State (momenta, running averages)
is keyed by parameter identity.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from .inference import invalidate_weight_caches
from .tensor import Tensor

__all__ = [
    "Optimizer",
    "SGD",
    "RMSprop",
    "Adam",
    "Adagrad",
    "Adadelta",
    "get_optimizer",
]


class Optimizer:
    """Base optimizer handling parameter registration and gradient clipping.

    Parameters
    ----------
    learning_rate:
        Step size used by the parameter update rule.
    clipnorm:
        When set, the global gradient norm is rescaled to at most this value
        before the update (a practical guard for the recurrent layers).
    """

    def __init__(self, learning_rate: float = 0.01, clipnorm: Optional[float] = None) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = float(learning_rate)
        self.clipnorm = clipnorm
        self.iterations = 0
        self._state: Dict[int, Dict[str, np.ndarray]] = {}

    # ------------------------------------------------------------------ #
    def _slot(self, parameter: Tensor) -> Dict[str, np.ndarray]:
        slot = self._state.get(id(parameter))
        if slot is None:
            slot = {}
            self._state[id(parameter)] = slot
        return slot

    def _clip_gradients(self, parameters: List[Tensor]) -> None:
        if self.clipnorm is None:
            return
        total = 0.0
        for parameter in parameters:
            if parameter.grad is not None:
                total += float(np.sum(parameter.grad ** 2))
        norm = np.sqrt(total)
        if norm > self.clipnorm and norm > 0:
            scale = self.clipnorm / norm
            for parameter in parameters:
                if parameter.grad is not None:
                    parameter.grad = parameter.grad * scale

    def step(self, parameters: Iterable[Tensor]) -> None:
        """Apply one update to every parameter that has a gradient."""
        parameters = [p for p in parameters if p.requires_grad]
        self._clip_gradients(parameters)
        for parameter in parameters:
            if parameter.grad is None:
                continue
            self._update(parameter)
        self.iterations += 1
        # The weights changed: constants the inference fast path derived from
        # them (folded batch norm) must be recomputed on the next batch.
        invalidate_weight_caches()

    def zero_grad(self, parameters: Iterable[Tensor]) -> None:
        """Clear the gradients of all parameters."""
        for parameter in parameters:
            parameter.zero_grad()

    def _update(self, parameter: Tensor) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(learning_rate={self.learning_rate})"


class SGD(Optimizer):
    """Stochastic gradient descent with optional (Nesterov) momentum."""

    def __init__(
        self,
        learning_rate: float = 0.01,
        momentum: float = 0.0,
        nesterov: bool = False,
        clipnorm: Optional[float] = None,
    ) -> None:
        super().__init__(learning_rate, clipnorm)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.nesterov = nesterov

    def _update(self, parameter: Tensor) -> None:
        grad = parameter.grad
        if self.momentum == 0.0:
            parameter.data -= self.learning_rate * grad
            return
        slot = self._slot(parameter)
        velocity = slot.get("velocity")
        if velocity is None:
            velocity = np.zeros_like(parameter.data)
        velocity = self.momentum * velocity - self.learning_rate * grad
        slot["velocity"] = velocity
        if self.nesterov:
            parameter.data += self.momentum * velocity - self.learning_rate * grad
        else:
            parameter.data += velocity


class RMSprop(Optimizer):
    """RMSprop (Tieleman & Hinton) — the optimizer used throughout the paper."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        rho: float = 0.9,
        epsilon: float = 1e-7,
        clipnorm: Optional[float] = None,
    ) -> None:
        super().__init__(learning_rate, clipnorm)
        self.rho = rho
        self.epsilon = epsilon

    def _update(self, parameter: Tensor) -> None:
        grad = parameter.grad
        slot = self._slot(parameter)
        average = slot.get("average")
        if average is None:
            average = np.zeros_like(parameter.data)
        average = self.rho * average + (1.0 - self.rho) * grad ** 2
        slot["average"] = average
        parameter.data -= self.learning_rate * grad / (np.sqrt(average) + self.epsilon)


class Adam(Optimizer):
    """Adam optimizer with bias-corrected first and second moments."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta_1: float = 0.9,
        beta_2: float = 0.999,
        epsilon: float = 1e-7,
        clipnorm: Optional[float] = None,
    ) -> None:
        super().__init__(learning_rate, clipnorm)
        self.beta_1 = beta_1
        self.beta_2 = beta_2
        self.epsilon = epsilon

    def _update(self, parameter: Tensor) -> None:
        grad = parameter.grad
        slot = self._slot(parameter)
        m = slot.get("m")
        v = slot.get("v")
        if m is None:
            m = np.zeros_like(parameter.data)
            v = np.zeros_like(parameter.data)
        timestep = self.iterations + 1
        m = self.beta_1 * m + (1.0 - self.beta_1) * grad
        v = self.beta_2 * v + (1.0 - self.beta_2) * grad ** 2
        slot["m"], slot["v"] = m, v
        m_hat = m / (1.0 - self.beta_1 ** timestep)
        v_hat = v / (1.0 - self.beta_2 ** timestep)
        parameter.data -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


class Adagrad(Optimizer):
    """Adagrad: per-parameter learning rates from accumulated squared gradients."""

    def __init__(
        self,
        learning_rate: float = 0.01,
        epsilon: float = 1e-7,
        clipnorm: Optional[float] = None,
    ) -> None:
        super().__init__(learning_rate, clipnorm)
        self.epsilon = epsilon

    def _update(self, parameter: Tensor) -> None:
        grad = parameter.grad
        slot = self._slot(parameter)
        accumulator = slot.get("accumulator")
        if accumulator is None:
            accumulator = np.zeros_like(parameter.data)
        accumulator = accumulator + grad ** 2
        slot["accumulator"] = accumulator
        parameter.data -= self.learning_rate * grad / (np.sqrt(accumulator) + self.epsilon)


class Adadelta(Optimizer):
    """Adadelta (referred to as ADAELTA in the paper's Section III)."""

    def __init__(
        self,
        learning_rate: float = 1.0,
        rho: float = 0.95,
        epsilon: float = 1e-6,
        clipnorm: Optional[float] = None,
    ) -> None:
        super().__init__(learning_rate, clipnorm)
        self.rho = rho
        self.epsilon = epsilon

    def _update(self, parameter: Tensor) -> None:
        grad = parameter.grad
        slot = self._slot(parameter)
        accumulated_grad = slot.get("accumulated_grad")
        accumulated_update = slot.get("accumulated_update")
        if accumulated_grad is None:
            accumulated_grad = np.zeros_like(parameter.data)
            accumulated_update = np.zeros_like(parameter.data)
        accumulated_grad = self.rho * accumulated_grad + (1.0 - self.rho) * grad ** 2
        update = (
            np.sqrt(accumulated_update + self.epsilon)
            / np.sqrt(accumulated_grad + self.epsilon)
            * grad
        )
        accumulated_update = self.rho * accumulated_update + (1.0 - self.rho) * update ** 2
        slot["accumulated_grad"] = accumulated_grad
        slot["accumulated_update"] = accumulated_update
        parameter.data -= self.learning_rate * update


_REGISTRY = {
    "sgd": SGD,
    "rmsprop": RMSprop,
    "adam": Adam,
    "adagrad": Adagrad,
    "adadelta": Adadelta,
}


def get_optimizer(identifier: Union[str, Optimizer], **kwargs) -> Optimizer:
    """Resolve an optimizer from a name (with kwargs) or pass an instance through."""
    if isinstance(identifier, Optimizer):
        return identifier
    try:
        return _REGISTRY[identifier.lower()](**kwargs)
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown optimizer {identifier!r}; known optimizers: {known}"
        ) from exc
