"""Weight initialization schemes.

The schemes mirror the Keras defaults the paper's implementation relied on:
Glorot-uniform for convolution/dense kernels, orthogonal matrices for
recurrent kernels and zeros for biases.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "zeros",
    "ones",
    "constant",
    "random_normal",
    "random_uniform",
    "glorot_uniform",
    "glorot_normal",
    "he_uniform",
    "he_normal",
    "orthogonal",
    "get_initializer",
]

Shape = Tuple[int, ...]
Initializer = Callable[[Shape, np.random.Generator], np.ndarray]


def _fan_in_out(shape: Shape) -> Tuple[int, int]:
    """Compute fan-in/fan-out for dense, conv and recurrent kernel shapes."""
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    # Convolution kernels: (kernel_size, in_channels, out_channels).
    receptive_field = int(np.prod(shape[:-2]))
    return shape[-2] * receptive_field, shape[-1] * receptive_field


def zeros(shape: Shape, rng: np.random.Generator) -> np.ndarray:
    """All-zeros initializer (the conventional bias initializer)."""
    return np.zeros(shape)


def ones(shape: Shape, rng: np.random.Generator) -> np.ndarray:
    """All-ones initializer (used for batch-norm scale parameters)."""
    return np.ones(shape)


def constant(value: float) -> Initializer:
    """Return an initializer that fills the array with ``value``."""

    def initialize(shape: Shape, rng: np.random.Generator) -> np.ndarray:
        return np.full(shape, float(value))

    return initialize


def random_normal(stddev: float = 0.05) -> Initializer:
    """Gaussian initializer with the given standard deviation."""

    def initialize(shape: Shape, rng: np.random.Generator) -> np.ndarray:
        return rng.normal(0.0, stddev, size=shape)

    return initialize


def random_uniform(limit: float = 0.05) -> Initializer:
    """Uniform initializer on ``[-limit, limit]``."""

    def initialize(shape: Shape, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(-limit, limit, size=shape)

    return initialize


def glorot_uniform(shape: Shape, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initializer (Keras default for kernels)."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def glorot_normal(shape: Shape, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initializer."""
    fan_in, fan_out = _fan_in_out(shape)
    stddev = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, stddev, size=shape)


def he_uniform(shape: Shape, rng: np.random.Generator) -> np.ndarray:
    """He uniform initializer, suited to ReLU activations."""
    fan_in, _ = _fan_in_out(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: Shape, rng: np.random.Generator) -> np.ndarray:
    """He normal initializer, suited to ReLU activations."""
    fan_in, _ = _fan_in_out(shape)
    stddev = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, stddev, size=shape)


def orthogonal(shape: Shape, rng: np.random.Generator) -> np.ndarray:
    """Orthogonal initializer (Keras default for recurrent kernels)."""
    if len(shape) < 2:
        raise ValueError("orthogonal initializer requires at least a 2-D shape")
    rows = shape[0]
    cols = int(np.prod(shape[1:]))
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q = q * np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return q[:rows, :cols].reshape(shape)


_REGISTRY: Dict[str, Initializer] = {
    "zeros": zeros,
    "ones": ones,
    "glorot_uniform": glorot_uniform,
    "glorot_normal": glorot_normal,
    "he_uniform": he_uniform,
    "he_normal": he_normal,
    "orthogonal": orthogonal,
}


def get_initializer(identifier: Union[str, Initializer]) -> Initializer:
    """Resolve an initializer from a name or pass a callable through."""
    if callable(identifier):
        return identifier
    try:
        return _REGISTRY[identifier]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown initializer {identifier!r}; known initializers: {known}"
        ) from exc
