"""Reverse-mode automatic differentiation over numpy arrays.

This module is the foundation of the :mod:`repro.nn` framework.  It provides a
:class:`Tensor` class that wraps a ``numpy.ndarray`` and records the operations
applied to it so that gradients can be computed with a single call to
:meth:`Tensor.backward`.

The design follows the classic define-by-run tape approach: every operation
returns a new :class:`Tensor` whose ``_backward`` closure knows how to push the
incoming gradient to the operation's inputs.  ``backward()`` walks the tape in
reverse topological order and accumulates gradients into ``Tensor.grad``.

Broadcasting is supported for the elementwise operations; gradients flowing
into a broadcast input are summed back down to the input's original shape by
:func:`_unbroadcast`.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

__all__ = [
    "Tensor",
    "as_tensor",
    "add",
    "mul",
    "matmul",
    "relu",
    "sigmoid",
    "hard_sigmoid",
    "tanh",
    "exp",
    "log",
    "softmax",
    "log_softmax",
    "concatenate",
    "stack",
    "pad1d",
    "no_grad",
    "same_padding1d",
    "im2col1d",
]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting.

    When an operand of shape ``shape`` was broadcast up to the shape of
    ``grad`` during the forward pass, the gradient of that operand is the sum
    of ``grad`` over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class _GradMode(threading.local):
    """Per-thread switch used by :func:`no_grad` to disable tape recording.

    Thread-local so that concurrent inference threads (the serving worker
    pool) entering and leaving ``no_grad`` at different times cannot
    re-enable taping — or leave it disabled — for each other.
    """

    enabled = True


_grad_mode = _GradMode()


class no_grad:
    """Context manager that disables gradient recording.

    Useful for inference passes (``model.predict``) where building the
    backward graph would only waste memory.  The switch is per-thread.
    """

    def __enter__(self) -> "no_grad":
        self._previous = _grad_mode.enabled
        _grad_mode.enabled = False
        return self

    def __exit__(self, *exc_info) -> None:
        _grad_mode.enabled = self._previous


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64`` by default so that the
        framework's gradient checks are numerically trustworthy.
    requires_grad:
        Whether gradients should be accumulated into this tensor during
        :meth:`backward`.
    name:
        Optional human-readable label used in ``repr`` and error messages.
    """

    __slots__ = ("data", "grad", "requires_grad", "name", "_backward", "_parents")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self.name = name
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------ #
    # Basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return (
            f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{label})"
        )

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------ #
    # Gradient plumbing
    # ------------------------------------------------------------------ #
    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def _accumulate_grad(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.  For
            scalar tensors it defaults to ``1.0``.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient is only supported "
                    f"for scalar tensors, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).astype(np.float64)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            node._accumulate_grad(node_grad)
            if node._backward is None:
                continue
            parent_grads = node._backward(node_grad)
            for parent, parent_grad in zip(node._parents, parent_grads):
                if parent_grad is None:
                    continue
                if not (parent.requires_grad or parent._parents):
                    continue
                existing = grads.get(id(parent))
                if existing is None:
                    grads[id(parent)] = parent_grad
                else:
                    grads[id(parent)] = existing + parent_grad

    # ------------------------------------------------------------------ #
    # Operator overloads
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        return add(self, other)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return add(other, self)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return add(self, mul(other, -1.0))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return add(other, mul(self, -1.0))

    def __mul__(self, other: ArrayLike) -> "Tensor":
        return mul(self, other)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return mul(other, self)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return mul(self, power(other, -1.0))

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return mul(other, power(self, -1.0))

    def __neg__(self) -> "Tensor":
        return mul(self, -1.0)

    def __pow__(self, exponent: float) -> "Tensor":
        return power(self, exponent)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return matmul(self, other)

    def __getitem__(self, index) -> "Tensor":
        return getitem(self, index)

    # ------------------------------------------------------------------ #
    # Convenience methods mirroring the functional API
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return reduce_sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        return reduce_mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return reduce_max(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return reshape(self, shape)

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        return transpose(self, axes)

    @property
    def T(self) -> "Tensor":
        return transpose(self)

    def exp(self) -> "Tensor":
        return exp(self)

    def log(self) -> "Tensor":
        return log(self)

    def sqrt(self) -> "Tensor":
        return power(self, 0.5)

    def relu(self) -> "Tensor":
        return relu(self)

    def sigmoid(self) -> "Tensor":
        return sigmoid(self)

    def tanh(self) -> "Tensor":
        return tanh(self)


def as_tensor(value: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already a tensor)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


def _make_result(
    data: np.ndarray,
    parents: Tuple[Tensor, ...],
    backward: Callable[[np.ndarray], Tuple[Optional[np.ndarray], ...]],
) -> Tensor:
    """Build an op result tensor, attaching the tape entry when recording."""
    result = Tensor(data)
    if _grad_mode.enabled and any(p.requires_grad or p._parents for p in parents):
        result._parents = parents
        result._backward = backward
        result.requires_grad = any(p.requires_grad for p in parents)
    return result


# ---------------------------------------------------------------------- #
# Elementwise arithmetic
# ---------------------------------------------------------------------- #
def add(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise, broadcasting addition."""
    a, b = as_tensor(a), as_tensor(b)
    data = a.data + b.data

    def backward(grad: np.ndarray):
        return _unbroadcast(grad, a.shape), _unbroadcast(grad, b.shape)

    return _make_result(data, (a, b), backward)


def mul(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise, broadcasting multiplication."""
    a, b = as_tensor(a), as_tensor(b)
    data = a.data * b.data

    def backward(grad: np.ndarray):
        return (
            _unbroadcast(grad * b.data, a.shape),
            _unbroadcast(grad * a.data, b.shape),
        )

    return _make_result(data, (a, b), backward)


def power(a: ArrayLike, exponent: float) -> Tensor:
    """Elementwise power with a constant exponent."""
    a = as_tensor(a)
    data = a.data ** exponent

    def backward(grad: np.ndarray):
        return (grad * exponent * a.data ** (exponent - 1.0),)

    return _make_result(data, (a,), backward)


def exp(a: ArrayLike) -> Tensor:
    """Elementwise exponential."""
    a = as_tensor(a)
    data = np.exp(a.data)

    def backward(grad: np.ndarray):
        return (grad * data,)

    return _make_result(data, (a,), backward)


def log(a: ArrayLike) -> Tensor:
    """Elementwise natural logarithm."""
    a = as_tensor(a)
    data = np.log(a.data)

    def backward(grad: np.ndarray):
        return (grad / a.data,)

    return _make_result(data, (a,), backward)


def clip(a: ArrayLike, low: float, high: float) -> Tensor:
    """Clamp values to ``[low, high]``; gradient is passed only inside the range."""
    a = as_tensor(a)
    data = np.clip(a.data, low, high)

    def backward(grad: np.ndarray):
        mask = (a.data >= low) & (a.data <= high)
        return (grad * mask,)

    return _make_result(data, (a,), backward)


# ---------------------------------------------------------------------- #
# Activations
# ---------------------------------------------------------------------- #
def relu(a: ArrayLike) -> Tensor:
    """Rectified linear unit."""
    a = as_tensor(a)
    data = np.maximum(a.data, 0.0)

    def backward(grad: np.ndarray):
        return (grad * (a.data > 0.0),)

    return _make_result(data, (a,), backward)


def sigmoid(a: ArrayLike) -> Tensor:
    """Numerically stable logistic sigmoid."""
    a = as_tensor(a)
    x = a.data
    data = np.where(x >= 0, 1.0 / (1.0 + np.exp(-x)), np.exp(x) / (1.0 + np.exp(x)))

    def backward(grad: np.ndarray):
        return (grad * data * (1.0 - data),)

    return _make_result(data, (a,), backward)


def hard_sigmoid(a: ArrayLike) -> Tensor:
    """Piecewise-linear sigmoid approximation used as the GRU recurrent activation.

    Matches the Keras definition ``max(0, min(1, 0.2 * x + 0.5))``.
    """
    a = as_tensor(a)
    data = np.clip(0.2 * a.data + 0.5, 0.0, 1.0)

    def backward(grad: np.ndarray):
        inside = (a.data > -2.5) & (a.data < 2.5)
        return (grad * 0.2 * inside,)

    return _make_result(data, (a,), backward)


def tanh(a: ArrayLike) -> Tensor:
    """Hyperbolic tangent."""
    a = as_tensor(a)
    data = np.tanh(a.data)

    def backward(grad: np.ndarray):
        return (grad * (1.0 - data ** 2),)

    return _make_result(data, (a,), backward)


def softmax(a: ArrayLike, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (numerically stabilised by max subtraction)."""
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray):
        dot = (grad * data).sum(axis=axis, keepdims=True)
        return (data * (grad - dot),)

    return _make_result(data, (a,), backward)


def log_softmax(a: ArrayLike, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis``."""
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - log_sum

    def backward(grad: np.ndarray):
        softmax_vals = np.exp(data)
        return (grad - softmax_vals * grad.sum(axis=axis, keepdims=True),)

    return _make_result(data, (a,), backward)


# ---------------------------------------------------------------------- #
# Linear algebra
# ---------------------------------------------------------------------- #
def matmul(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Matrix product supporting 2-D operands (and batched left operands)."""
    a, b = as_tensor(a), as_tensor(b)
    data = a.data @ b.data

    def backward(grad: np.ndarray):
        grad_a = grad @ np.swapaxes(b.data, -1, -2)
        grad_b = np.swapaxes(a.data, -1, -2) @ grad
        return _unbroadcast(grad_a, a.shape), _unbroadcast(grad_b, b.shape)

    return _make_result(data, (a, b), backward)


# ---------------------------------------------------------------------- #
# Reductions
# ---------------------------------------------------------------------- #
def reduce_sum(a: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:
    """Sum over ``axis`` (all elements when ``axis`` is None)."""
    a = as_tensor(a)
    data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray):
        if axis is None:
            return (np.broadcast_to(grad, a.shape).astype(np.float64),)
        grad_expanded = grad
        if not keepdims:
            grad_expanded = np.expand_dims(grad, axis=axis)
        return (np.broadcast_to(grad_expanded, a.shape).astype(np.float64),)

    return _make_result(data, (a,), backward)


def reduce_mean(a: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:
    """Mean over ``axis`` (all elements when ``axis`` is None)."""
    a = as_tensor(a)
    data = a.data.mean(axis=axis, keepdims=keepdims)
    if axis is None:
        count = a.data.size
    elif isinstance(axis, tuple):
        count = int(np.prod([a.shape[ax] for ax in axis]))
    else:
        count = a.shape[axis]

    def backward(grad: np.ndarray):
        if axis is None:
            return (np.broadcast_to(grad / count, a.shape).astype(np.float64),)
        grad_expanded = grad
        if not keepdims:
            grad_expanded = np.expand_dims(grad, axis=axis)
        return (
            np.broadcast_to(grad_expanded / count, a.shape).astype(np.float64),
        )

    return _make_result(data, (a,), backward)


def reduce_max(a: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:
    """Maximum over ``axis``; ties split the gradient evenly."""
    a = as_tensor(a)
    data = a.data.max(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray):
        data_expanded = data
        grad_expanded = grad
        if axis is not None and not keepdims:
            data_expanded = np.expand_dims(data, axis=axis)
            grad_expanded = np.expand_dims(grad, axis=axis)
        mask = (a.data == data_expanded).astype(np.float64)
        mask_sum = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
        return (mask / mask_sum * grad_expanded,)

    return _make_result(data, (a,), backward)


# ---------------------------------------------------------------------- #
# Shape manipulation
# ---------------------------------------------------------------------- #
def reshape(a: ArrayLike, shape: Tuple[int, ...]) -> Tensor:
    """Reshape without copying data."""
    a = as_tensor(a)
    data = a.data.reshape(shape)

    def backward(grad: np.ndarray):
        return (grad.reshape(a.shape),)

    return _make_result(data, (a,), backward)


def transpose(a: ArrayLike, axes: Optional[Sequence[int]] = None) -> Tensor:
    """Permute tensor axes (reverse order when ``axes`` is None)."""
    a = as_tensor(a)
    data = np.transpose(a.data, axes)

    def backward(grad: np.ndarray):
        if axes is None:
            return (np.transpose(grad),)
        inverse = np.argsort(axes)
        return (np.transpose(grad, inverse),)

    return _make_result(data, (a,), backward)


def getitem(a: ArrayLike, index) -> Tensor:
    """Tensor indexing/slicing; the gradient is scattered back with ``add.at``."""
    a = as_tensor(a)
    data = a.data[index]

    def backward(grad: np.ndarray):
        full = np.zeros_like(a.data)
        np.add.at(full, index, grad)
        return (full,)

    return _make_result(data, (a,), backward)


def concatenate(tensors: Sequence[ArrayLike], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    boundaries = np.cumsum(sizes)[:-1]

    def backward(grad: np.ndarray):
        return tuple(np.split(grad, boundaries, axis=axis))

    return _make_result(data, tuple(tensors), backward)


def stack(tensors: Sequence[ArrayLike], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray):
        slices = np.split(grad, len(tensors), axis=axis)
        return tuple(np.squeeze(s, axis=axis) for s in slices)

    return _make_result(data, tuple(tensors), backward)


def pad1d(a: ArrayLike, left: int, right: int) -> Tensor:
    """Zero-pad the time axis (axis 1) of a ``(batch, steps, channels)`` tensor."""
    a = as_tensor(a)
    data = np.pad(a.data, ((0, 0), (left, right), (0, 0)))

    def backward(grad: np.ndarray):
        steps = a.shape[1]
        return (grad[:, left:left + steps, :],)

    return _make_result(data, (a,), backward)


# ---------------------------------------------------------------------- #
# Convolution and pooling primitives (1-D, channels-last)
# ---------------------------------------------------------------------- #
def same_padding1d(steps: int, window: int, stride: int) -> Tuple[int, int]:
    """Keras-style ``"same"`` padding for a 1-D window op.

    Returns ``(pad_left, pad_right)`` such that the output length equals
    ``ceil(steps / stride)``.  Shared by the graph ops below and the raw
    inference kernels in :mod:`repro.nn.inference`.
    """
    out_steps = int(np.ceil(steps / stride))
    pad_total = max((out_steps - 1) * stride + window - steps, 0)
    pad_left = pad_total // 2
    return pad_left, pad_total - pad_left


def im2col1d(x: np.ndarray, kernel_size: int, stride: int) -> np.ndarray:
    """Turn ``(batch, steps, channels)`` into ``(batch, out_steps, kernel*channels)``."""
    batch, steps, channels = x.shape
    out_steps = (steps - kernel_size) // stride + 1
    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(batch, out_steps, kernel_size, channels),
        strides=(strides[0], strides[1] * stride, strides[1], strides[2]),
        writeable=False,
    )
    return windows.reshape(batch, out_steps, kernel_size * channels)


# Backwards-compatible private alias (pre-fast-path name).
_im2col1d = im2col1d


def conv1d(
    x: ArrayLike,
    kernel: ArrayLike,
    bias: Optional[ArrayLike] = None,
    stride: int = 1,
    padding: str = "same",
) -> Tensor:
    """1-D convolution over a ``(batch, steps, in_channels)`` input.

    Parameters
    ----------
    kernel:
        Weight tensor of shape ``(kernel_size, in_channels, out_channels)``.
    padding:
        ``"same"`` pads so that ``out_steps == ceil(steps / stride)``;
        ``"valid"`` applies no padding.
    """
    x, kernel = as_tensor(x), as_tensor(kernel)
    kernel_size, in_channels, out_channels = kernel.shape
    batch, steps, channels = x.shape
    if channels != in_channels:
        raise ValueError(
            f"conv1d expected {in_channels} input channels, got {channels}"
        )

    if padding == "same":
        pad_left, pad_right = same_padding1d(steps, kernel_size, stride)
    elif padding == "valid":
        pad_left = pad_right = 0
    else:
        raise ValueError(f"unknown padding mode: {padding!r}")

    x_padded = np.pad(x.data, ((0, 0), (pad_left, pad_right), (0, 0)))
    columns = im2col1d(x_padded, kernel_size, stride)
    kernel_matrix = kernel.data.reshape(kernel_size * in_channels, out_channels)
    data = columns @ kernel_matrix
    if bias is not None:
        bias = as_tensor(bias)
        data = data + bias.data

    padded_steps = x_padded.shape[1]

    def backward(grad: np.ndarray):
        out_steps_actual = grad.shape[1]
        grad_columns = grad @ kernel_matrix.T
        grad_columns = grad_columns.reshape(
            batch, out_steps_actual, kernel_size, in_channels
        )
        grad_x_padded = np.zeros((batch, padded_steps, in_channels))
        for step in range(out_steps_actual):
            start = step * stride
            grad_x_padded[:, start:start + kernel_size, :] += grad_columns[:, step]
        grad_x = grad_x_padded[:, pad_left:pad_left + steps, :]

        grad_kernel = columns.reshape(-1, kernel_size * in_channels).T @ grad.reshape(
            -1, out_channels
        )
        grad_kernel = grad_kernel.reshape(kernel_size, in_channels, out_channels)

        grads = [grad_x, grad_kernel]
        if bias is not None:
            grads.append(grad.sum(axis=(0, 1)))
        return tuple(grads)

    parents = (x, kernel) if bias is None else (x, kernel, bias)
    return _make_result(data, parents, backward)


def max_pool1d(
    x: ArrayLike, pool_size: int = 2, stride: Optional[int] = None, padding: str = "same"
) -> Tensor:
    """1-D max pooling over a ``(batch, steps, channels)`` input."""
    x = as_tensor(x)
    if stride is None:
        stride = pool_size
    batch, steps, channels = x.shape

    if padding == "same":
        pad_left, pad_right = same_padding1d(steps, pool_size, stride)
    elif padding == "valid":
        pad_left = pad_right = 0
    else:
        raise ValueError(f"unknown padding mode: {padding!r}")

    x_padded = np.pad(
        x.data, ((0, 0), (pad_left, pad_right), (0, 0)), constant_values=-np.inf
    )
    padded_steps = x_padded.shape[1]
    out_steps = (padded_steps - pool_size) // stride + 1
    strides = x_padded.strides
    windows = np.lib.stride_tricks.as_strided(
        x_padded,
        shape=(batch, out_steps, pool_size, channels),
        strides=(strides[0], strides[1] * stride, strides[1], strides[2]),
        writeable=False,
    )
    data = windows.max(axis=2)
    argmax = windows.argmax(axis=2)

    def backward(grad: np.ndarray):
        grad_padded = np.zeros((batch, padded_steps, channels))
        batch_idx, channel_idx = np.meshgrid(
            np.arange(batch), np.arange(channels), indexing="ij"
        )
        for step in range(out_steps):
            positions = step * stride + argmax[:, step, :]
            np.add.at(
                grad_padded,
                (batch_idx, positions, channel_idx),
                grad[:, step, :],
            )
        return (grad_padded[:, pad_left:pad_left + steps, :],)

    return _make_result(data, (x,), backward)


def global_average_pool1d(x: ArrayLike) -> Tensor:
    """Average over the time axis of a ``(batch, steps, channels)`` input."""
    return reduce_mean(as_tensor(x), axis=1)


def dropout(x: ArrayLike, rate: float, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: zero activations with probability ``rate`` and rescale."""
    x = as_tensor(x)
    if rate <= 0.0:
        return x
    if rate >= 1.0:
        raise ValueError("dropout rate must be < 1")
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= rate) / (1.0 - rate)
    data = x.data * mask

    def backward(grad: np.ndarray):
        return (grad * mask,)

    return _make_result(data, (x,), backward)


def embedding_lookup(weights: ArrayLike, indices: np.ndarray) -> Tensor:
    """Row lookup into an embedding matrix (used by the HAST-IDS baseline)."""
    weights = as_tensor(weights)
    indices = np.asarray(indices, dtype=np.int64)
    data = weights.data[indices]

    def backward(grad: np.ndarray):
        full = np.zeros_like(weights.data)
        np.add.at(full, indices, grad)
        return (full,)

    return _make_result(data, (weights,), backward)
