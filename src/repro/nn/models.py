"""Keras-style model containers: :class:`Sequential` built on :class:`Model`.

A model is a stack (or composition) of layers plus a training loop.  The API
mirrors the subset of Keras the paper's implementation used: ``compile`` with
an optimizer/loss/metrics, ``fit`` with batching, shuffling and validation
data, ``evaluate`` and ``predict``.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .callbacks import Callback, CallbackList, History
from .layers.base import Layer
from .losses import Loss, get_loss
from .metrics import get_metric
from .optimizers import Optimizer, get_optimizer
from .random import spawn_rng
from .tensor import Tensor, as_tensor, no_grad

__all__ = ["Model", "Sequential"]


class Model(Layer):
    """Base model providing the compile/fit/evaluate/predict training loop.

    Subclasses implement :meth:`call` (and optionally :meth:`build`) exactly
    like a layer; the paper's network builders produce :class:`Sequential`
    instances but the composite Pelican blocks are plain layers that can be
    embedded in either.
    """

    def __init__(self, name: Optional[str] = None, seed: Optional[int] = None) -> None:
        super().__init__(name=name, seed=seed)
        self.optimizer: Optional[Optimizer] = None
        self.loss: Optional[Loss] = None
        self.metric_fns: Dict[str, callable] = {}
        self.stop_training = False
        self.history: Optional[History] = None
        self._shuffle_rng = spawn_rng(seed)

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    def compile(
        self,
        optimizer: Union[str, Optimizer] = "rmsprop",
        loss: Union[str, Loss] = "categorical_crossentropy",
        metrics: Optional[Sequence] = None,
    ) -> None:
        """Configure the optimizer, loss and training metrics."""
        self.optimizer = get_optimizer(optimizer)
        self.loss = get_loss(loss)
        self.metric_fns = {}
        for metric in metrics or []:
            name = metric if isinstance(metric, str) else metric.__name__
            self.metric_fns[name] = get_metric(metric)

    # ------------------------------------------------------------------ #
    # Training loop
    # ------------------------------------------------------------------ #
    def _iterate_batches(
        self,
        x: np.ndarray,
        y: np.ndarray,
        batch_size: int,
        shuffle: bool,
    ) -> Iterable[Tuple[np.ndarray, np.ndarray]]:
        indices = np.arange(len(x))
        if shuffle:
            self._shuffle_rng.shuffle(indices)
        for start in range(0, len(x), batch_size):
            batch = indices[start:start + batch_size]
            yield x[batch], y[batch]

    def train_on_batch(self, x: np.ndarray, y: np.ndarray) -> Dict[str, float]:
        """Run one forward/backward pass and apply an optimizer step."""
        if self.optimizer is None or self.loss is None:
            raise RuntimeError("the model must be compiled before training")
        parameters = self.parameters()
        self.optimizer.zero_grad(parameters)
        predictions = self(x, training=True)
        loss_value = self.loss(y, predictions)
        loss_value.backward()
        self.optimizer.step(parameters)
        logs = {"loss": float(loss_value.data)}
        for name, function in self.metric_fns.items():
            logs[name] = function(y, predictions.data)
        return logs

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 1,
        batch_size: int = 32,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        validation_split: float = 0.0,
        shuffle: bool = True,
        verbose: int = 0,
        callbacks: Optional[List[Callback]] = None,
    ) -> History:
        """Train the model and return the per-epoch :class:`History`.

        Parameters mirror Keras; ``verbose=1`` prints one line per epoch.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(x) != len(y):
            raise ValueError(f"x and y lengths differ: {len(x)} vs {len(y)}")
        if len(x) == 0:
            # Catch this up front: zero batches would otherwise surface as an
            # opaque "Weights sum to zero" ZeroDivisionError from np.average.
            raise ValueError("cannot fit on empty data")
        if epochs <= 0 or batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")

        if validation_data is None and validation_split > 0.0:
            if not 0.0 < validation_split < 1.0:
                raise ValueError("validation_split must be in (0, 1)")
            split = int(len(x) * (1.0 - validation_split))
            x, validation_x = x[:split], x[split:]
            y, validation_y = y[:split], y[split:]
            validation_data = (validation_x, validation_y)

        self.stop_training = False
        self.history = History()
        callback_list = CallbackList([self.history, *(callbacks or [])], self)
        callback_list.on_train_begin()

        for epoch in range(epochs):
            callback_list.on_epoch_begin(epoch)
            epoch_start = time.time()
            batch_losses: List[float] = []
            batch_metrics: Dict[str, List[float]] = {name: [] for name in self.metric_fns}
            batch_sizes: List[int] = []

            for batch_x, batch_y in self._iterate_batches(x, y, batch_size, shuffle):
                logs = self.train_on_batch(batch_x, batch_y)
                batch_losses.append(logs["loss"])
                batch_sizes.append(len(batch_x))
                for name in self.metric_fns:
                    batch_metrics[name].append(logs[name])

            weights = np.asarray(batch_sizes, dtype=np.float64)
            epoch_logs = {"loss": float(np.average(batch_losses, weights=weights))}
            for name, values in batch_metrics.items():
                epoch_logs[name] = float(np.average(values, weights=weights))

            if validation_data is not None:
                validation_logs = self.evaluate(
                    validation_data[0], validation_data[1], batch_size=batch_size
                )
                epoch_logs.update({f"val_{k}": v for k, v in validation_logs.items()})

            callback_list.on_epoch_end(epoch, epoch_logs)
            if verbose:
                elapsed = time.time() - epoch_start
                rendered = " - ".join(f"{k}: {v:.4f}" for k, v in epoch_logs.items())
                print(f"Epoch {epoch + 1}/{epochs} [{elapsed:.1f}s] {rendered}")
            if self.stop_training:
                break

        callback_list.on_train_end()
        return self.history

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def predict(
        self, x: np.ndarray, batch_size: int = 256, fast: bool = False
    ) -> np.ndarray:
        """Forward pass in inference mode, returning a numpy array.

        With ``fast=True`` the batches run through the graph-free inference
        path (:meth:`~repro.nn.layers.base.Layer.fast_call`): no autodiff
        tape nodes are built and the layers use raw-numpy kernels.  The
        contract is exact inference equivalence — dropout is a no-op and
        batch norm uses moving statistics on both paths, and the returned
        probabilities match the graph path to float64 round-off (well within
        1e-6).  Layers without a fast kernel transparently fall back to the
        graph path.

        Empty inputs return a correctly shaped ``(0, ...)`` array instead of
        crashing downstream ``argmax`` calls — empty batches are routine in
        a streaming service.
        """
        x = np.asarray(x, dtype=np.float64)
        if len(x) == 0:
            return self._predict_empty(x)
        outputs: List[np.ndarray] = []
        with no_grad():
            for start in range(0, len(x), batch_size):
                batch = x[start:start + batch_size]
                if fast:
                    outputs.append(np.asarray(self.fast_forward(batch)))
                else:
                    outputs.append(self(batch, training=False).data)
        return np.concatenate(outputs, axis=0)

    def _predict_empty(self, x: np.ndarray) -> np.ndarray:
        """Shape-correct prediction for a zero-record batch."""
        if x.ndim >= 2:
            # The feature dimensions are present, so a (possibly building)
            # forward pass yields the exact output shape.
            with no_grad():
                return self(x, training=False).data
        width = self._inferred_output_width()
        if width is None:
            raise ValueError(
                "cannot infer the output shape for an empty input without "
                "feature dimensions on an unbuilt model; pass an array shaped "
                "(0, ...features) or build the model first"
            )
        return np.zeros((0, width))

    def _inferred_output_width(self) -> Optional[int]:
        """Output width taken from the last ``units``-bearing (sub-)layer."""

        def walk(layer: Layer) -> Optional[int]:
            for sublayer in reversed(layer.sublayers):
                width = walk(sublayer)
                if width is not None:
                    return width
            units = getattr(layer, "units", None)
            return int(units) if units else None

        return walk(self)

    def predict_classes(
        self, x: np.ndarray, batch_size: int = 256, fast: bool = False
    ) -> np.ndarray:
        """Argmax class predictions (empty inputs yield an empty int array)."""
        return np.argmax(self.predict(x, batch_size=batch_size, fast=fast), axis=-1)

    def evaluate(
        self, x: np.ndarray, y: np.ndarray, batch_size: int = 256
    ) -> Dict[str, float]:
        """Compute loss and metrics on held-out data (inference mode)."""
        if self.loss is None:
            raise RuntimeError("the model must be compiled before evaluation")
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(x) == 0:
            raise ValueError("cannot evaluate on empty data")
        losses: List[float] = []
        sizes: List[int] = []
        predictions: List[np.ndarray] = []
        with no_grad():
            for start in range(0, len(x), batch_size):
                batch_x = x[start:start + batch_size]
                batch_y = y[start:start + batch_size]
                batch_pred = self(batch_x, training=False)
                losses.append(float(self.loss(batch_y, batch_pred).data))
                sizes.append(len(batch_x))
                predictions.append(batch_pred.data)
        merged = np.concatenate(predictions, axis=0)
        logs = {"loss": float(np.average(losses, weights=sizes))}
        for name, function in self.metric_fns.items():
            logs[name] = function(y, merged)
        return logs

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        """Return a printable summary of the model's layers and parameter counts."""
        lines = [f"Model: {self.name}", "-" * 60]
        for layer in self.sublayers:
            lines.append(f"{layer.name:<40s} params: {layer.count_params():>10,d}")
        lines.append("-" * 60)
        lines.append(f"Total trainable parameters: {self.count_params():,d}")
        return "\n".join(lines)


class Sequential(Model):
    """A linear stack of layers, built lazily on the first input."""

    def __init__(
        self,
        layers: Optional[Sequence[Layer]] = None,
        name: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(name=name, seed=seed)
        for layer in layers or []:
            self.add(layer)

    def add(self, layer: Layer) -> None:
        """Append a layer to the stack."""
        if not isinstance(layer, Layer):
            raise TypeError(f"expected a Layer, got {type(layer).__name__}")
        self.register(layer)

    @property
    def layers(self) -> List[Layer]:
        return self.sublayers

    def call(self, inputs: Tensor, training: bool = False) -> Tensor:
        outputs = inputs
        for layer in self.sublayers:
            outputs = layer(outputs, training=training)
        return outputs

    def fast_call(self, inputs: np.ndarray) -> np.ndarray:
        outputs = inputs
        for layer in self._sublayers:
            outputs = layer.fast_forward(outputs)
        return outputs
