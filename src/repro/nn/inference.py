"""Graph-free inference kernels — the ``Model.predict(..., fast=True)`` path.

The autodiff :class:`~repro.nn.tensor.Tensor` pays for its flexibility on
every operation: a wrapper object, a ``float64`` coercion and a backward
closure are allocated even under :class:`~repro.nn.tensor.no_grad`.  For a
serving workload that only ever runs the forward pass, none of that is
needed.  This module provides *raw* numpy kernels with the exact same
numerics as the tape ops, and every layer exposes a ``fast_call`` method
built on them (see :meth:`repro.nn.layers.base.Layer.fast_call`).

The fast-path contract:

* raw ``numpy.ndarray`` in, raw ``numpy.ndarray`` out — no ``Tensor`` graph
  nodes are constructed anywhere on the path, and ``float32`` inputs are
  accepted as-is (the tape path would silently upcast them);
* inference semantics only: dropout is a no-op and batch normalization uses
  its moving statistics, exactly like the tape path with ``training=False``;
* outputs match the tape path to float64 round-off (well inside the 1e-6
  tolerance the serving tests assert), because the kernels apply the same
  formulas — the only deliberate algebraic changes are exact ones
  (zero-padding contributions and all-zero initial recurrent states are
  skipped instead of multiplied out).

Layers without a specialised ``fast_call`` transparently fall back to the
tape path under ``no_grad``, so custom layers keep working.

Derived-constant caching
------------------------

Some fast kernels use constants *derived* from the weights — batch
normalization folds ``(gamma, beta, moving_mean, moving_variance)`` into a
single scale and shift.  Re-deriving them on every batch is wasted work in a
serving loop where the weights never change between requests.  The module
keeps a global, monotonically increasing **weights epoch**; layers cache
their derived constants tagged with the epoch and recompute only after the
epoch moves.  Everything that mutates weights bumps it:
:meth:`repro.nn.optimizers.Optimizer.step`, :meth:`repro.nn.layers.base.Layer.set_weights`
and the training-mode batch-norm forward (which updates the moving
statistics).  The counter is process-global and only ever increments, so
concurrent serving workers at worst recompute once — never serve stale
constants after training resumed.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Tuple, Union

import numpy as np

from . import tensor as ops
from .tensor import no_grad, same_padding1d

__all__ = [
    "RAW_ACTIVATIONS",
    "get_raw_activation",
    "raw_conv1d",
    "raw_max_pool1d",
    "raw_batch_norm",
    "fold_batch_norm",
    "weights_epoch",
    "invalidate_weight_caches",
]


# ---------------------------------------------------------------------- #
# Weights epoch — invalidation for cached derived constants
# ---------------------------------------------------------------------- #
_weights_epoch = 0
_weights_epoch_lock = threading.Lock()


def weights_epoch() -> int:
    """Current weights epoch; caches tagged with an older value are stale."""
    return _weights_epoch


def invalidate_weight_caches() -> int:
    """Bump the weights epoch and return it.

    Called by every code path that mutates network weights (optimizer steps,
    weight loading, training-mode batch-norm statistics updates) so that the
    fast path's cached derived constants are re-derived on the next batch.
    """
    global _weights_epoch
    with _weights_epoch_lock:
        _weights_epoch += 1
        return _weights_epoch


# ---------------------------------------------------------------------- #
# Raw activations (same formulas as the tape ops in repro.nn.tensor)
# ---------------------------------------------------------------------- #
def _raw_linear(x: np.ndarray) -> np.ndarray:
    return x


def _raw_relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _raw_sigmoid(x: np.ndarray) -> np.ndarray:
    return np.where(x >= 0, 1.0 / (1.0 + np.exp(-x)), np.exp(x) / (1.0 + np.exp(x)))


def _raw_hard_sigmoid(x: np.ndarray) -> np.ndarray:
    return np.clip(0.2 * x + 0.5, 0.0, 1.0)


def _raw_tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def _raw_softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=-1, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=-1, keepdims=True)


RAW_ACTIVATIONS = {
    "linear": _raw_linear,
    "relu": _raw_relu,
    "sigmoid": _raw_sigmoid,
    "hard_sigmoid": _raw_hard_sigmoid,
    "tanh": _raw_tanh,
    "softmax": _raw_softmax,
}

#: Tape-op -> raw-kernel mapping, so layers constructed with a callable from
#: ``repro.nn.tensor`` (rather than a name) still get the fast kernel.
_TENSOR_OP_TO_RAW = {
    ops.relu: _raw_relu,
    ops.sigmoid: _raw_sigmoid,
    ops.hard_sigmoid: _raw_hard_sigmoid,
    ops.tanh: _raw_tanh,
    ops.softmax: _raw_softmax,
}


def get_raw_activation(
    identifier: Union[str, Callable, None]
) -> Callable[[np.ndarray], np.ndarray]:
    """Resolve the raw-ndarray counterpart of an activation identifier.

    Unknown callables are wrapped so they run on the tape path under
    ``no_grad`` — slower, but the fast path stays correct for custom
    activations.
    """
    if identifier is None:
        return _raw_linear
    if isinstance(identifier, str):
        try:
            return RAW_ACTIVATIONS[identifier]
        except KeyError as exc:
            known = ", ".join(sorted(RAW_ACTIVATIONS))
            raise ValueError(
                f"unknown activation {identifier!r}; known activations: {known}"
            ) from exc
    if identifier in _TENSOR_OP_TO_RAW:
        return _TENSOR_OP_TO_RAW[identifier]

    def fallback(x: np.ndarray) -> np.ndarray:
        with no_grad():
            return identifier(ops.as_tensor(x)).data

    return fallback


# ---------------------------------------------------------------------- #
# Raw window kernels
# ---------------------------------------------------------------------- #
def raw_conv1d(
    x: np.ndarray,
    kernel: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    padding: str = "same",
) -> np.ndarray:
    """1-D convolution over ``(batch, steps, channels)`` without tape nodes.

    Numerically identical to :func:`repro.nn.tensor.conv1d`'s forward pass,
    but computed as a sum of per-tap matmuls that skip the zero-padded
    region entirely.  For the paper's 1-time-step inputs this reduces the
    contraction from ``kernel_size * channels`` to ``channels`` rows — the
    padding rows contribute exactly zero, so the results are bitwise equal.
    """
    kernel_size, in_channels, out_channels = kernel.shape
    batch, steps, channels = x.shape
    if channels != in_channels:
        raise ValueError(
            f"conv1d expected {in_channels} input channels, got {channels}"
        )
    if padding == "same":
        pad_left, pad_right = same_padding1d(steps, kernel_size, stride)
    elif padding == "valid":
        pad_left = pad_right = 0
    else:
        raise ValueError(f"unknown padding mode: {padding!r}")

    padded_steps = steps + pad_left + pad_right
    out_steps = (padded_steps - kernel_size) // stride + 1

    output = np.zeros((batch, out_steps, out_channels), dtype=np.result_type(x, kernel))
    for tap in range(kernel_size):
        # Input index feeding output step t through this tap: t*stride + tap - pad_left.
        first_in = tap - pad_left
        t_min = -(first_in // stride) if first_in < 0 else 0  # ceil(-first_in/stride)
        t_max = (steps - 1 - first_in) // stride  # largest t with index < steps
        if t_max < 0:
            continue
        t_max = min(t_max, out_steps - 1)
        if t_max < t_min:
            continue
        in_start = t_min * stride + first_in
        in_stop = t_max * stride + first_in + 1
        output[:, t_min:t_max + 1, :] += x[:, in_start:in_stop:stride, :] @ kernel[tap]
    if bias is not None:
        output = output + bias
    return output


def raw_max_pool1d(
    x: np.ndarray,
    pool_size: int = 2,
    stride: Optional[int] = None,
    padding: str = "same",
) -> np.ndarray:
    """1-D max pooling over ``(batch, steps, channels)`` without tape nodes."""
    if stride is None:
        stride = pool_size
    batch, steps, channels = x.shape
    if padding == "same":
        pad_left, pad_right = same_padding1d(steps, pool_size, stride)
    elif padding == "valid":
        pad_left = pad_right = 0
    else:
        raise ValueError(f"unknown padding mode: {padding!r}")

    padded_steps = steps + pad_left + pad_right
    out_steps = (padded_steps - pool_size) // stride + 1
    if steps == 1 and out_steps == 1:
        # Every window covers the single real step (padding is -inf).
        return x
    x_padded = np.pad(
        x, ((0, 0), (pad_left, pad_right), (0, 0)), constant_values=-np.inf
    )
    strides = x_padded.strides
    windows = np.lib.stride_tricks.as_strided(
        x_padded,
        shape=(batch, out_steps, pool_size, channels),
        strides=(strides[0], strides[1] * stride, strides[1], strides[2]),
        writeable=False,
    )
    return windows.max(axis=2)


def fold_batch_norm(
    gamma: np.ndarray,
    beta: np.ndarray,
    mean: np.ndarray,
    variance: np.ndarray,
    epsilon: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold inference-mode batch norm into ``(scale, shift)``.

    ``BN(x) == x * scale + shift`` exactly; layers cache the pair tagged with
    :func:`weights_epoch` so the square root is paid once per weight state
    instead of once per served batch.
    """
    scale = gamma / np.sqrt(variance + epsilon)
    return scale, beta - mean * scale


def raw_batch_norm(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    mean: np.ndarray,
    variance: np.ndarray,
    epsilon: float,
) -> np.ndarray:
    """Inference-mode batch norm folded into one scale and one shift."""
    scale, shift = fold_batch_norm(gamma, beta, mean, variance, epsilon)
    return x * scale + shift
