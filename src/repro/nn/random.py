"""Central random-number management for reproducible experiments.

All stochastic components of the framework (weight initialization, dropout
masks, data shuffling, synthetic dataset generation) draw from generators
created here so that a single :func:`seed` call makes an entire experiment
deterministic.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["seed", "get_rng", "spawn_rng"]

_DEFAULT_SEED = 0
_GLOBAL_RNG = np.random.default_rng(_DEFAULT_SEED)


def seed(value: int) -> None:
    """Re-seed the framework-wide random generator."""
    global _GLOBAL_RNG
    _GLOBAL_RNG = np.random.default_rng(value)


def get_rng() -> np.random.Generator:
    """Return the framework-wide random generator."""
    return _GLOBAL_RNG


def spawn_rng(seed_value: Optional[int] = None) -> np.random.Generator:
    """Create an independent generator.

    When ``seed_value`` is given the new generator is seeded with it directly;
    otherwise it is derived from the global generator so repeated calls give
    different but reproducible streams.
    """
    if seed_value is not None:
        return np.random.default_rng(seed_value)
    return np.random.default_rng(_GLOBAL_RNG.integers(0, 2**63 - 1))
