"""Synthetic UNSW-NB15 dataset.

UNSW-NB15 (Moustafa & Slay, 2015) is the modern IDS corpus used by the paper:
257,673 records across 10 classes (Normal plus 9 attack families) whose 42 raw
features expand to 196 columns after one-hot encoding.

In the paper UNSW-NB15 is clearly the harder dataset (≈86 % accuracy versus
≈99 % on NSL-KDD, with several attack families overlapping Normal traffic), so
its synthetic stand-in uses closer class prototypes, a much larger ambiguous
fraction and noisier categorical columns.
"""

from __future__ import annotations

from typing import Optional

from .dataset import TrafficRecords
from .generator import DifficultyProfile, TrafficGenerator
from .schema import UNSWNB15_SCHEMA

__all__ = ["UNSWNB15_PROFILE", "unswnb15_generator", "load_unswnb15"]

#: Difficulty calibrated so that classifiers land in the bands the paper
#: reports for UNSW-NB15 (Table IV / Table V): detection rate in the 90s, a
#: false-alarm rate of a few percent, but multi-class accuracy only in the
#: 80s because the attack families overlap each other (small family_spread).
UNSWNB15_PROFILE = DifficultyProfile(
    separation=2.4,
    family_spread=0.75,
    latent_rank=8,
    noise_scale=1.3,
    ambiguity=0.035,
    categorical_concentration=0.6,
    categorical_noise=0.10,
)

#: Seed of the canonical synthetic population.
_POPULATION_SEED = 20151101


def unswnb15_generator(
    profile: Optional[DifficultyProfile] = None, seed: int = _POPULATION_SEED
) -> TrafficGenerator:
    """Return the generator behind the synthetic UNSW-NB15 population."""
    return TrafficGenerator(UNSWNB15_SCHEMA, profile or UNSWNB15_PROFILE, seed=seed)


def load_unswnb15(
    n_records: int = 10_000,
    seed: int = 0,
    profile: Optional[DifficultyProfile] = None,
) -> TrafficRecords:
    """Generate a synthetic UNSW-NB15 sample.

    Parameters mirror :func:`repro.data.nslkdd.load_nslkdd`.
    """
    return unswnb15_generator(profile).sample(n_records, seed=seed)
