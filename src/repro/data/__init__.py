"""``repro.data`` — dataset schemas and synthetic traffic generators.

The subpackage stands in for the NSL-KDD and UNSW-NB15 corpora used by the
paper (see DESIGN.md for the substitution rationale).  The public entry points
are :func:`load_nslkdd` and :func:`load_unswnb15`, which return
:class:`TrafficRecords` batches ready for :mod:`repro.preprocessing`.

:class:`TrafficStream` is the low-level episodic stream driver; scenario
*presets* (floods, slow-rate DoS, prior shifts, the cross-dataset fleet)
live in :mod:`repro.scenarios`, which compiles declarative segment lists
onto it.
"""

from .dataset import TrafficRecords
from .generator import (
    DifficultyProfile,
    StreamBatch,
    StreamPhase,
    TrafficGenerator,
    TrafficStream,
)
from .nslkdd import NSLKDD_PROFILE, load_nslkdd, nslkdd_generator
from .schema import (
    NSLKDD_SCHEMA,
    UNSWNB15_SCHEMA,
    CategoricalFeature,
    DatasetSchema,
    NumericFeature,
    get_schema,
)
from .unswnb15 import UNSWNB15_PROFILE, load_unswnb15, unswnb15_generator

__all__ = [
    "TrafficRecords",
    "TrafficGenerator",
    "DifficultyProfile",
    "StreamPhase",
    "StreamBatch",
    "TrafficStream",
    "DatasetSchema",
    "NumericFeature",
    "CategoricalFeature",
    "get_schema",
    "NSLKDD_SCHEMA",
    "UNSWNB15_SCHEMA",
    "NSLKDD_PROFILE",
    "UNSWNB15_PROFILE",
    "load_nslkdd",
    "load_unswnb15",
    "nslkdd_generator",
    "unswnb15_generator",
]
