"""Feature schemas for the NSL-KDD and UNSW-NB15 datasets.

The real datasets cannot be shipped in this offline reproduction, so
:mod:`repro.data.generator` synthesises records against the schemas defined
here.  The schemas reproduce the structural properties the paper's pipeline
depends on:

* the split between numeric and categorical columns;
* the categorical cardinalities — after one-hot encoding the NSL-KDD records
  expand to 121 features and the UNSW-NB15 records to 196 features, matching
  the input shapes ``(1, 121)`` and ``(1, 196)`` reported in Section V-C;
* the class taxonomy (5 classes for NSL-KDD, 10 for UNSW-NB15) and the heavy
  class imbalance of the originals.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "CategoricalFeature",
    "NumericFeature",
    "DatasetSchema",
    "NSLKDD_SCHEMA",
    "UNSWNB15_SCHEMA",
    "get_schema",
    "EVENT_CATEGORICAL_BINDINGS",
    "WELL_KNOWN_PORTS",
    "service_port",
]

#: Packet-trace provenance of each categorical column: which
#: :class:`repro.ingest.PacketEvents` field carries the value and whether a
#: flow's ``first`` or ``last`` packet is authoritative.  Protocol and
#: service are properties of the connection attempt (first packet); the
#: NSL-KDD ``flag`` and UNSW-NB15 ``state`` columns summarise how the
#: connection *ended* (last packet).
EVENT_CATEGORICAL_BINDINGS: Dict[str, Tuple[str, str]] = {
    "protocol_type": ("protocol", "first"),
    "proto": ("protocol", "first"),
    "service": ("service", "first"),
    "flag": ("state", "last"),
    "state": ("state", "last"),
}

#: IANA(-ish) destination ports for the service names the two corpora use;
#: services without a well-known port get a stable CRC-derived one.
WELL_KNOWN_PORTS: Dict[str, int] = {
    "http": 80, "http_443": 443, "http_8001": 8001, "smtp": 25,
    "ftp": 21, "ftp_data": 20, "ftp-data": 20, "telnet": 23, "ssh": 22,
    "domain": 53, "domain_u": 53, "dns": 53, "pop_3": 110, "pop3": 110,
    "pop_2": 109, "imap4": 143, "snmp": 161, "ldap": 389, "ssl": 443,
    "irc": 6667, "IRC": 6667, "X11": 6000, "dhcp": 67, "radius": 1812,
    "nntp": 119, "whois": 43, "finger": 79, "auth": 113, "time": 37,
    "daytime": 13, "discard": 9, "echo": 7, "systat": 11, "netstat": 15,
    "exec": 512, "login": 513, "shell": 514, "printer": 515, "efs": 520,
    "klogin": 543, "kshell": 544, "sql_net": 1521, "bgp": 179,
    "sunrpc": 111, "tftp_u": 69, "netbios_ns": 137, "netbios_dgm": 138,
    "netbios_ssn": 139, "gopher": 70, "uucp": 540, "courier": 530,
}


def service_port(service: str) -> int:
    """Deterministic destination port for a service name.

    Well-known services map to their registered port; everything else gets
    a stable ephemeral port derived from ``zlib.crc32`` (*not* ``hash()``,
    which is randomised per process and would break cross-process
    determinism of lowered event traces).
    """
    port = WELL_KNOWN_PORTS.get(service)
    if port is not None:
        return port
    return 1024 + zlib.crc32(str(service).encode("utf-8")) % 48_000


@dataclass(frozen=True)
class NumericFeature:
    """A numeric column.

    Parameters
    ----------
    name:
        Column name (taken from the real dataset's documentation).
    distribution:
        Shape family used by the generator: ``"lognormal"`` for heavy-tailed
        counters (bytes, durations, counts) or ``"normal"`` for rates and
        bounded statistics.
    """

    name: str
    distribution: str = "normal"


@dataclass(frozen=True)
class CategoricalFeature:
    """A categorical column with a fixed set of possible values."""

    name: str
    values: Tuple[str, ...]

    @property
    def cardinality(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class DatasetSchema:
    """Full description of a dataset: columns, classes and class priors."""

    name: str
    numeric_features: Tuple[NumericFeature, ...]
    categorical_features: Tuple[CategoricalFeature, ...]
    classes: Tuple[str, ...]
    class_priors: Dict[str, float]
    normal_class: str = "normal"
    total_records: int = 0

    def __post_init__(self) -> None:
        if self.normal_class not in self.classes:
            raise ValueError(
                f"normal class {self.normal_class!r} missing from classes {self.classes}"
            )
        missing = [c for c in self.classes if c not in self.class_priors]
        if missing:
            raise ValueError(f"class priors missing for {missing}")
        total = sum(self.class_priors.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"class priors must sum to 1, got {total}")

    @property
    def numeric_names(self) -> List[str]:
        return [feature.name for feature in self.numeric_features]

    @property
    def categorical_names(self) -> List[str]:
        return [feature.name for feature in self.categorical_features]

    @property
    def attack_classes(self) -> List[str]:
        return [c for c in self.classes if c != self.normal_class]

    @property
    def num_raw_features(self) -> int:
        """Number of columns before one-hot encoding."""
        return len(self.numeric_features) + len(self.categorical_features)

    @property
    def num_encoded_features(self) -> int:
        """Number of columns after one-hot encoding every categorical feature."""
        return len(self.numeric_features) + sum(
            feature.cardinality for feature in self.categorical_features
        )

    def event_binding(self, column: str) -> Tuple[str, str]:
        """Packet-trace provenance of a categorical column: the
        :class:`repro.ingest.PacketEvents` field carrying it and whether a
        flow's ``"first"`` or ``"last"`` packet is authoritative."""
        if column not in self.categorical_names:
            raise KeyError(
                f"{column!r} is not a categorical column of {self.name!r}"
            )
        try:
            return EVENT_CATEGORICAL_BINDINGS[column]
        except KeyError as exc:
            raise KeyError(
                f"no event binding declared for categorical column {column!r}"
            ) from exc


# --------------------------------------------------------------------------- #
# NSL-KDD
# --------------------------------------------------------------------------- #
# The 38 numeric columns of the real dataset (KDD'99 connection features).
_NSLKDD_NUMERIC = tuple(
    NumericFeature(name, distribution)
    for name, distribution in [
        ("duration", "lognormal"),
        ("src_bytes", "lognormal"),
        ("dst_bytes", "lognormal"),
        ("land", "normal"),
        ("wrong_fragment", "lognormal"),
        ("urgent", "lognormal"),
        ("hot", "lognormal"),
        ("num_failed_logins", "lognormal"),
        ("logged_in", "normal"),
        ("num_compromised", "lognormal"),
        ("root_shell", "normal"),
        ("su_attempted", "normal"),
        ("num_root", "lognormal"),
        ("num_file_creations", "lognormal"),
        ("num_shells", "lognormal"),
        ("num_access_files", "lognormal"),
        ("num_outbound_cmds", "normal"),
        ("is_host_login", "normal"),
        ("is_guest_login", "normal"),
        ("count", "lognormal"),
        ("srv_count", "lognormal"),
        ("serror_rate", "normal"),
        ("srv_serror_rate", "normal"),
        ("rerror_rate", "normal"),
        ("srv_rerror_rate", "normal"),
        ("same_srv_rate", "normal"),
        ("diff_srv_rate", "normal"),
        ("srv_diff_host_rate", "normal"),
        ("dst_host_count", "lognormal"),
        ("dst_host_srv_count", "lognormal"),
        ("dst_host_same_srv_rate", "normal"),
        ("dst_host_diff_srv_rate", "normal"),
        ("dst_host_same_src_port_rate", "normal"),
        ("dst_host_srv_diff_host_rate", "normal"),
        ("dst_host_serror_rate", "normal"),
        ("dst_host_srv_serror_rate", "normal"),
        ("dst_host_rerror_rate", "normal"),
        ("dst_host_srv_rerror_rate", "normal"),
    ]
)

# 69 services are modelled (a representative subset of the real dataset's ~70)
# so that 38 numeric + 3 protocols + 69 services + 11 flags = 121 encoded
# features, matching the paper's (1, 121) NSL-KDD input shape.
_NSLKDD_SERVICES = (
    "http", "smtp", "ftp", "ftp_data", "telnet", "ssh", "domain_u", "domain",
    "private", "ecr_i", "eco_i", "finger", "auth", "pop_3", "pop_2", "imap4",
    "other", "whois", "time", "nntp", "netbios_ns", "netbios_dgm", "netbios_ssn",
    "uucp", "uucp_path", "vmnet", "mtp", "sunrpc", "gopher", "remote_job",
    "link", "ctf", "supdup", "name", "daytime", "discard", "echo", "systat",
    "netstat", "ssl", "csnet_ns", "iso_tsap", "hostnames", "exec", "login",
    "shell", "printer", "efs", "courier", "klogin", "kshell", "nnsp", "http_443",
    "ldap", "sql_net", "X11", "IRC", "Z39_50", "urp_i", "urh_i", "red_i",
    "tim_i", "pm_dump", "tftp_u", "rje", "bgp", "http_8001", "aol", "harvest",
)

_NSLKDD_FLAGS = (
    "SF", "S0", "REJ", "RSTR", "RSTO", "SH", "S1", "S2", "S3", "RSTOS0", "OTH",
)

NSLKDD_SCHEMA = DatasetSchema(
    name="nsl-kdd",
    numeric_features=_NSLKDD_NUMERIC,
    categorical_features=(
        CategoricalFeature("protocol_type", ("tcp", "udp", "icmp")),
        CategoricalFeature("service", _NSLKDD_SERVICES),
        CategoricalFeature("flag", _NSLKDD_FLAGS),
    ),
    classes=("normal", "dos", "probe", "r2l", "u2r"),
    class_priors={
        # Proportions of the full (train + test) NSL-KDD corpus.
        "normal": 0.5190,
        "dos": 0.3645,
        "probe": 0.0954,
        "r2l": 0.0204,
        "u2r": 0.0007,
    },
    normal_class="normal",
    total_records=148_516,
)


# --------------------------------------------------------------------------- #
# UNSW-NB15
# --------------------------------------------------------------------------- #
_UNSW_NUMERIC = tuple(
    NumericFeature(name, distribution)
    for name, distribution in [
        ("dur", "lognormal"),
        ("spkts", "lognormal"),
        ("dpkts", "lognormal"),
        ("sbytes", "lognormal"),
        ("dbytes", "lognormal"),
        ("rate", "lognormal"),
        ("sttl", "normal"),
        ("dttl", "normal"),
        ("sload", "lognormal"),
        ("dload", "lognormal"),
        ("sloss", "lognormal"),
        ("dloss", "lognormal"),
        ("sinpkt", "lognormal"),
        ("dinpkt", "lognormal"),
        ("sjit", "lognormal"),
        ("djit", "lognormal"),
        ("swin", "normal"),
        ("stcpb", "lognormal"),
        ("dtcpb", "lognormal"),
        ("dwin", "normal"),
        ("tcprtt", "normal"),
        ("synack", "normal"),
        ("ackdat", "normal"),
        ("smean", "lognormal"),
        ("dmean", "lognormal"),
        ("trans_depth", "lognormal"),
        ("response_body_len", "lognormal"),
        ("ct_srv_src", "lognormal"),
        ("ct_state_ttl", "normal"),
        ("ct_dst_ltm", "lognormal"),
        ("ct_src_dport_ltm", "lognormal"),
        ("ct_dst_sport_ltm", "lognormal"),
        ("ct_dst_src_ltm", "lognormal"),
        ("is_ftp_login", "normal"),
        ("ct_ftp_cmd", "lognormal"),
        ("ct_flw_http_mthd", "lognormal"),
        ("ct_src_ltm", "lognormal"),
        ("ct_srv_dst", "lognormal"),
        ("is_sm_ips_ports", "normal"),
    ]
)

# The real UNSW-NB15 'proto' column has ~130 values.  131 protocol values are
# modelled so that 39 numeric + 131 proto + 13 service + 13 state = 196 encoded
# features, matching the paper's (1, 196) UNSW-NB15 input shape.
_COMMON_PROTOCOLS = (
    "tcp", "udp", "icmp", "arp", "ospf", "igmp", "gre", "sctp", "rsvp", "esp",
    "ah", "pim", "ipv6", "ipv6-frag", "ipv6-icmp", "ipv6-no", "ipv6-opts",
    "ipv6-route", "ip", "ggp", "egp", "swipe", "mobile", "sun-nd", "unas",
)
_UNSW_PROTOCOLS = _COMMON_PROTOCOLS + tuple(
    f"proto_{index:03d}" for index in range(131 - len(_COMMON_PROTOCOLS))
)

_UNSW_SERVICES = (
    "-", "http", "ftp", "ftp-data", "smtp", "pop3", "dns", "snmp", "ssl",
    "ssh", "dhcp", "irc", "radius",
)

_UNSW_STATES = (
    "FIN", "CON", "INT", "REQ", "RST", "ECO", "CLO", "ACC", "PAR", "URN",
    "no", "ECR", "TXD",
)

UNSWNB15_SCHEMA = DatasetSchema(
    name="unsw-nb15",
    numeric_features=_UNSW_NUMERIC,
    categorical_features=(
        CategoricalFeature("proto", _UNSW_PROTOCOLS),
        CategoricalFeature("service", _UNSW_SERVICES),
        CategoricalFeature("state", _UNSW_STATES),
    ),
    classes=(
        "normal",
        "generic",
        "exploits",
        "fuzzers",
        "dos",
        "reconnaissance",
        "analysis",
        "backdoor",
        "shellcode",
        "worms",
    ),
    class_priors={
        # Proportions of the combined UNSW-NB15 train+test partitions.
        "normal": 0.3609,
        "generic": 0.2285,
        "exploits": 0.1728,
        "fuzzers": 0.0941,
        "dos": 0.0635,
        "reconnaissance": 0.0543,
        "analysis": 0.0104,
        "backdoor": 0.0090,
        "shellcode": 0.0059,
        "worms": 0.0006,
    },
    normal_class="normal",
    total_records=257_673,
)

_SCHEMAS = {
    "nsl-kdd": NSLKDD_SCHEMA,
    "nslkdd": NSLKDD_SCHEMA,
    "unsw-nb15": UNSWNB15_SCHEMA,
    "unswnb15": UNSWNB15_SCHEMA,
}


def get_schema(name: str) -> DatasetSchema:
    """Look up a dataset schema by (case-insensitive) name."""
    try:
        return _SCHEMAS[name.lower().replace("_", "-")]
    except KeyError as exc:
        known = ", ".join(sorted({s.name for s in _SCHEMAS.values()}))
        raise ValueError(f"unknown dataset {name!r}; known datasets: {known}") from exc
