"""Class-conditional synthetic traffic generator.

The published evaluation uses the NSL-KDD and UNSW-NB15 corpora, which cannot
be redistributed with this reproduction.  The generator in this module
replaces them with a *class-conditional generative model* that preserves the
statistical structure the paper's experiments exercise:

* each traffic class (normal, DoS, probe, ...) has its own prototype in the
  numeric feature space plus a class-specific low-rank covariance, so classes
  form separable but overlapping clusters;
* heavy-tailed counters (bytes, durations, packet counts) are produced by
  exponentiating the latent values, mirroring the log-normal marginals of the
  real datasets;
* categorical columns (protocol, service, TCP state/flag) follow per-class
  multinomial distributions, so one-hot encoding yields genuinely informative
  sparse features;
* a configurable *ambiguity* fraction of records is drawn from the pooled
  mixture instead of the class conditional, producing the irreducible error
  that keeps accuracy away from 100 % (substantially higher for UNSW-NB15,
  which is the harder dataset in the paper);
* class priors reproduce the heavy imbalance of the originals (U2R and Worms
  are vanishingly rare).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from .dataset import TrafficRecords
from .schema import CategoricalFeature, DatasetSchema

__all__ = [
    "DifficultyProfile",
    "TrafficGenerator",
    "StreamPhase",
    "StreamBatch",
    "TrafficStream",
]


@dataclass(frozen=True)
class DifficultyProfile:
    """Knobs controlling how hard the synthetic classification problem is.

    Parameters
    ----------
    separation:
        Distance between the normal-traffic prototype and the centre of the
        attack cluster.  This controls the binary attack-vs-normal difficulty
        (detection rate and false-alarm rate).
    family_spread:
        Distance of each attack family's prototype from the attack-cluster
        centre.  This controls how confusable the attack classes are *among
        themselves* (multi-class accuracy) without affecting the binary
        problem much — the key structural property of UNSW-NB15, where the
        paper reports DR ≈ 98 % and FAR ≈ 1.3 % but only ≈ 86 % accuracy.
    latent_rank:
        Number of latent factors behind the numeric features; controls how
        correlated the columns are within a class.
    noise_scale:
        Standard deviation of the per-feature idiosyncratic noise.
    ambiguity:
        Fraction of records whose numeric features are drawn from the pooled
        (class-agnostic) distribution.  These records carry little usable
        signal and bound the achievable accuracy.
    categorical_concentration:
        Dirichlet concentration of the per-class categorical distributions.
        Small values give each class a few dominant category values (highly
        informative); large values make the categorical columns uninformative.
    categorical_noise:
        Probability that a categorical value is resampled uniformly at random,
        independent of the class.
    """

    separation: float = 2.5
    family_spread: float = 2.0
    latent_rank: int = 6
    noise_scale: float = 1.0
    ambiguity: float = 0.02
    categorical_concentration: float = 0.3
    categorical_noise: float = 0.05

    def __post_init__(self) -> None:
        if self.separation <= 0:
            raise ValueError("separation must be positive")
        if self.family_spread < 0:
            raise ValueError("family_spread must be non-negative")
        if self.latent_rank <= 0:
            raise ValueError("latent_rank must be positive")
        if not 0.0 <= self.ambiguity < 1.0:
            raise ValueError("ambiguity must be in [0, 1)")
        if not 0.0 <= self.categorical_noise < 1.0:
            raise ValueError("categorical_noise must be in [0, 1)")
        if self.categorical_concentration <= 0:
            raise ValueError("categorical_concentration must be positive")


class TrafficGenerator:
    """Generate :class:`TrafficRecords` for a dataset schema.

    The generator is deterministic given ``(schema, profile, seed)``: the
    class prototypes, covariance loadings and categorical distributions are
    drawn once at construction time from a dedicated generator so that
    different sample sizes share the same underlying population.
    """

    def __init__(
        self,
        schema: DatasetSchema,
        profile: Optional[DifficultyProfile] = None,
        seed: int = 0,
        class_priors: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.schema = schema
        self.profile = profile or DifficultyProfile()
        self.seed = seed
        self._population_rng = np.random.default_rng(seed)
        priors = dict(class_priors or schema.class_priors)
        missing = [c for c in schema.classes if c not in priors]
        if missing:
            raise ValueError(f"class priors missing for {missing}")
        total = float(sum(priors.values()))
        self.class_priors = {name: priors[name] / total for name in schema.classes}
        self._build_population()

    # ------------------------------------------------------------------ #
    # Population construction
    # ------------------------------------------------------------------ #
    def _build_population(self) -> None:
        rng = self._population_rng
        profile = self.profile
        n_numeric = len(self.schema.numeric_features)
        n_classes = len(self.schema.classes)

        # Shared baseline profile (what "typical traffic" looks like).  Normal
        # traffic sits at the baseline; attack families form a cluster whose
        # centre is `separation` away from normal, and each family sits
        # `family_spread` away from that centre.  This mirrors the structure
        # of the real corpora: attacks are distinguishable from normal traffic
        # (binary DR/FAR) but attack families overlap each other
        # (multi-class accuracy).
        baseline = rng.normal(0.0, 1.0, size=n_numeric)

        def unit_direction() -> np.ndarray:
            direction = rng.normal(0.0, 1.0, size=n_numeric)
            return direction / max(np.linalg.norm(direction) / np.sqrt(n_numeric), 1e-12)

        attack_centre = baseline + profile.separation * unit_direction()
        self._class_means: Dict[str, np.ndarray] = {}
        self._class_loadings: Dict[str, np.ndarray] = {}
        for class_name in self.schema.classes:
            if class_name == self.schema.normal_class:
                self._class_means[class_name] = baseline
            else:
                self._class_means[class_name] = (
                    attack_centre + profile.family_spread * unit_direction()
                )
            loadings = rng.normal(
                0.0, 1.0, size=(profile.latent_rank, n_numeric)
            ) / np.sqrt(profile.latent_rank)
            self._class_loadings[class_name] = loadings

        # The pooled mean/covariance used for "ambiguous" records.
        self._pooled_mean = np.mean(
            [self._class_means[c] for c in self.schema.classes], axis=0
        )
        self._pooled_loadings = rng.normal(
            0.0, 1.0, size=(profile.latent_rank, n_numeric)
        ) / np.sqrt(profile.latent_rank)

        # Per-class categorical distributions drawn from a Dirichlet prior.
        self._categorical_tables: Dict[str, Dict[str, np.ndarray]] = {}
        for feature in self.schema.categorical_features:
            per_class: Dict[str, np.ndarray] = {}
            for class_name in self.schema.classes:
                concentration = np.full(
                    feature.cardinality, profile.categorical_concentration
                )
                per_class[class_name] = rng.dirichlet(concentration)
            self._categorical_tables[feature.name] = per_class

        self._lognormal_mask = np.array(
            [feature.distribution == "lognormal" for feature in self.schema.numeric_features]
        )

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def _sample_numeric(
        self, class_name: str, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        profile = self.profile
        n_numeric = len(self.schema.numeric_features)

        latent = rng.normal(0.0, 1.0, size=(count, profile.latent_rank))
        values = (
            self._class_means[class_name]
            + latent @ self._class_loadings[class_name]
            + rng.normal(0.0, profile.noise_scale, size=(count, n_numeric))
        )

        if profile.ambiguity > 0.0:
            ambiguous = rng.random(count) < profile.ambiguity
            n_ambiguous = int(ambiguous.sum())
            if n_ambiguous:
                latent_ambiguous = rng.normal(0.0, 1.0, size=(n_ambiguous, profile.latent_rank))
                values[ambiguous] = (
                    self._pooled_mean
                    + latent_ambiguous @ self._pooled_loadings
                    + rng.normal(
                        0.0, profile.noise_scale * 1.5, size=(n_ambiguous, n_numeric)
                    )
                )

        # Heavy-tailed counters: exponentiate (and keep the scale moderate so
        # standardisation in preprocessing behaves like it does on real data).
        if self._lognormal_mask.any():
            values[:, self._lognormal_mask] = np.exp(
                np.clip(values[:, self._lognormal_mask], -10.0, 10.0)
            )
        return values

    def _sample_categorical(
        self, class_name: str, count: int, rng: np.random.Generator
    ) -> Dict[str, np.ndarray]:
        profile = self.profile
        columns: Dict[str, np.ndarray] = {}
        for feature in self.schema.categorical_features:
            probabilities = self._categorical_tables[feature.name][class_name]
            choices = rng.choice(feature.cardinality, size=count, p=probabilities)
            if profile.categorical_noise > 0.0:
                noisy = rng.random(count) < profile.categorical_noise
                n_noisy = int(noisy.sum())
                if n_noisy:
                    choices[noisy] = rng.integers(0, feature.cardinality, size=n_noisy)
            values = np.asarray(feature.values, dtype=object)[choices]
            columns[feature.name] = values
        return columns

    def sample_class(
        self, class_name: str, count: int, rng: Optional[np.random.Generator] = None
    ) -> TrafficRecords:
        """Generate ``count`` records of a single class."""
        if class_name not in self.schema.classes:
            raise ValueError(
                f"unknown class {class_name!r}; schema classes: {self.schema.classes}"
            )
        if count <= 0:
            raise ValueError("count must be positive")
        rng = rng or np.random.default_rng(self._population_rng.integers(0, 2**63 - 1))
        return TrafficRecords(
            schema=self.schema,
            numeric=self._sample_numeric(class_name, count, rng),
            categorical=self._sample_categorical(class_name, count, rng),
            labels=np.array([class_name] * count, dtype=object),
        )

    def evasion_direction(self, attack_class: Optional[str] = None) -> np.ndarray:
        """Unit drift direction pointing from the attack cluster towards normal.

        Shifting traffic along this direction is the *evasion* covariate
        drift: attack records migrate into the feature region the detector
        learned as benign, so DR degrades while FAR stays put — unlike a
        random drift direction, whose effect depends on which side of the
        decision boundary it happens to point at.  ``attack_class`` narrows
        the origin to one family; by default the attack-cluster centre
        (mean of all attack prototypes) is used.

        Heavy-tailed (lognormal) feature components are zeroed: those
        columns live on an exponentiated scale where a prototype-space
        offset does not translate, so the direction stays meaningful in
        record space.  Normalised like the stream's internal drift
        direction (norm ``sqrt(n_numeric)``), so ``drift_scale`` values are
        comparable between the two.
        """
        if attack_class is not None:
            if attack_class not in self.schema.attack_classes:
                raise ValueError(
                    f"unknown attack class {attack_class!r}; choices: "
                    f"{self.schema.attack_classes}"
                )
            origin = self._class_means[attack_class]
        else:
            origin = np.mean(
                [self._class_means[c] for c in self.schema.attack_classes],
                axis=0,
            )
        direction = self._class_means[self.schema.normal_class] - origin
        direction = np.where(self._lognormal_mask, 0.0, direction)
        n_numeric = len(direction)
        return direction / max(
            np.linalg.norm(direction) / np.sqrt(n_numeric), 1e-12
        )

    def lower_to_events(
        self,
        records: TrafficRecords,
        seed: int = 0,
        base_time: float = 0.0,
    ):
        """Lower featurized records to a seeded packet-event trace.

        The packet-event emission mode: the returned
        :class:`~repro.ingest.PacketEvents` trace aggregates back to
        ``records`` bit for bit through a replay-mode
        :class:`~repro.ingest.FlowFeatureExtractor` (see
        :mod:`repro.ingest.lowering` for the contract).
        """
        from ..ingest.lowering import lower_records

        return lower_records(
            records, np.random.default_rng(seed), base_time=base_time
        )

    def sample(
        self,
        n_records: int,
        seed: Optional[int] = None,
        min_per_class: int = 2,
    ) -> TrafficRecords:
        """Generate a mixed batch of ``n_records`` following the class priors.

        ``min_per_class`` guarantees that even the rarest classes (U2R in
        NSL-KDD, Worms in UNSW-NB15) appear at least a couple of times in
        small evaluation subsets, matching how the paper's k-fold splits always
        contain a handful of rare-attack records.
        """
        if n_records <= 0:
            raise ValueError("n_records must be positive")
        rng = np.random.default_rng(
            seed if seed is not None else self._population_rng.integers(0, 2**63 - 1)
        )

        class_names = list(self.schema.classes)
        priors = np.array([self.class_priors[name] for name in class_names])
        counts = np.floor(priors * n_records).astype(int)
        counts = np.maximum(counts, min(min_per_class, max(n_records // len(class_names), 1)))
        # Adjust the most common class so the totals add up.
        counts[int(np.argmax(counts))] += n_records - int(counts.sum())
        if counts.min() <= 0:
            raise ValueError(
                "n_records is too small to represent every class; "
                f"need at least {len(class_names) * min_per_class} records"
            )

        parts = [
            self.sample_class(name, int(count), rng)
            for name, count in zip(class_names, counts)
        ]
        return TrafficRecords.concatenate(parts).shuffled(rng)


# ---------------------------------------------------------------------- #
# Streaming scenarios
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class StreamPhase:
    """One episode of a :class:`TrafficStream` scenario.

    Parameters
    ----------
    name:
        Label attached to every batch of the phase (used by the serving
        layer's per-phase monitoring).
    batches:
        Number of record batches the phase emits.
    mix:
        Mapping ``class name -> weight`` describing the traffic composition
        at the start of the phase; weights are normalised, classes omitted
        get weight zero.
    end_mix:
        Optional composition at the *end* of the phase.  When given, the mix
        is linearly interpolated batch-by-batch — this is how gradual drift
        scenarios (e.g. an attack slowly ramping up inside benign traffic)
        are expressed.
    drift_scale:
        Magnitude of a gradual covariate shift applied to the numeric
        features: batch ``i`` is offset by ``drift_start + drift_scale *
        progress`` along a fixed random direction drawn from the stream's
        seed, where progress ramps 0 → 1 across the phase.  This models the
        feature drift that degrades a deployed detector without any label
        change.
    drift_start:
        Baseline drift offset the phase starts from.  A phase following a
        drift ramp can keep the accumulated shift (covariate drift does not
        undo itself when the ramp ends) by starting where the previous phase
        finished; :mod:`repro.scenarios` threads this automatically.
    rate_hint:
        Advisory target rate in records/second for replay-style pacing.
        Ignored by :class:`TrafficStream` itself (batches are emitted as fast
        as the consumer pulls them) but carried through so load harnesses and
        the scenario suite can report the intended intensity — the
        low-PPS/flood distinction of the dpdk_100g attack generator.
    """

    name: str
    batches: int
    mix: Mapping[str, float]
    end_mix: Optional[Mapping[str, float]] = None
    drift_scale: float = 0.0
    drift_start: float = 0.0
    rate_hint: Optional[float] = None

    def __post_init__(self) -> None:
        if self.batches <= 0:
            raise ValueError("a stream phase must emit at least one batch")
        for mapping in (self.mix, self.end_mix):
            if mapping is None:
                continue
            if not mapping:
                raise ValueError("a phase mix cannot be empty")
            if any(weight < 0 for weight in mapping.values()):
                raise ValueError("mix weights must be non-negative")
            if sum(mapping.values()) <= 0:
                raise ValueError("mix weights must sum to a positive value")
        if self.drift_scale < 0:
            raise ValueError("drift_scale must be non-negative")
        if self.drift_start < 0:
            raise ValueError("drift_start must be non-negative")
        if self.rate_hint is not None and self.rate_hint <= 0:
            raise ValueError("rate_hint must be positive when given")


@dataclass(frozen=True)
class StreamBatch:
    """A batch emitted by :class:`TrafficStream`.

    ``index`` is the global batch number, ``phase_index`` the position inside
    the phase, and ``mix`` the resolved (normalised, possibly interpolated)
    class composition the batch was drawn from.
    """

    records: TrafficRecords
    phase: str
    index: int
    phase_index: int
    mix: Dict[str, float]


class TrafficStream:
    """Episodic scenario driver on top of :class:`TrafficGenerator`.

    Emits a deterministic (seeded) sequence of mixed benign/attack record
    batches: a steady benign baseline, flood-style attack bursts at
    configurable mix ratios, and gradual drift.  This is the workload the
    :class:`repro.serving.DetectionService` is exercised under — the
    streaming stand-in for the replayed-PCAP load tests the DDoS literature
    uses.

    The stream is re-iterable: every call to :meth:`batches` (or ``iter``)
    replays exactly the same sequence.
    """

    def __init__(
        self,
        generator: TrafficGenerator,
        phases: Sequence[StreamPhase],
        batch_size: int = 64,
        seed: int = 0,
        drift_direction: Optional[np.ndarray] = None,
    ) -> None:
        if not phases:
            raise ValueError("a TrafficStream needs at least one phase")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        known = set(generator.schema.classes)
        for phase in phases:
            for mapping in (phase.mix, phase.end_mix) if phase.end_mix else (phase.mix,):
                unknown = set(mapping) - known
                if unknown:
                    raise ValueError(
                        f"phase {phase.name!r} references unknown classes: "
                        f"{sorted(unknown)}"
                    )
        self.generator = generator
        self.phases = list(phases)
        self.batch_size = int(batch_size)
        self.seed = int(seed)
        if drift_direction is not None:
            drift_direction = np.asarray(drift_direction, dtype=np.float64)
            n_numeric = len(generator.schema.numeric_features)
            if drift_direction.shape != (n_numeric,):
                raise ValueError(
                    f"drift_direction must have shape ({n_numeric},), got "
                    f"{drift_direction.shape}"
                )
        # None keeps the classic behaviour: a random unit direction drawn
        # from the stream seed.  An explicit direction (e.g.
        # TrafficGenerator.evasion_direction) aims the covariate shift.
        self.drift_direction = drift_direction

    # ------------------------------------------------------------------ #
    @property
    def schema(self) -> DatasetSchema:
        return self.generator.schema

    @property
    def total_batches(self) -> int:
        return sum(phase.batches for phase in self.phases)

    @property
    def total_records(self) -> int:
        return self.total_batches * self.batch_size

    def __iter__(self) -> Iterator[StreamBatch]:
        return self.batches()

    @staticmethod
    def _resolve_mix(
        phase: StreamPhase, progress: float, class_names: Sequence[str]
    ) -> Dict[str, float]:
        mix = {name: float(phase.mix.get(name, 0.0)) for name in class_names}
        if phase.end_mix is not None:
            end = {name: float(phase.end_mix.get(name, 0.0)) for name in class_names}
            mix = {
                name: (1.0 - progress) * mix[name] + progress * end[name]
                for name in class_names
            }
        total = sum(mix.values())
        return {name: weight / total for name, weight in mix.items()}

    def batches(self) -> Iterator[StreamBatch]:
        """Yield the scenario's batches (deterministic for a given seed)."""
        rng = np.random.default_rng(self.seed)
        n_numeric = len(self.schema.numeric_features)
        # The random direction is always drawn so the generator state (and
        # therefore every sampled record) is identical whether or not an
        # explicit direction overrides it.
        drift_direction = rng.normal(0.0, 1.0, size=n_numeric)
        drift_direction /= max(np.linalg.norm(drift_direction) / np.sqrt(n_numeric), 1e-12)
        if self.drift_direction is not None:
            drift_direction = self.drift_direction

        class_names = list(self.schema.classes)
        index = 0
        for phase in self.phases:
            for phase_index in range(phase.batches):
                # Progress ramps 0 -> 1 across the phase; a single-batch phase
                # jumps straight to its end state (otherwise end_mix and
                # drift_scale would be silently ignored).
                if phase.batches == 1:
                    progress = 1.0
                else:
                    progress = phase_index / (phase.batches - 1)
                mix = self._resolve_mix(phase, progress, class_names)
                probabilities = np.array([mix[name] for name in class_names])
                counts = rng.multinomial(self.batch_size, probabilities)
                parts = [
                    self.generator.sample_class(name, int(count), rng)
                    for name, count in zip(class_names, counts)
                    if count > 0
                ]
                records = TrafficRecords.concatenate(parts).shuffled(rng)
                if phase.drift_scale > 0.0 or phase.drift_start != 0.0:
                    offset = phase.drift_start + phase.drift_scale * progress
                    records.numeric = records.numeric + (offset * drift_direction)
                yield StreamBatch(
                    records=records,
                    phase=phase.name,
                    index=index,
                    phase_index=phase_index,
                    mix=mix,
                )
                index += 1

    # ------------------------------------------------------------------ #
    # Preset scenarios live in :mod:`repro.scenarios.presets`; the
    # classmethods below are compatibility wrappers kept so existing call
    # sites (`TrafficStream.flood_scenario(...)`) continue to work unchanged.
    @classmethod
    def flood_scenario(
        cls,
        generator: TrafficGenerator,
        batch_size: int = 64,
        seed: int = 0,
        attack_class: Optional[str] = None,
        baseline_batches: int = 6,
        burst_batches: int = 4,
        attack_fraction: float = 0.7,
        drift_batches: int = 6,
        drift_scale: float = 1.5,
    ) -> "TrafficStream":
        """Preset scenario: benign baseline, three flood bursts, then drift.

        Thin wrapper around :func:`repro.scenarios.flood_scenario` (see its
        docstring); emits exactly the same batches as the pre-refactor
        hand-rolled phase list.
        """
        from ..scenarios.presets import flood_scenario

        return cls._rewrap(
            flood_scenario(
                generator,
                batch_size=batch_size,
                seed=seed,
                attack_class=attack_class,
                baseline_batches=baseline_batches,
                burst_batches=burst_batches,
                attack_fraction=attack_fraction,
                drift_batches=drift_batches,
                drift_scale=drift_scale,
            )
        )

    @classmethod
    def probe_sweep_scenario(
        cls,
        generator: TrafficGenerator,
        batch_size: int = 64,
        seed: int = 0,
        probe_class: Optional[str] = None,
        baseline_batches: int = 4,
        sweep_batches: int = 8,
        scan_batches: int = 3,
        sweep_fraction: float = 0.15,
        scan_fraction: float = 0.5,
    ) -> "TrafficStream":
        """Preset scenario: low-and-slow reconnaissance instead of a flood.

        Thin wrapper around :func:`repro.scenarios.probe_sweep_scenario`
        (see its docstring); emits exactly the same batches as the
        pre-refactor hand-rolled phase list.
        """
        from ..scenarios.presets import probe_sweep_scenario

        return cls._rewrap(
            probe_sweep_scenario(
                generator,
                batch_size=batch_size,
                seed=seed,
                probe_class=probe_class,
                baseline_batches=baseline_batches,
                sweep_batches=sweep_batches,
                scan_batches=scan_batches,
                sweep_fraction=sweep_fraction,
                scan_fraction=scan_fraction,
            )
        )

    def packet_events(self, window: int = 100):
        """Packet-event emission mode: this scenario, lowered to events.

        Returns a :class:`~repro.ingest.EventTrafficStream` wrapping this
        stream — ``event_batches()`` yields each phase as a seeded packet
        trace, while iterating it still yields :class:`StreamBatch` values
        (each trace re-aggregated through a fresh flow extractor) that
        equal this stream's batches bit for bit, so every serving
        execution model consumes it unchanged.
        """
        from ..ingest.lowering import EventTrafficStream

        return EventTrafficStream(self, window=window)

    @classmethod
    def _rewrap(cls, stream: "TrafficStream") -> "TrafficStream":
        """Rebuild a preset's stream as ``cls`` so subclasses stay subclasses
        (the pre-refactor classmethods constructed ``cls(...)`` directly)."""
        if type(stream) is cls:
            return stream
        return cls(
            stream.generator,
            stream.phases,
            batch_size=stream.batch_size,
            seed=stream.seed,
            drift_direction=stream.drift_direction,
        )
