"""Synthetic NSL-KDD dataset.

NSL-KDD (Tavallaee et al., 2009) is the de-duplicated revision of KDD'99 used
by the paper.  The paper uses 148,516 records across 5 classes (Normal, DoS,
Probe, R2L, U2R) with 41 raw features that expand to 121 columns after one-hot
encoding.

The paper achieves ~99 % accuracy on NSL-KDD, so its synthetic stand-in is
configured as the *easier* of the two datasets: well-separated class
prototypes and a small ambiguous fraction.
"""

from __future__ import annotations

from typing import Optional

from .dataset import TrafficRecords
from .generator import DifficultyProfile, TrafficGenerator
from .schema import NSLKDD_SCHEMA

__all__ = ["NSLKDD_PROFILE", "nslkdd_generator", "load_nslkdd"]

#: Difficulty calibrated so that a well-trained classifier reaches the high-90s
#: accuracy regime the paper reports for NSL-KDD (Table III).
NSLKDD_PROFILE = DifficultyProfile(
    separation=3.2,
    family_spread=2.6,
    latent_rank=6,
    noise_scale=1.0,
    ambiguity=0.008,
    categorical_concentration=0.25,
    categorical_noise=0.03,
)

#: Seed of the canonical synthetic population (fixed so every experiment in the
#: repository draws from the same underlying distribution).
_POPULATION_SEED = 20200523


def nslkdd_generator(
    profile: Optional[DifficultyProfile] = None, seed: int = _POPULATION_SEED
) -> TrafficGenerator:
    """Return the generator behind the synthetic NSL-KDD population."""
    return TrafficGenerator(NSLKDD_SCHEMA, profile or NSLKDD_PROFILE, seed=seed)


def load_nslkdd(
    n_records: int = 10_000,
    seed: int = 0,
    profile: Optional[DifficultyProfile] = None,
) -> TrafficRecords:
    """Generate a synthetic NSL-KDD sample.

    Parameters
    ----------
    n_records:
        Number of records to draw.  The paper uses the full 148,516-record
        corpus; the experiment harness defaults to a few thousand records so
        the pure-numpy networks train in reasonable time.
    seed:
        Seed for the record draw (the population itself is fixed).
    profile:
        Override the difficulty profile (used by tests and ablations).
    """
    return nslkdd_generator(profile).sample(n_records, seed=seed)
