"""In-memory container for network-traffic records.

The real datasets ship as CSV files that the paper loads with Pandas; this
reproduction has neither the files nor Pandas, so :class:`TrafficRecords`
plays the role of the dataframe: a column-oriented store with numeric and
categorical columns plus per-record class labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .schema import DatasetSchema

__all__ = ["TrafficRecords"]


@dataclass
class TrafficRecords:
    """A batch of traffic records conforming to a :class:`DatasetSchema`.

    Attributes
    ----------
    schema:
        The dataset schema the records conform to.
    numeric:
        Array of shape ``(n_records, n_numeric_features)``.
    categorical:
        Mapping from categorical column name to an object array of string
        values, each of length ``n_records``.
    labels:
        Object array of class names (e.g. ``"normal"``, ``"dos"``).
    """

    schema: DatasetSchema
    numeric: np.ndarray
    categorical: Dict[str, np.ndarray]
    labels: np.ndarray

    def __post_init__(self) -> None:
        self.numeric = np.asarray(self.numeric, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=object)
        if self.numeric.ndim != 2:
            raise ValueError("numeric must be a 2-D array (records x features)")
        expected_numeric = len(self.schema.numeric_features)
        if self.numeric.shape[1] != expected_numeric:
            raise ValueError(
                f"expected {expected_numeric} numeric columns, got {self.numeric.shape[1]}"
            )
        n_records = self.numeric.shape[0]
        if len(self.labels) != n_records:
            raise ValueError("labels length does not match the number of records")
        expected_categorical = set(self.schema.categorical_names)
        if set(self.categorical) != expected_categorical:
            raise ValueError(
                f"categorical columns {sorted(self.categorical)} do not match the "
                f"schema's {sorted(expected_categorical)}"
            )
        for name, column in self.categorical.items():
            column = np.asarray(column, dtype=object)
            if len(column) != n_records:
                raise ValueError(f"categorical column {name!r} has the wrong length")
            self.categorical[name] = column
        unknown = set(np.unique(self.labels)) - set(self.schema.classes)
        if unknown:
            raise ValueError(f"labels contain classes not in the schema: {sorted(unknown)}")

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.numeric.shape[0]

    @property
    def n_records(self) -> int:
        return len(self)

    @property
    def class_indices(self) -> np.ndarray:
        """Integer class labels in schema order (0 = first class in the schema)."""
        mapping = {name: index for index, name in enumerate(self.schema.classes)}
        return np.array([mapping[label] for label in self.labels], dtype=np.int64)

    @property
    def binary_labels(self) -> np.ndarray:
        """1 for attack records, 0 for normal traffic."""
        return (self.labels != self.schema.normal_class).astype(np.int64)

    def class_counts(self) -> Dict[str, int]:
        """Number of records per class (classes with zero records included)."""
        counts = {name: 0 for name in self.schema.classes}
        unique, tally = np.unique(self.labels, return_counts=True)
        counts.update({str(name): int(count) for name, count in zip(unique, tally)})
        return counts

    def column(self, name: str) -> np.ndarray:
        """Return a single column (numeric or categorical) by name."""
        if name in self.schema.numeric_names:
            return self.numeric[:, self.schema.numeric_names.index(name)]
        if name in self.categorical:
            return self.categorical[name]
        raise KeyError(f"unknown column {name!r}")

    # ------------------------------------------------------------------ #
    # Manipulation
    # ------------------------------------------------------------------ #
    def subset(self, indices: Sequence[int]) -> "TrafficRecords":
        """Return a new container holding only the records at ``indices``.

        An empty selection yields a valid zero-record container (an empty
        sequence would otherwise coerce to a float array and fail to index).
        """
        indices = np.asarray(indices)
        if indices.dtype != bool:
            indices = indices.astype(np.int64, copy=False)
        return TrafficRecords(
            schema=self.schema,
            numeric=self.numeric[indices],
            categorical={name: column[indices] for name, column in self.categorical.items()},
            labels=self.labels[indices],
        )

    def shuffled(self, rng: np.random.Generator) -> "TrafficRecords":
        """Return a copy with the record order permuted."""
        order = rng.permutation(len(self))
        return self.subset(order)

    @staticmethod
    def concatenate(parts: Iterable["TrafficRecords"]) -> "TrafficRecords":
        """Stack several record batches (with identical schemas) into one."""
        parts = list(parts)
        if not parts:
            raise ValueError("cannot concatenate an empty list of record batches")
        schema = parts[0].schema
        if any(part.schema is not schema and part.schema != schema for part in parts):
            raise ValueError("all parts must share the same schema")
        return TrafficRecords(
            schema=schema,
            numeric=np.concatenate([part.numeric for part in parts], axis=0),
            categorical={
                name: np.concatenate([part.categorical[name] for part in parts])
                for name in schema.categorical_names
            },
            labels=np.concatenate([part.labels for part in parts]),
        )

    def train_test_split(
        self, test_fraction: float, rng: np.random.Generator
    ) -> Tuple["TrafficRecords", "TrafficRecords"]:
        """Random split into train and test batches."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        order = rng.permutation(len(self))
        n_test = max(1, int(round(len(self) * test_fraction)))
        return self.subset(order[n_test:]), self.subset(order[:n_test])

    def __repr__(self) -> str:
        return (
            f"TrafficRecords(dataset={self.schema.name!r}, records={len(self)}, "
            f"classes={len(self.schema.classes)})"
        )
