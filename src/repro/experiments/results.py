"""Result containers and rendering for the experiment harness.

Experiments produce :class:`ResultTable` objects (rows of measured values next
to the paper's reported values) and :class:`CurveSet` objects (named series,
e.g. the Fig. 5 loss curves).  Both render to plain text so benchmark runs can
print them and EXPERIMENTS.md can embed them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["ResultTable", "CurveSet", "ascii_plot"]


@dataclass
class ResultTable:
    """A table of per-model results with optional paper reference values.

    Attributes
    ----------
    title:
        Table title, e.g. ``"Table IV — testing performance on UNSW-NB15"``.
    columns:
        Ordered column keys present in every row.
    rows:
        Measured rows (dicts keyed by column).
    paper_rows:
        Paper-reported rows keyed by model name (may cover fewer columns).
    notes:
        Free-form notes (scale used, substitutions, interpretation caveats).
    """

    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    paper_rows: Dict[str, Dict[str, float]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values) -> None:
        """Append a measured row (missing columns render as blanks)."""
        self.rows.append(dict(values))

    def row_for(self, model: str) -> Dict[str, object]:
        """Return the measured row for ``model`` (KeyError if absent)."""
        for row in self.rows:
            if row.get("model") == model:
                return row
        raise KeyError(f"no measured row for model {model!r}")

    def column_values(self, column: str) -> List[float]:
        """All measured values of one column, in row order."""
        return [float(row[column]) for row in self.rows if column in row]

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    @staticmethod
    def _format_value(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    def render(self) -> str:
        """Render the table (and the paper's values, when known) as text."""
        lines = [self.title, "=" * len(self.title)]
        header = " | ".join(f"{column:>14s}" for column in self.columns)
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            rendered = " | ".join(
                f"{self._format_value(row.get(column, '')):>14s}" for column in self.columns
            )
            lines.append(rendered)

        if self.paper_rows:
            lines.append("")
            lines.append("Paper-reported values:")
            for model, metrics in self.paper_rows.items():
                rendered = ", ".join(f"{k}={v}" for k, v in metrics.items())
                lines.append(f"  {model:>14s}: {rendered}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_json(self) -> str:
        """Serialise the measured rows (and notes) to JSON."""
        return json.dumps(
            {"title": self.title, "rows": self.rows, "notes": self.notes}, indent=2
        )

    def __str__(self) -> str:
        return self.render()


@dataclass
class CurveSet:
    """Named series over a shared x-axis (e.g. loss per epoch per network)."""

    title: str
    x_label: str
    y_label: str
    x_values: List[float] = field(default_factory=list)
    series: Dict[str, List[float]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_series(self, name: str, values: Sequence[float]) -> None:
        values = [float(v) for v in values]
        if self.x_values and len(values) != len(self.x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points, expected {len(self.x_values)}"
            )
        self.series[name] = values

    def final_values(self) -> Dict[str, float]:
        """Last point of every series (used for paper-vs-measured comparisons)."""
        return {name: values[-1] for name, values in self.series.items() if values}

    def render(self, width: int = 70, height: int = 14) -> str:
        """ASCII rendering: one sparkline block per series plus final values."""
        lines = [self.title, "=" * len(self.title)]
        lines.append(ascii_plot(self.x_values, self.series, width=width, height=height))
        lines.append(f"x: {self.x_label}   y: {self.y_label}")
        for name, value in self.final_values().items():
            lines.append(f"  final {name}: {value:.4f}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def ascii_plot(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 70,
    height: int = 14,
) -> str:
    """Plot several series on a shared ASCII canvas.

    Each series is drawn with its own marker character; the legend maps the
    markers back to series names.  This stands in for the paper's matplotlib
    figures in an environment without plotting libraries.
    """
    markers = "*o+x#@%&"
    populated = {name: list(values) for name, values in series.items() if len(values)}
    if not populated:
        return "(no data)"

    all_values = [v for values in populated.values() for v in values]
    minimum, maximum = min(all_values), max(all_values)
    if maximum == minimum:
        maximum = minimum + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for series_index, (name, values) in enumerate(populated.items()):
        marker = markers[series_index % len(markers)]
        n_points = len(values)
        for point_index, value in enumerate(values):
            column = (
                int(round(point_index / max(n_points - 1, 1) * (width - 1)))
                if n_points > 1
                else 0
            )
            row = int(round((value - minimum) / (maximum - minimum) * (height - 1)))
            canvas[height - 1 - row][column] = marker

    lines = ["".join(row) for row in canvas]
    lines.append("-" * width)
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(populated)
    )
    lines.append(legend)
    lines.append(f"y-range: [{minimum:.4f}, {maximum:.4f}]")
    return "\n".join(lines)
