"""Every number the paper reports, transcribed for paper-vs-measured comparison.

The experiment harness prints these next to the values it measures on the
synthetic datasets; EXPERIMENTS.md records both.  Only the *shape* of the
results (orderings, approximate gaps, crossovers) is expected to transfer —
the absolute values were obtained on the real corpora at full scale.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = [
    "TABLE1_SETTINGS",
    "TABLE2_TP_FP",
    "TABLE3_NSLKDD",
    "TABLE4_UNSWNB15",
    "TABLE5_COMPARISON",
    "FIG2_DEGRADATION",
    "FIG5_FINAL_LOSSES",
    "FOUR_NETWORKS",
    "paper_table_rows",
]

#: The four architectures of Section V-C, in the order the paper lists them.
FOUR_NETWORKS = ["plain-21", "residual-21", "plain-41", "residual-41"]

#: Table I — parameter settings per dataset.
TABLE1_SETTINGS: Dict[str, Dict[str, float]] = {
    "unsw-nb15": {
        "filters": 196,
        "kernel_size": 10,
        "recurrent_units": 196,
        "dropout_rate": 0.6,
        "epochs": 100,
        "learning_rate": 0.01,
        "batch_size": 4000,
    },
    "nsl-kdd": {
        "filters": 121,
        "kernel_size": 10,
        "recurrent_units": 121,
        "dropout_rate": 0.6,
        "epochs": 50,
        "learning_rate": 0.01,
        "batch_size": 4000,
    },
}

#: Table II — total true attacks detected (TP) and total false alarms (FP).
TABLE2_TP_FP: Dict[str, Dict[str, Dict[str, int]]] = {
    "nsl-kdd": {
        "plain-21": {"tp": 14688, "fp": 62},
        "residual-21": {"tp": 14702, "fp": 58},
        "plain-41": {"tp": 14607, "fp": 52},
        "residual-41": {"tp": 14732, "fp": 50},
    },
    "unsw-nb15": {
        "plain-21": {"tp": 22094, "fp": 220},
        "residual-21": {"tp": 22265, "fp": 136},
        "plain-41": {"tp": 21211, "fp": 399},
        "residual-41": {"tp": 22321, "fp": 121},
    },
}

#: Table III — testing performance on NSL-KDD (percentages).
TABLE3_NSLKDD: Dict[str, Dict[str, float]] = {
    "plain-21": {"dr": 98.70, "acc": 98.92, "far": 0.80},
    "plain-41": {"dr": 97.56, "acc": 98.37, "far": 0.67},
    "residual-21": {"dr": 98.81, "acc": 99.01, "far": 0.73},
    "residual-41": {"dr": 99.13, "acc": 99.21, "far": 0.65},
}

#: Table IV — testing performance on UNSW-NB15 (percentages).
TABLE4_UNSWNB15: Dict[str, Dict[str, float]] = {
    "plain-21": {"dr": 97.42, "acc": 85.76, "far": 2.37},
    "plain-41": {"dr": 93.73, "acc": 82.33, "far": 4.29},
    "residual-21": {"dr": 97.86, "acc": 86.42, "far": 1.46},
    "residual-41": {"dr": 97.75, "acc": 86.64, "far": 1.30},
}

#: Table V — comparison with classical techniques on UNSW-NB15 (percentages),
#: ordered by the paper's accuracy column.
TABLE5_COMPARISON: Dict[str, Dict[str, float]] = {
    "adaboost": {"dr": 91.13, "acc": 73.19, "far": 22.11},
    "svm-rbf": {"dr": 83.71, "acc": 74.80, "far": 7.73},
    "hast-ids": {"dr": 93.65, "acc": 80.03, "far": 9.60},
    "cnn": {"dr": 92.28, "acc": 82.13, "far": 3.84},
    "lstm": {"dr": 92.76, "acc": 82.40, "far": 3.63},
    "mlp": {"dr": 96.74, "acc": 84.00, "far": 3.66},
    "random-forest": {"dr": 92.24, "acc": 84.59, "far": 3.01},
    "lunet": {"dr": 97.43, "acc": 85.35, "far": 2.89},
    "pelican": {"dr": 97.75, "acc": 86.64, "far": 1.30},
}

#: Fig. 2 — LuNet accuracy versus depth on UNSW-NB15.  The paper plots the
#: qualitative degradation: accuracy rises to a peak around 10-15 parameter
#: layers and then falls as more layers are added ("the beginning of
#: degradation").  Approximate curve endpoints read off the figure.
FIG2_DEGRADATION: Dict[str, Dict[str, float]] = {
    "training_accuracy": {"shallow": 0.80, "deep": 0.58},
    "testing_accuracy": {"shallow": 0.82, "deep": 0.48},
}

#: Fig. 5 — final-epoch training/testing losses of the four networks.
FIG5_FINAL_LOSSES: Dict[str, Dict[str, Dict[str, float]]] = {
    "unsw-nb15": {
        "train": {
            "plain-21": 0.4983, "plain-41": 0.5666,
            "residual-21": 0.3990, "residual-41": 0.3267,
        },
        "test": {
            "plain-21": 0.4842, "plain-41": 0.5607,
            "residual-21": 0.4029, "residual-41": 0.3400,
        },
    },
    "nsl-kdd": {
        "train": {
            "plain-21": 0.0606, "plain-41": 0.1676,
            "residual-21": 0.0406, "residual-41": 0.0205,
        },
        "test": {
            "plain-21": 0.0718, "plain-41": 0.1404,
            "residual-21": 0.0310, "residual-41": 0.0237,
        },
    },
}


def paper_table_rows(table: Dict[str, Dict[str, float]]) -> List[Dict[str, float]]:
    """Flatten a paper table dict into a list of row dicts (model + metrics)."""
    rows = []
    for model, metrics in table.items():
        row = {"model": model}
        row.update(metrics)
        rows.append(row)
    return rows
