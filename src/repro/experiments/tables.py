"""Table reproductions (Tables I-V of the paper).

Each function returns a :class:`~repro.experiments.results.ResultTable`
holding the values measured on the synthetic datasets next to the values the
paper reports, so benchmark output and EXPERIMENTS.md can show both.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..baselines import (
    AdaBoostClassifier,
    BaseClassifier,
    CNNClassifier,
    KernelSVM,
    LSTMClassifier,
    MLPClassifier,
    RandomForestClassifier,
)
from ..core.config import ExperimentScale, PAPER_SETTINGS, get_scale, scaled_config
from ..core.hast_ids import build_hast_ids
from ..core.lunet import build_lunet
from ..core.pelican import build_pelican, build_residual_network, compile_for_paper
from ..core.trainer import EvaluationResult, Trainer
from ..data import get_schema
from ..metrics import evaluate_detection
from ..nn import random as nn_random
from ..preprocessing import IDSPreprocessor
from .four_networks import _load_records, run_four_network_study
from .paper_values import (
    TABLE1_SETTINGS,
    TABLE2_TP_FP,
    TABLE3_NSLKDD,
    TABLE4_UNSWNB15,
    TABLE5_COMPARISON,
)
from .results import ResultTable

__all__ = ["table1", "table2", "table3", "table4", "table5", "TABLE5_MODEL_ORDER"]


# --------------------------------------------------------------------------- #
# Table I — parameter settings
# --------------------------------------------------------------------------- #
def table1() -> ResultTable:
    """Check that the configuration registry matches the paper's Table I."""
    table = ResultTable(
        title="Table I — parameter settings",
        columns=["parameter", "unsw-nb15", "nsl-kdd", "matches_paper"],
        paper_rows=TABLE1_SETTINGS,
    )
    parameters = [
        "filters",
        "kernel_size",
        "recurrent_units",
        "dropout_rate",
        "epochs",
        "learning_rate",
        "batch_size",
    ]
    for parameter in parameters:
        unsw_value = getattr(PAPER_SETTINGS["unsw-nb15"], parameter)
        nsl_value = getattr(PAPER_SETTINGS["nsl-kdd"], parameter)
        matches = (
            unsw_value == TABLE1_SETTINGS["unsw-nb15"][parameter]
            and nsl_value == TABLE1_SETTINGS["nsl-kdd"][parameter]
        )
        table.add_row(
            parameter=parameter,
            **{"unsw-nb15": unsw_value, "nsl-kdd": nsl_value},
            matches_paper=bool(matches),
        )
    return table


# --------------------------------------------------------------------------- #
# Tables II, III, IV — the four-network study
# --------------------------------------------------------------------------- #
def table2(
    scale: Optional[ExperimentScale] = None, seed: int = 0
) -> ResultTable:
    """Table II — total true attacks detected (TP) and total false alarms (FP)."""
    scale = scale or get_scale("bench")
    table = ResultTable(
        title="Table II — true attacks detected vs false alarms",
        columns=["dataset", "model", "tp", "fp"],
        paper_rows={
            f"{dataset}/{model}": counts
            for dataset, models in TABLE2_TP_FP.items()
            for model, counts in models.items()
        },
        notes=[
            f"scale={scale.name}: {scale.n_records} records per dataset, "
            f"{scale.epochs} epochs (the paper trains on the full corpora, so "
            "absolute counts differ; the ordering is the comparable part)",
        ],
    )
    for dataset in ("nsl-kdd", "unsw-nb15"):
        study = run_four_network_study(dataset=dataset, scale=scale, seed=seed)
        for name, result in study.results.items():
            table.add_row(dataset=dataset, model=name, tp=result.report.tp, fp=result.report.fp)
    return table


def _performance_table(
    dataset: str,
    title: str,
    paper_rows: Dict[str, Dict[str, float]],
    scale: Optional[ExperimentScale],
    seed: int,
) -> ResultTable:
    scale = scale or get_scale("bench")
    study = run_four_network_study(dataset=dataset, scale=scale, seed=seed)
    table = ResultTable(
        title=title,
        columns=["model", "dr_percent", "acc_percent", "far_percent"],
        paper_rows=paper_rows,
        notes=[f"scale={scale.name}; ACC is the multi-class validation accuracy"],
    )
    for name, result in study.results.items():
        row = result.as_row()
        table.add_row(
            model=name,
            dr_percent=row["dr_percent"],
            acc_percent=row["acc_percent"],
            far_percent=row["far_percent"],
        )
    return table


def table3(scale: Optional[ExperimentScale] = None, seed: int = 0) -> ResultTable:
    """Table III — testing performance on NSL-KDD."""
    return _performance_table(
        "nsl-kdd",
        "Table III — testing performance on NSL-KDD",
        TABLE3_NSLKDD,
        scale,
        seed,
    )


def table4(scale: Optional[ExperimentScale] = None, seed: int = 0) -> ResultTable:
    """Table IV — testing performance on UNSW-NB15."""
    return _performance_table(
        "unsw-nb15",
        "Table IV — testing performance on UNSW-NB15",
        TABLE4_UNSWNB15,
        scale,
        seed,
    )


# --------------------------------------------------------------------------- #
# Table V — the comparative study
# --------------------------------------------------------------------------- #
#: Paper order (worst to best accuracy).
TABLE5_MODEL_ORDER = [
    "adaboost",
    "svm-rbf",
    "hast-ids",
    "cnn",
    "lstm",
    "mlp",
    "random-forest",
    "lunet",
    "pelican",
]


def _classical_models(seed: int) -> Dict[str, BaseClassifier]:
    """The classical / shallow-deep baselines of Table V."""
    return {
        "adaboost": AdaBoostClassifier(n_estimators=40, max_depth=1, seed=seed),
        "svm-rbf": KernelSVM(C=1.0, max_iterations=300, seed=seed),
        "cnn": CNNClassifier(epochs=10, seed=seed),
        "lstm": LSTMClassifier(epochs=10, seed=seed),
        "mlp": MLPClassifier(epochs=12, seed=seed),
        "random-forest": RandomForestClassifier(n_estimators=25, max_depth=10, seed=seed),
    }


def table5(
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    dataset: str = "unsw-nb15",
    include_models: Optional[List[str]] = None,
) -> ResultTable:
    """Table V — Pelican vs classical techniques on UNSW-NB15.

    ``include_models`` restricts the comparison (useful for quick runs); by
    default all nine models of the paper's table are evaluated.
    """
    scale = scale or get_scale("bench")
    dataset = dataset.lower().replace("_", "-")
    nn_random.seed(seed)
    schema = get_schema(dataset)
    records = _load_records(dataset, scale.n_records, seed)
    preprocessor = IDSPreprocessor(schema)
    split = preprocessor.holdout_split(
        records, test_fraction=1.0 / scale.n_splits, seed=seed
    )
    config = scaled_config(dataset, scale)
    trainer = Trainer(config, validation_during_training=False)
    selected = include_models or TABLE5_MODEL_ORDER

    table = ResultTable(
        title=f"Table V — comparison with classical techniques ({dataset})",
        columns=["model", "dr_percent", "acc_percent", "far_percent", "seconds"],
        paper_rows=TABLE5_COMPARISON,
        notes=[
            f"scale={scale.name}; ACC is the multi-class validation accuracy",
        ],
    )

    classical = _classical_models(seed)
    for name in selected:
        started = time.time()
        if name in classical:
            model = classical[name]
            model.fit(split.train.flat_inputs, split.train.class_indices)
            predictions = model.predict(split.test.flat_inputs)
            report = evaluate_detection(
                split.test.class_indices, predictions, split.test.normal_index
            )
            accuracy = float(np.mean(predictions == split.test.class_indices))
            row = {
                "dr_percent": 100.0 * report.detection_rate,
                "acc_percent": 100.0 * accuracy,
                "far_percent": 100.0 * report.false_alarm_rate,
            }
        elif name in ("hast-ids", "lunet", "pelican"):
            if name == "hast-ids":
                network = build_hast_ids(split.num_classes, config, seed=seed)
            elif name == "lunet":
                network = build_lunet(
                    split.num_classes, config, num_blocks=scale.scale_blocks(5), seed=seed
                )
            else:
                network = build_residual_network(
                    scale.scale_blocks(10), split.num_classes, config,
                    name="pelican", seed=seed,
                )
            compile_for_paper(network, config)
            result = trainer.train_and_evaluate(network, split, model_name=name)
            row = {
                "dr_percent": result.as_row()["dr_percent"],
                "acc_percent": result.as_row()["acc_percent"],
                "far_percent": result.as_row()["far_percent"],
            }
        else:
            raise ValueError(f"unknown Table V model {name!r}")
        table.add_row(
            model=name,
            dr_percent=row["dr_percent"],
            acc_percent=row["acc_percent"],
            far_percent=row["far_percent"],
            seconds=round(time.time() - started, 2),
        )
    return table
