"""``repro.experiments`` — the harness regenerating every table and figure.

See DESIGN.md for the experiment index.  The public entry points are the
``tableN`` / ``figureN`` functions, the ablations, and
:func:`run_experiment`, which dispatches by experiment id (also available on
the command line as ``python -m repro.experiments.runner``).
"""

from . import paper_values
from .ablations import ablate_dropout, ablate_optimizer, ablate_shortcut_placement
from .figures import Figure2Result, figure2, figure5
from .four_networks import FourNetworkStudy, clear_study_cache, run_four_network_study
from .results import CurveSet, ResultTable, ascii_plot
from .runner import EXPERIMENTS, run_experiment
from .tables import TABLE5_MODEL_ORDER, table1, table2, table3, table4, table5

__all__ = [
    "paper_values",
    "ResultTable",
    "CurveSet",
    "ascii_plot",
    "FourNetworkStudy",
    "run_four_network_study",
    "clear_study_cache",
    "Figure2Result",
    "figure2",
    "figure5",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "TABLE5_MODEL_ORDER",
    "ablate_shortcut_placement",
    "ablate_optimizer",
    "ablate_dropout",
    "run_experiment",
    "EXPERIMENTS",
]
