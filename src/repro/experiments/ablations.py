"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's own evaluation and probe the choices the paper
makes but does not ablate:

* **shortcut placement** — the paper connects the shortcut from the first BN
  output (Fig. 4(b)); the ablation compares that against a shortcut from the
  raw block input.
* **optimizer** — the paper trains everything with RMSprop; the ablation
  compares RMSprop, SGD and Adam on the same residual network.
* **dropout rate** — the paper fixes dropout at 0.6 to fight overfitting; the
  ablation sweeps 0.0 / 0.3 / 0.6.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.config import ExperimentScale, get_scale, scaled_config
from ..core.pelican import build_residual_network
from ..core.trainer import Trainer
from ..data import get_schema
from ..metrics import evaluate_detection
from ..nn import random as nn_random
from ..nn.optimizers import get_optimizer
from ..preprocessing import IDSPreprocessor
from .four_networks import _load_records
from .results import ResultTable

__all__ = ["ablate_shortcut_placement", "ablate_optimizer", "ablate_dropout"]


def _prepare(dataset: str, scale: ExperimentScale, seed: int):
    nn_random.seed(seed)
    schema = get_schema(dataset)
    records = _load_records(dataset, scale.n_records, seed)
    preprocessor = IDSPreprocessor(schema)
    split = preprocessor.holdout_split(
        records, test_fraction=1.0 / scale.n_splits, seed=seed
    )
    return split, scaled_config(dataset, scale)


def _evaluate_network(network, split, config, name: str) -> dict:
    trainer = Trainer(config, validation_during_training=False)
    result = trainer.train_and_evaluate(network, split, model_name=name)
    return result.as_row()


def ablate_shortcut_placement(
    dataset: str = "unsw-nb15",
    scale: Optional[ExperimentScale] = None,
    num_blocks: Optional[int] = None,
    seed: int = 0,
) -> ResultTable:
    """Shortcut from the first BN output (paper) vs from the block input."""
    scale = scale or get_scale("bench")
    split, config = _prepare(dataset, scale, seed)
    blocks = num_blocks or scale.scale_blocks(5)

    table = ResultTable(
        title="Ablation — residual shortcut placement",
        columns=["model", "dr_percent", "acc_percent", "far_percent"],
        notes=[
            f"dataset={dataset}, blocks={blocks}, scale={scale.name}; "
            "'bn' is the paper's Fig. 4(b) design",
        ],
    )
    for shortcut_from in ("bn", "input"):
        network = build_residual_network(
            blocks, split.num_classes, config,
            shortcut_from=shortcut_from, name=f"residual-shortcut-{shortcut_from}",
            seed=seed,
        )
        row = _evaluate_network(network, split, config, f"shortcut-from-{shortcut_from}")
        table.add_row(
            model=row["model"],
            dr_percent=row["dr_percent"],
            acc_percent=row["acc_percent"],
            far_percent=row["far_percent"],
        )
    return table


def ablate_optimizer(
    dataset: str = "unsw-nb15",
    scale: Optional[ExperimentScale] = None,
    optimizers: Sequence[str] = ("rmsprop", "sgd", "adam"),
    num_blocks: Optional[int] = None,
    seed: int = 0,
) -> ResultTable:
    """RMSprop (paper) vs SGD vs Adam on the same residual network."""
    scale = scale or get_scale("bench")
    split, config = _prepare(dataset, scale, seed)
    blocks = num_blocks or scale.scale_blocks(5)

    table = ResultTable(
        title="Ablation — optimizer choice",
        columns=["model", "dr_percent", "acc_percent", "far_percent"],
        notes=[f"dataset={dataset}, blocks={blocks}, scale={scale.name}"],
    )
    for optimizer_name in optimizers:
        network = build_residual_network(
            blocks, split.num_classes, config,
            name=f"residual-{optimizer_name}", seed=seed,
        )
        network.compile(
            optimizer=get_optimizer(optimizer_name, learning_rate=config.learning_rate),
            loss="categorical_crossentropy",
            metrics=["accuracy"],
        )
        row = _evaluate_network(network, split, config, optimizer_name)
        table.add_row(
            model=row["model"],
            dr_percent=row["dr_percent"],
            acc_percent=row["acc_percent"],
            far_percent=row["far_percent"],
        )
    return table


def ablate_dropout(
    dataset: str = "unsw-nb15",
    scale: Optional[ExperimentScale] = None,
    rates: Sequence[float] = (0.0, 0.3, 0.6),
    num_blocks: Optional[int] = None,
    seed: int = 0,
) -> ResultTable:
    """Dropout-rate sweep (the paper fixes 0.6 to fight overfitting)."""
    scale = scale or get_scale("bench")
    split, config = _prepare(dataset, scale, seed)
    blocks = num_blocks or scale.scale_blocks(5)

    table = ResultTable(
        title="Ablation — dropout rate",
        columns=["model", "dr_percent", "acc_percent", "far_percent"],
        notes=[f"dataset={dataset}, blocks={blocks}, scale={scale.name}"],
    )
    for rate in rates:
        rate_config = config.with_updates(dropout_rate=float(rate))
        network = build_residual_network(
            blocks, split.num_classes, rate_config,
            name=f"residual-dropout-{rate}", seed=seed,
        )
        row = _evaluate_network(network, split, rate_config, f"dropout-{rate}")
        table.add_row(
            model=row["model"],
            dr_percent=row["dr_percent"],
            acc_percent=row["acc_percent"],
            far_percent=row["far_percent"],
        )
    return table
