"""Figure reproductions.

* :func:`figure2` — the motivational depth-degradation experiment (Fig. 2):
  LuNet is trained at increasing depth on UNSW-NB15 and its training/testing
  accuracy is plotted against the number of parameter layers.
* :func:`figure5` — the learning-curve comparison (Fig. 5 a-d): training and
  testing loss per epoch for Plain-21/41 and Residual-21/41 on each dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.config import ExperimentScale, get_scale, scaled_config
from ..core.lunet import build_lunet, lunet_depth_sweep
from ..core.pelican import compile_for_paper, parameter_layer_count
from ..core.trainer import Trainer
from ..data import get_schema
from ..nn import random as nn_random
from ..preprocessing import IDSPreprocessor
from .four_networks import _load_records, run_four_network_study
from .paper_values import FIG2_DEGRADATION, FIG5_FINAL_LOSSES
from .results import CurveSet

__all__ = ["Figure2Result", "figure2", "figure5"]


@dataclass
class Figure2Result:
    """Outcome of the Fig. 2 depth sweep.

    Attributes
    ----------
    parameter_layers:
        Network depths (x-axis of the paper's plots).
    training_accuracy / testing_accuracy:
        Final-epoch accuracies per depth.
    """

    dataset: str
    parameter_layers: List[int] = field(default_factory=list)
    training_accuracy: List[float] = field(default_factory=list)
    testing_accuracy: List[float] = field(default_factory=list)

    def curves(self) -> CurveSet:
        """Render-ready curve set (both panels of Fig. 2 on one canvas)."""
        curve_set = CurveSet(
            title=f"Fig. 2 — LuNet accuracy vs depth on {self.dataset}",
            x_label="parameter layers",
            y_label="accuracy",
            x_values=[float(v) for v in self.parameter_layers],
        )
        curve_set.add_series("training accuracy", self.training_accuracy)
        curve_set.add_series("testing accuracy", self.testing_accuracy)
        curve_set.notes.append(
            "paper shape: accuracy degrades beyond ~10-15 parameter layers "
            f"(paper endpoints: {FIG2_DEGRADATION})"
        )
        return curve_set

    def degradation_observed(self) -> bool:
        """True when the deepest network is worse than the best shallower one."""
        if len(self.testing_accuracy) < 2:
            return False
        return self.testing_accuracy[-1] < max(self.testing_accuracy[:-1])


def figure2(
    dataset: str = "unsw-nb15",
    scale: Optional[ExperimentScale] = None,
    block_counts: Optional[Sequence[int]] = None,
    seed: int = 0,
    verbose: int = 0,
) -> Figure2Result:
    """Reproduce Fig. 2: train LuNet at increasing depth and record accuracy."""
    scale = scale or get_scale("bench")
    dataset = dataset.lower().replace("_", "-")
    nn_random.seed(seed)
    schema = get_schema(dataset)
    records = _load_records(dataset, scale.n_records, seed)
    preprocessor = IDSPreprocessor(schema)
    split = preprocessor.holdout_split(
        records, test_fraction=1.0 / scale.n_splits, seed=seed
    )
    config = scaled_config(dataset, scale)
    trainer = Trainer(config, validation_during_training=False, verbose=verbose)

    if block_counts is None:
        max_blocks = scale.scale_blocks(10)
        block_counts = lunet_depth_sweep(max_blocks=max_blocks)

    result = Figure2Result(dataset=dataset)
    for blocks in block_counts:
        network = build_lunet(split.num_classes, config, num_blocks=blocks, seed=seed)
        compile_for_paper(network, config)
        trainer.train(network, split)
        train_metrics = network.evaluate(split.train.inputs, split.train.targets)
        test_metrics = network.evaluate(split.test.inputs, split.test.targets)
        result.parameter_layers.append(parameter_layer_count(blocks))
        result.training_accuracy.append(float(train_metrics["accuracy"]))
        result.testing_accuracy.append(float(test_metrics["accuracy"]))
    return result


def figure5(
    dataset: str = "unsw-nb15",
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> Dict[str, CurveSet]:
    """Reproduce Fig. 5: loss-per-epoch curves of the four networks.

    Returns a dict with ``"train"`` and ``"test"`` curve sets (the paper's (a)
    and (b) panels for UNSW-NB15, (c) and (d) for NSL-KDD).
    """
    dataset = dataset.lower().replace("_", "-")
    study = run_four_network_study(dataset=dataset, scale=scale, seed=seed)
    epochs = [float(epoch) for epoch in study.epochs()]
    paper_values = FIG5_FINAL_LOSSES.get(dataset, {})

    curves: Dict[str, CurveSet] = {}
    for portion, losses in (("train", study.train_loss), ("test", study.test_loss)):
        curve_set = CurveSet(
            title=f"Fig. 5 — {portion}ing loss on {dataset}",
            x_label="epoch",
            y_label=f"{portion}ing loss",
            x_values=epochs,
        )
        for name, series in losses.items():
            curve_set.add_series(name, series)
        if portion in paper_values:
            curve_set.notes.append(
                f"paper final losses: {paper_values[portion]}"
            )
        curves[portion] = curve_set
    return curves
