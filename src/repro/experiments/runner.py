"""Experiment registry and command-line runner.

Every table and figure of the paper (plus the extra ablations) is registered
under a stable identifier so it can be regenerated with::

    python -m repro.experiments.runner table4 --scale bench
    python -m repro.experiments.runner fig5-unsw --scale smoke

The same registry backs the benchmark harness in ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

from ..core.config import ExperimentScale, get_scale
from . import ablations, figures, tables

__all__ = ["EXPERIMENTS", "run_experiment", "main"]


def _fig2(scale: ExperimentScale, seed: int):
    return figures.figure2(dataset="unsw-nb15", scale=scale, seed=seed).curves()


def _fig5(dataset: str):
    def run(scale: ExperimentScale, seed: int):
        curves = figures.figure5(dataset=dataset, scale=scale, seed=seed)
        return "\n\n".join(str(curve) for curve in curves.values())

    return run


#: Experiment id -> callable(scale, seed) returning a renderable result.
EXPERIMENTS: Dict[str, Callable[[ExperimentScale, int], object]] = {
    "table1": lambda scale, seed: tables.table1(),
    "table2": lambda scale, seed: tables.table2(scale=scale, seed=seed),
    "table3": lambda scale, seed: tables.table3(scale=scale, seed=seed),
    "table4": lambda scale, seed: tables.table4(scale=scale, seed=seed),
    "table5": lambda scale, seed: tables.table5(scale=scale, seed=seed),
    "fig2": _fig2,
    "fig5-unsw": _fig5("unsw-nb15"),
    "fig5-nslkdd": _fig5("nsl-kdd"),
    "ablation-shortcut": lambda scale, seed: ablations.ablate_shortcut_placement(
        scale=scale, seed=seed
    ),
    "ablation-optimizer": lambda scale, seed: ablations.ablate_optimizer(
        scale=scale, seed=seed
    ),
    "ablation-dropout": lambda scale, seed: ablations.ablate_dropout(
        scale=scale, seed=seed
    ),
}


def run_experiment(
    experiment_id: str, scale: Optional[ExperimentScale] = None, seed: int = 0
) -> object:
    """Run one registered experiment and return its result object."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError as exc:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ValueError(
            f"unknown experiment {experiment_id!r}; known experiments: {known}"
        ) from exc
    return runner(scale or get_scale("bench"), seed)


def main(argv: Optional[list] = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(
        description="Regenerate one of the paper's tables or figures."
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment id")
    parser.add_argument(
        "--scale",
        default="bench",
        choices=["smoke", "bench", "full", "paper"],
        help="workload preset (see repro.core.config.SCALES)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    arguments = parser.parse_args(argv)

    result = run_experiment(
        arguments.experiment, scale=get_scale(arguments.scale), seed=arguments.seed
    )
    print(result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
