"""The shared "four network" study behind Fig. 5 and Tables II-IV.

In the paper, one experiment produces all of Fig. 5, Table II, Table III and
Table IV: the four Section V-C networks (Plain-21, Residual-21, Plain-41,
Residual-41/Pelican) are trained on each dataset, their loss histories are
plotted and their TP/FP and DR/ACC/FAR numbers are tabulated.  This module
runs that experiment once per (dataset, scale, seed) and caches the outcome in
process so every dependent table/figure reuses the same trained networks —
exactly like the paper — instead of retraining.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.config import ExperimentScale, get_scale, scaled_config
from ..core.pelican import build_network, compile_for_paper
from ..core.trainer import EvaluationResult, Trainer
from ..data import get_schema, load_nslkdd, load_unswnb15
from ..nn import random as nn_random
from ..preprocessing import IDSPreprocessor
from .paper_values import FOUR_NETWORKS

__all__ = ["FourNetworkStudy", "run_four_network_study", "clear_study_cache"]

#: (name, paper block count, residual?) for the four architectures.
NETWORK_DEFINITIONS: List[Tuple[str, int, bool]] = [
    ("plain-21", 5, False),
    ("residual-21", 5, True),
    ("plain-41", 10, False),
    ("residual-41", 10, True),
]


@dataclass
class FourNetworkStudy:
    """Outcome of training the four networks on one dataset.

    Attributes
    ----------
    dataset:
        ``"nsl-kdd"`` or ``"unsw-nb15"``.
    scale:
        The workload preset used.
    results:
        Per-network :class:`EvaluationResult` (TP/FP, DR/ACC/FAR...).
    train_loss / test_loss:
        Per-network loss histories (one value per epoch).
    train_accuracy / test_accuracy:
        Per-network accuracy histories.
    """

    dataset: str
    scale: ExperimentScale
    results: Dict[str, EvaluationResult] = field(default_factory=dict)
    train_loss: Dict[str, List[float]] = field(default_factory=dict)
    test_loss: Dict[str, List[float]] = field(default_factory=dict)
    train_accuracy: Dict[str, List[float]] = field(default_factory=dict)
    test_accuracy: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def network_names(self) -> List[str]:
        return [name for name, _, _ in NETWORK_DEFINITIONS]

    def epochs(self) -> List[int]:
        """Epoch indices (1-based) of the recorded histories."""
        any_history = next(iter(self.train_loss.values()), [])
        return list(range(1, len(any_history) + 1))


_STUDY_CACHE: Dict[Tuple[str, str, int], FourNetworkStudy] = {}


def clear_study_cache() -> None:
    """Drop all cached studies (used by tests)."""
    _STUDY_CACHE.clear()


def _load_records(dataset: str, n_records: int, seed: int):
    if dataset == "nsl-kdd":
        return load_nslkdd(n_records=n_records, seed=seed)
    if dataset == "unsw-nb15":
        return load_unswnb15(n_records=n_records, seed=seed)
    raise ValueError(f"unknown dataset {dataset!r}")


def run_four_network_study(
    dataset: str = "unsw-nb15",
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    use_cache: bool = True,
    verbose: int = 0,
) -> FourNetworkStudy:
    """Train the four Section V-C networks on ``dataset`` at ``scale``.

    The test portion is held out with the scale's ``1 / n_splits`` fraction
    (one fold of the paper's k-fold protocol) and is also used as validation
    data during training so the histories contain the Fig. 5 testing-loss
    curves.
    """
    scale = scale or get_scale("bench")
    dataset = dataset.lower().replace("_", "-")
    cache_key = (dataset, scale.name, seed)
    if use_cache and cache_key in _STUDY_CACHE:
        return _STUDY_CACHE[cache_key]

    # Reseed the framework RNG so the study is deterministic for a given
    # (dataset, scale, seed) regardless of what ran earlier in the process.
    nn_random.seed(seed)

    schema = get_schema(dataset)
    records = _load_records(dataset, scale.n_records, seed)
    preprocessor = IDSPreprocessor(schema)
    split = preprocessor.holdout_split(
        records, test_fraction=1.0 / scale.n_splits, seed=seed
    )

    config = scaled_config(dataset, scale)
    trainer = Trainer(config, validation_during_training=True, verbose=verbose)
    study = FourNetworkStudy(dataset=dataset, scale=scale)

    for name, paper_blocks, residual in NETWORK_DEFINITIONS:
        blocks = scale.scale_blocks(paper_blocks)
        network = build_network(
            num_blocks=blocks,
            num_classes=split.num_classes,
            config=config,
            residual=residual,
            name=name,
            seed=seed,
        )
        compile_for_paper(network, config)
        result = trainer.train_and_evaluate(network, split, model_name=name)
        study.results[name] = result
        history = result.histories[0].history
        study.train_loss[name] = history.get("loss", [])
        study.test_loss[name] = history.get("val_loss", [])
        study.train_accuracy[name] = history.get("accuracy", [])
        study.test_accuracy[name] = history.get("val_accuracy", [])

    if use_cache:
        _STUDY_CACHE[cache_key] = study
    return study
