"""Tests for the cross-validation splitters and the end-to-end IDS pipeline."""

import numpy as np
import pytest

from repro.data import NSLKDD_SCHEMA, UNSWNB15_SCHEMA, load_nslkdd, load_unswnb15
from repro.preprocessing import (
    IDSPreprocessor,
    KFold,
    StratifiedKFold,
    train_test_indices,
)


class TestKFold:
    def test_folds_partition_indices(self):
        splitter = KFold(n_splits=5, seed=0)
        all_test = []
        for train, test in splitter.split(103):
            assert len(np.intersect1d(train, test)) == 0
            all_test.extend(test.tolist())
        assert sorted(all_test) == list(range(103))

    def test_number_of_folds(self):
        assert len(list(KFold(n_splits=10).split(100))) == 10

    def test_paper_uses_ten_folds_nine_to_one_ratio(self):
        # "With the k-fold validation ... we set k=10": train ≈ 9x test.
        for train, test in KFold(n_splits=10, seed=1).split(1000):
            assert len(train) == 900
            assert len(test) == 100

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=10).split(5))

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)

    def test_deterministic_given_seed(self):
        first = [test.tolist() for _, test in KFold(n_splits=4, seed=3).split(40)]
        second = [test.tolist() for _, test in KFold(n_splits=4, seed=3).split(40)]
        assert first == second


class TestStratifiedKFold:
    def test_partition_and_stratification(self):
        labels = np.array(["a"] * 60 + ["b"] * 30 + ["c"] * 10, dtype=object)
        splitter = StratifiedKFold(n_splits=5, seed=0)
        all_test = []
        for train, test in splitter.split(labels):
            assert len(np.intersect1d(train, test)) == 0
            test_labels = labels[test]
            # Proportions approximately preserved in every fold.
            assert np.mean(test_labels == "a") == pytest.approx(0.6, abs=0.1)
            all_test.extend(test.tolist())
        assert sorted(all_test) == list(range(100))

    def test_rare_class_spread_across_folds(self):
        labels = np.array(["common"] * 95 + ["rare"] * 5, dtype=object)
        folds_with_rare = 0
        for _, test in StratifiedKFold(n_splits=5, seed=0).split(labels):
            if (labels[test] == "rare").any():
                folds_with_rare += 1
        assert folds_with_rare == 5

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError):
            StratifiedKFold(n_splits=0)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(StratifiedKFold(n_splits=5).split(np.array(["a", "b"])))


class TestTrainTestIndices:
    def test_sizes(self):
        train, test = train_test_indices(100, test_fraction=0.2, seed=0)
        assert len(test) == 20
        assert len(train) == 80
        assert len(np.intersect1d(train, test)) == 0

    def test_stratified_keeps_all_classes_in_test(self):
        labels = np.array(["a"] * 90 + ["b"] * 10, dtype=object)
        train, test = train_test_indices(100, test_fraction=0.2, seed=0, labels=labels)
        assert (labels[test] == "b").any()

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_indices(10, test_fraction=0.0)

    def test_labels_length_mismatch(self):
        with pytest.raises(ValueError):
            train_test_indices(10, labels=np.array(["a"] * 5))


class TestIDSPreprocessor:
    @pytest.fixture(scope="class")
    def nslkdd_records(self):
        return load_nslkdd(n_records=400, seed=11)

    def test_num_features_match_paper(self):
        assert IDSPreprocessor(NSLKDD_SCHEMA).num_features == 121
        assert IDSPreprocessor(UNSWNB15_SCHEMA).num_features == 196

    def test_fit_transform_shapes(self, nslkdd_records):
        prepared = IDSPreprocessor(NSLKDD_SCHEMA).fit_transform(nslkdd_records)
        assert prepared.inputs.shape == (400, 1, 121)
        assert prepared.targets.shape == (400, 5)
        assert prepared.flat_inputs.shape == (400, 121)
        assert prepared.num_classes == 5
        assert prepared.num_features == 121

    def test_targets_are_one_hot(self, nslkdd_records):
        prepared = IDSPreprocessor(NSLKDD_SCHEMA).fit_transform(nslkdd_records)
        assert np.allclose(prepared.targets.sum(axis=1), 1.0)
        assert set(np.unique(prepared.targets)) == {0.0, 1.0}

    def test_binary_labels_match_class_indices(self, nslkdd_records):
        prepared = IDSPreprocessor(NSLKDD_SCHEMA).fit_transform(nslkdd_records)
        assert np.array_equal(
            prepared.binary_labels, (prepared.class_indices != prepared.normal_index)
        )

    def test_numeric_columns_standardized(self, nslkdd_records):
        prepared = IDSPreprocessor(NSLKDD_SCHEMA).fit_transform(nslkdd_records)
        numeric_block = prepared.inputs[:, 0, :38]
        assert np.abs(numeric_block.mean(axis=0)).max() < 1e-8
        stds = numeric_block.std(axis=0)
        assert np.allclose(stds[stds > 0], 1.0, atol=1e-8)

    def test_transform_before_fit_rejected(self, nslkdd_records):
        with pytest.raises(RuntimeError):
            IDSPreprocessor(NSLKDD_SCHEMA).transform(nslkdd_records)

    def test_holdout_split_fractions(self, nslkdd_records):
        split = IDSPreprocessor(NSLKDD_SCHEMA).holdout_split(
            nslkdd_records, test_fraction=0.25, seed=0
        )
        assert len(split.test) == pytest.approx(100, abs=5)
        assert len(split.train) + len(split.test) == 400
        assert split.num_features == 121

    def test_holdout_no_scaling_leakage(self, nslkdd_records):
        """The scaler must be fitted on the training portion only."""
        preprocessor = IDSPreprocessor(NSLKDD_SCHEMA)
        split = preprocessor.holdout_split(nslkdd_records, test_fraction=0.25, seed=0)
        train_numeric = split.train.inputs[:, 0, :38]
        assert np.abs(train_numeric.mean(axis=0)).max() < 1e-8
        test_numeric = split.test.inputs[:, 0, :38]
        # Test-set means are close to, but not exactly, zero.
        assert np.abs(test_numeric.mean(axis=0)).max() > 1e-8

    def test_kfold_splits_cover_all_records(self, nslkdd_records):
        preprocessor = IDSPreprocessor(NSLKDD_SCHEMA)
        total_test = 0
        for split in preprocessor.kfold_splits(nslkdd_records, n_splits=4, seed=0):
            total_test += len(split.test)
            assert split.train.inputs.shape[2] == 121
        assert total_test == len(nslkdd_records)

    def test_unsw_pipeline_end_to_end(self):
        records = load_unswnb15(n_records=300, seed=3)
        prepared = IDSPreprocessor(UNSWNB15_SCHEMA).fit_transform(records)
        assert prepared.inputs.shape == (300, 1, 196)
        assert prepared.targets.shape == (300, 10)
        assert prepared.class_names[prepared.normal_index] == "normal"
