"""Tests for one-hot encoding, label encoding and feature scaling."""

import numpy as np
import pytest

from repro.preprocessing import (
    LabelEncoder,
    MinMaxScaler,
    OneHotEncoder,
    StandardScaler,
    one_hot,
)


class TestOneHotFunction:
    def test_basic(self):
        encoded = one_hot(np.array([0, 2, 1]), 3)
        assert np.allclose(encoded, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([0, 3]), 3)

    def test_empty(self):
        assert one_hot(np.array([], dtype=int), 4).shape == (0, 4)


class TestOneHotEncoder:
    def test_learned_vocabulary(self):
        encoder = OneHotEncoder()
        columns = {"proto": np.array(["tcp", "udp", "tcp"], dtype=object)}
        encoded = encoder.fit_transform(columns)
        assert encoded.shape == (3, 2)
        assert np.allclose(encoded.sum(axis=1), 1.0)

    def test_declared_vocabulary_fixes_width(self):
        encoder = OneHotEncoder(categories={"proto": ["tcp", "udp", "icmp"]})
        encoder.fit({"proto": np.array(["tcp"], dtype=object)})
        encoded = encoder.transform({"proto": np.array(["udp", "udp"], dtype=object)})
        assert encoded.shape == (2, 3)
        assert encoder.encoded_width == 3

    def test_unknown_value_ignored_by_default(self):
        encoder = OneHotEncoder(categories={"proto": ["tcp", "udp"]})
        encoder.fit({"proto": np.array(["tcp"], dtype=object)})
        encoded = encoder.transform({"proto": np.array(["gre"], dtype=object)})
        assert np.allclose(encoded, 0.0)

    def test_unknown_value_error_mode(self):
        encoder = OneHotEncoder(categories={"proto": ["tcp"]}, handle_unknown="error")
        encoder.fit({"proto": np.array(["tcp"], dtype=object)})
        with pytest.raises(ValueError):
            encoder.transform({"proto": np.array(["gre"], dtype=object)})

    def test_invalid_handle_unknown(self):
        with pytest.raises(ValueError):
            OneHotEncoder(handle_unknown="quietly")

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            OneHotEncoder().transform({"proto": np.array(["tcp"], dtype=object)})

    def test_missing_column_rejected(self):
        encoder = OneHotEncoder()
        encoder.fit({"proto": np.array(["tcp"], dtype=object)})
        with pytest.raises(ValueError):
            encoder.transform({})

    def test_feature_names(self):
        encoder = OneHotEncoder(categories={"proto": ["tcp", "udp"]})
        encoder.fit({"proto": np.array(["tcp"], dtype=object)})
        assert encoder.feature_names == ["proto=tcp", "proto=udp"]

    def test_multiple_columns_concatenated_in_order(self):
        encoder = OneHotEncoder(
            categories={"a": ["x", "y"], "b": ["p", "q", "r"]}
        )
        encoded = encoder.fit_transform(
            {
                "a": np.array(["x", "y"], dtype=object),
                "b": np.array(["r", "p"], dtype=object),
            }
        )
        assert encoded.shape == (2, 5)
        assert np.allclose(encoded[0], [1, 0, 0, 0, 1])


class TestLabelEncoder:
    def test_fit_transform_roundtrip(self):
        encoder = LabelEncoder()
        labels = ["dos", "normal", "dos", "probe"]
        encoded = encoder.fit_transform(labels)
        assert encoded.dtype == np.int64
        assert list(encoder.inverse_transform(encoded)) == labels

    def test_declared_classes_preserve_order(self):
        encoder = LabelEncoder(classes=["normal", "dos", "probe"])
        assert list(encoder.transform(["dos", "normal"])) == [1, 0]

    def test_unknown_label(self):
        encoder = LabelEncoder(classes=["normal"])
        with pytest.raises(ValueError):
            encoder.transform(["worm"])

    def test_inverse_out_of_range(self):
        encoder = LabelEncoder(classes=["normal", "dos"])
        with pytest.raises(ValueError):
            encoder.inverse_transform([5])

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            LabelEncoder().transform(["x"])

    def test_num_classes(self):
        assert LabelEncoder(classes=["a", "b", "c"]).num_classes == 3


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        data = rng.normal(loc=7.0, scale=3.0, size=(500, 4))
        scaled = StandardScaler().fit_transform(data)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_not_divided_by_zero(self):
        data = np.column_stack([np.ones(10), np.arange(10.0)])
        scaled = StandardScaler().fit_transform(data)
        assert np.all(np.isfinite(scaled))
        assert np.allclose(scaled[:, 0], 0.0)

    def test_inverse_transform_roundtrip(self):
        data = np.random.default_rng(1).normal(size=(50, 3))
        scaler = StandardScaler().fit(data)
        assert np.allclose(scaler.inverse_transform(scaler.transform(data)), data)

    def test_transform_uses_training_statistics(self):
        scaler = StandardScaler().fit(np.zeros((10, 2)) + 5.0)
        transformed = scaler.transform(np.full((3, 2), 5.0))
        assert np.allclose(transformed, 0.0)

    def test_feature_count_mismatch(self):
        scaler = StandardScaler().fit(np.ones((5, 3)))
        with pytest.raises(ValueError):
            scaler.transform(np.ones((5, 4)))

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.ones(5))

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))


class TestMinMaxScaler:
    def test_unit_range(self):
        data = np.array([[0.0, 10.0], [5.0, 20.0], [10.0, 30.0]])
        scaled = MinMaxScaler().fit_transform(data)
        assert scaled.min() == pytest.approx(0.0)
        assert scaled.max() == pytest.approx(1.0)

    def test_custom_range(self):
        data = np.array([[0.0], [1.0]])
        scaled = MinMaxScaler(feature_range=(-1.0, 1.0)).fit_transform(data)
        assert np.allclose(scaled.reshape(-1), [-1.0, 1.0])

    def test_constant_column(self):
        scaled = MinMaxScaler().fit_transform(np.full((4, 1), 3.0))
        assert np.all(np.isfinite(scaled))

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            MinMaxScaler(feature_range=(1.0, 0.0))

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.ones((2, 2)))
