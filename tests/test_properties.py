"""Property-based tests (hypothesis) on the core data structures and invariants.

These cover the properties that must hold for *any* input, not just the
examples in the unit tests: autodiff linearity, metric ranges and identities,
encoder/scaler invariants and the residual block's identity property.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.metrics import (
    accuracy,
    binary_confusion_counts,
    confusion_matrix,
    detection_rate,
    evaluate_detection,
    false_alarm_rate,
)
from repro.nn import tensor as ops
from repro.nn.tensor import Tensor
from repro.preprocessing import LabelEncoder, OneHotEncoder, StandardScaler, one_hot
from repro.preprocessing.kfold import KFold, StratifiedKFold

# Keep hypothesis fast and deterministic enough for CI-style runs.
SETTINGS = settings(max_examples=30, deadline=None)

finite_floats = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


def small_matrices(max_side=6):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=max_side),
        elements=finite_floats,
    )


class TestAutodiffProperties:
    @SETTINGS
    @given(small_matrices())
    def test_sum_gradient_is_ones(self, values):
        tensor = Tensor(values, requires_grad=True)
        tensor.sum().backward()
        assert np.allclose(tensor.grad, np.ones_like(values))

    @SETTINGS
    @given(small_matrices(), st.floats(min_value=-3.0, max_value=3.0, allow_nan=False))
    def test_scaling_gradient_matches_scale(self, values, scale):
        tensor = Tensor(values, requires_grad=True)
        (tensor * scale).sum().backward()
        assert np.allclose(tensor.grad, scale)

    @SETTINGS
    @given(small_matrices())
    def test_relu_output_nonnegative_and_bounded_by_input(self, values):
        out = ops.relu(Tensor(values)).data
        assert (out >= 0).all()
        assert (out <= np.maximum(values, 0.0) + 1e-12).all()

    @SETTINGS
    @given(small_matrices())
    def test_softmax_is_probability_distribution(self, values):
        out = ops.softmax(Tensor(values)).data
        assert np.all(out >= 0)
        assert np.allclose(out.sum(axis=-1), 1.0)

    @SETTINGS
    @given(small_matrices())
    def test_sigmoid_bounded(self, values):
        out = ops.sigmoid(Tensor(values)).data
        assert np.all(out >= 0.0) and np.all(out <= 1.0)

    @SETTINGS
    @given(small_matrices())
    def test_addition_commutes(self, values):
        a = Tensor(values)
        b = Tensor(values[::-1].copy())
        assert np.allclose((a + b).data, (b + a).data)

    @SETTINGS
    @given(small_matrices())
    def test_reshape_preserves_sum(self, values):
        tensor = Tensor(values)
        flat = tensor.reshape(values.size)
        assert flat.data.sum() == pytest.approx(values.sum(), rel=1e-9, abs=1e-9)


class TestMetricProperties:
    @SETTINGS
    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=200),
        st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=200),
    )
    def test_binary_counts_sum_to_total(self, y_true, y_pred):
        length = min(len(y_true), len(y_pred))
        y_true, y_pred = np.array(y_true[:length]), np.array(y_pred[:length])
        counts = binary_confusion_counts(y_true, y_pred)
        assert sum(counts.values()) == length

    @SETTINGS
    @given(
        st.lists(st.integers(min_value=0, max_value=4), min_size=2, max_size=150),
        st.lists(st.integers(min_value=0, max_value=4), min_size=2, max_size=150),
    )
    def test_metric_ranges(self, y_true, y_pred):
        length = min(len(y_true), len(y_pred))
        report = evaluate_detection(
            np.array(y_true[:length]), np.array(y_pred[:length]), normal_index=0
        )
        for value in (report.accuracy, report.detection_rate, report.false_alarm_rate,
                      report.precision, report.f1):
            assert 0.0 <= value <= 1.0

    @SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=150))
    def test_perfect_prediction_is_perfect(self, labels):
        labels = np.array(labels)
        report = evaluate_detection(labels, labels, normal_index=0)
        assert report.accuracy == 1.0
        assert report.false_alarm_rate == 0.0
        # DR is 1 whenever there is at least one attack, else 0 by convention.
        assert report.detection_rate in (0.0, 1.0)

    @SETTINGS
    @given(
        st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=100),
        st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=100),
    )
    def test_confusion_matrix_total_and_nonnegative(self, y_true, y_pred):
        length = min(len(y_true), len(y_pred))
        matrix = confusion_matrix(y_true[:length], y_pred[:length], num_classes=4)
        assert matrix.sum() == length
        assert (matrix >= 0).all()

    @SETTINGS
    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=500),
    )
    def test_accuracy_dr_far_consistency(self, tp, tn, fp, fn):
        counts = {"tp": tp, "tn": tn, "fp": fp, "fn": fn}
        assert 0.0 <= accuracy(counts) <= 1.0
        assert 0.0 <= detection_rate(counts) <= 1.0
        assert 0.0 <= false_alarm_rate(counts) <= 1.0


class TestPreprocessingProperties:
    @SETTINGS
    @given(
        arrays(
            dtype=np.float64,
            shape=array_shapes(min_dims=2, max_dims=2, min_side=2, max_side=30),
            elements=finite_floats,
        )
    )
    def test_standard_scaler_output_statistics(self, values):
        scaled = StandardScaler().fit_transform(values)
        assert np.all(np.isfinite(scaled))
        # Columns that are (numerically) constant are only centred, and columns
        # whose spread is at the limit of float precision cannot be checked
        # meaningfully, so the statistical assertions apply to well-conditioned
        # columns only.
        spread = values.std(axis=0)
        informative = spread > 1e-6 * np.maximum(np.abs(values).max(axis=0), 1.0)
        assert np.allclose(scaled.mean(axis=0)[informative], 0.0, atol=1e-7)
        assert np.allclose(scaled.std(axis=0)[informative], 1.0, atol=1e-7)

    @SETTINGS
    @given(
        st.lists(
            st.sampled_from(["tcp", "udp", "icmp", "gre", "sctp"]),
            min_size=1,
            max_size=100,
        )
    )
    def test_one_hot_encoder_row_sums(self, values):
        encoder = OneHotEncoder()
        encoded = encoder.fit_transform({"proto": np.array(values, dtype=object)})
        assert np.allclose(encoded.sum(axis=1), 1.0)
        assert encoded.shape[1] == len(set(values))

    @SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=100))
    def test_one_hot_argmax_roundtrip(self, indices):
        encoded = one_hot(np.array(indices), 10)
        assert np.array_equal(np.argmax(encoded, axis=1), indices)
        assert encoded.sum() == len(indices)

    @SETTINGS
    @given(
        st.lists(
            st.sampled_from(["normal", "dos", "probe", "r2l", "u2r"]),
            min_size=1,
            max_size=80,
        )
    )
    def test_label_encoder_roundtrip(self, labels):
        encoder = LabelEncoder()
        encoded = encoder.fit_transform(labels)
        assert list(encoder.inverse_transform(encoded)) == labels

    @SETTINGS
    @given(
        st.integers(min_value=10, max_value=300),
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=0, max_value=1000),
    )
    def test_kfold_is_a_partition(self, n_samples, n_splits, seed):
        splitter = KFold(n_splits=n_splits, seed=seed)
        seen = []
        for train, test in splitter.split(n_samples):
            assert len(np.intersect1d(train, test)) == 0
            assert len(train) + len(test) == n_samples
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(n_samples))

    @SETTINGS
    @given(
        st.lists(st.sampled_from(["a", "b", "c"]), min_size=12, max_size=200),
        st.integers(min_value=2, max_value=4),
    )
    def test_stratified_kfold_is_a_partition(self, labels, n_splits):
        labels = np.array(labels, dtype=object)
        splitter = StratifiedKFold(n_splits=n_splits, seed=0)
        seen = []
        for train, test in splitter.split(labels):
            assert len(np.intersect1d(train, test)) == 0
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(len(labels)))


class TestResidualBlockProperty:
    @SETTINGS
    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(
                st.integers(min_value=2, max_value=6),
                st.just(1),
                st.just(8),
            ),
            elements=st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
        )
    )
    def test_zeroed_transform_path_reduces_to_shortcut(self, values):
        """For any input, zeroing the GRU makes the residual block an identity
        over the first BN output — the property residual learning relies on."""
        from repro.core import ResidualBlock

        block = ResidualBlock(8, 3, 8, dropout_rate=0.0, seed=0)
        block(values)  # build
        for parameter in block.recurrent.parameters():
            parameter.data[...] = 0.0
        expected = block.input_norm(values, training=False).data
        out = block(values, training=False).data
        assert np.allclose(out, expected, atol=1e-8)
