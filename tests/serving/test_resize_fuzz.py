"""Seeded fuzz test for live pool ``resize()`` under load.

The autoscaler's correctness claim is that resizing a pool mid-stream is
invisible in every report: workers spawn and retire only on batch
boundaries while the reorder buffer keeps committing in submission order.
Each seeded schedule interleaves randomly sized submissions with random
grow/shrink resizes (and occasional mid-stream flushes) on a stub detector
with randomised per-batch scoring delays, then asserts the report is
record-for-record equal to a fixed-size synchronous run of the identical
submissions.
"""

import threading
import time

import numpy as np
import pytest

from repro.data import load_nslkdd
from repro.preprocessing.pipeline import IDSPreprocessor
from repro.serving import DetectionService, ProcessWorkerPool, WorkerPool

pytestmark = pytest.mark.timeout(300)

N_SCHEDULES = 60
MAX_DELAY = 0.002  # seconds; enough to shuffle commit order thoroughly


class _StubNetwork:
    """Deterministic per-record scorer with injectable per-batch delays
    (same contract as the worker-pool fuzz harness: predictions are a hash
    of each record's feature sum, stable under any batch grouping)."""

    def __init__(self, num_classes, delays=None):
        self.num_classes = num_classes
        self._delays = list(delays) if delays is not None else []
        self._lock = threading.Lock()

    def predict(self, inputs, batch_size=None, fast=False):
        with self._lock:
            delay = self._delays.pop() if self._delays else 0.0
        if delay:
            time.sleep(delay)
        sums = np.asarray(inputs).reshape(len(inputs), -1).sum(axis=1)
        classes = np.abs((sums * 1e6).astype(np.int64)) % self.num_classes
        probabilities = np.zeros((len(inputs), self.num_classes))
        probabilities[np.arange(len(inputs)), classes] = 1.0
        return probabilities


class _StubDetector:
    def __init__(self, preprocessor, delays=None):
        self.preprocessor = preprocessor
        self.schema = preprocessor.schema
        self.network = _StubNetwork(
            num_classes=len(preprocessor.label_encoder.classes_), delays=delays
        )

    @property
    def is_fitted(self):
        return True


@pytest.fixture(scope="module")
def fuzz_traffic():
    return load_nslkdd(n_records=180, seed=23)


@pytest.fixture(scope="module")
def fitted_preprocessor(fuzz_traffic):
    return IDSPreprocessor(fuzz_traffic.schema).fit(fuzz_traffic)


def _submissions(traffic, rng):
    cuts, start = [], 0
    while start < len(traffic):
        size = int(rng.integers(1, 51))
        cuts.append(traffic.subset(range(start, min(start + size, len(traffic)))))
        start += size
    return cuts


def _service(preprocessor, delays=None):
    return DetectionService(
        _StubDetector(preprocessor, delays=delays),
        max_batch_size=48,
        flush_interval=1e9,  # only size-triggered drains + explicit flushes
        window=1 << 20,
    )


def _report_row(service):
    report = service.report()
    rolling = report.rolling
    return (
        report.records, report.batches,
        rolling.tp, rolling.tn, rolling.fp, rolling.fn,
    )


def test_resize_under_load_fuzz(fitted_preprocessor, fuzz_traffic):
    """~60 random interleavings of submit / resize / flush: every schedule
    must report record-for-record equal to the fixed-size sync run."""
    failures = []
    for schedule in range(N_SCHEDULES):
        rng = np.random.default_rng(1_000 + schedule)
        submissions = _submissions(fuzz_traffic, rng)
        delays = rng.uniform(0.0, MAX_DELAY, size=len(fuzz_traffic)).tolist()

        # Pre-draw the action schedule so the sync run can mirror the
        # flush points exactly (a mid-stream flush drains a partial batch,
        # which legitimately changes the batch split).
        actions = []
        for _ in submissions:
            roll = rng.random()
            if roll < 0.4:
                actions.append(("resize", int(rng.integers(1, 6))))
            elif roll < 0.5:
                actions.append(("flush", None))
            else:
                actions.append(("none", None))

        sync_service = _service(fitted_preprocessor)
        for records, (action, _) in zip(submissions, actions):
            sync_service.submit(records)
            if action == "flush":
                sync_service.flush()
        sync_service.flush()

        pool_service = _service(fitted_preprocessor, delays=delays)
        with WorkerPool(pool_service, num_workers=1, timer_interval=0) as pool:
            for records, (action, target) in zip(submissions, actions):
                pool.submit(records)
                if action == "resize":
                    pool.resize(target)  # grow or shrink under load
                elif action == "flush":
                    pool.flush()  # drain mid-stream, then keep serving
            pool.flush()

        if _report_row(pool_service) != _report_row(sync_service):
            failures.append(
                f"schedule {schedule}: {_report_row(pool_service)} != "
                f"{_report_row(sync_service)}"
            )
    assert not failures, "\n".join(failures[:10])


def test_process_pool_resize_keeps_counts_equal(detector, traffic):
    """The process backend's resize: children spawn from a checkpoint and
    retire through the graveyard, and the report still equals sync."""
    sync_service = DetectionService(
        detector, max_batch_size=32, flush_interval=0.0, window=1 << 20
    )
    for start in range(0, len(traffic), 50):
        sync_service.submit(
            traffic.subset(range(start, min(start + 50, len(traffic))))
        )
    sync_service.flush()

    pool_service = DetectionService(
        detector, max_batch_size=32, flush_interval=0.0, window=1 << 20
    )
    sizes = [2, 3, 1, 2]
    with ProcessWorkerPool(pool_service, num_workers=1, timer_interval=0) as pool:
        for step, start in enumerate(range(0, len(traffic), 50)):
            pool.submit(
                traffic.subset(range(start, min(start + 50, len(traffic))))
            )
            pool.resize(sizes[step % len(sizes)])
        pool.flush()

    assert _report_row(pool_service) == _report_row(sync_service)
