"""Tests for shard routing and the merged sharded service reports."""

import numpy as np
import pytest

from repro.data import NSLKDD_SCHEMA, TrafficStream, load_nslkdd, nslkdd_generator
from repro.data.generator import StreamBatch
from repro.serving import DetectionService, ShardedDetectionService, ShardRouter


def make_stream(seed=11, batch_size=48):
    return TrafficStream.flood_scenario(nslkdd_generator(), batch_size=batch_size, seed=seed)


def empty_stream(schema, batches=3):
    """A stream whose every batch carries zero records (edge-of-feed lulls)."""
    empty = load_nslkdd(n_records=10, seed=0).subset(range(0))
    for index in range(batches):
        yield StreamBatch(
            records=empty, phase="idle", index=index, phase_index=index, mix={}
        )


class TestShardRouter:
    def test_validation(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardRouter(0)
        with pytest.raises(ValueError, match="unknown policy"):
            ShardRouter(2, "round-robin")
        with pytest.raises(ValueError, match="assignment"):
            ShardRouter(2, "dataset")
        with pytest.raises(ValueError, match="outside"):
            ShardRouter(2, "dataset", {"nsl-kdd": 5})
        with pytest.raises(ValueError, match="outside"):
            ShardRouter(2, "class-family", {"dos": 0}, default=7)

    def test_replica_striping_balances_and_covers(self, traffic):
        router = ShardRouter(3, "replica")
        parts = router.route(traffic)
        sizes = [len(indices) for indices in parts]
        assert sum(sizes) == len(traffic)
        assert max(sizes) - min(sizes) <= 1
        together = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(together, np.arange(len(traffic)))
        # The stripe continues across submissions instead of restarting.
        followup = router.route(traffic.subset(range(1)))
        (shard,) = [i for i, part in enumerate(followup) if len(part)]
        assert shard == len(traffic) % 3

    def test_dataset_policy_routes_whole_submissions(self, traffic):
        router = ShardRouter(2, "dataset", {"nsl-kdd": 1, "unsw-nb15": 0})
        parts = router.route(traffic)
        assert len(parts[0]) == 0
        assert len(parts[1]) == len(traffic)

    def test_dataset_policy_unknown_schema_raises_without_default(self, traffic):
        router = ShardRouter(2, "dataset", {"unsw-nb15": 0})
        with pytest.raises(KeyError, match="no shard assigned"):
            router.route(traffic)
        with_default = ShardRouter(2, "dataset", {"unsw-nb15": 0}, default=1)
        assert len(with_default.route(traffic)[1]) == len(traffic)

    def test_class_family_policy_routes_per_record(self, traffic):
        assignment = {"normal": 0, "dos": 0, "probe": 1, "r2l": 1, "u2r": 1}
        router = ShardRouter(2, "class-family", assignment)
        parts = router.route(traffic)
        labels = traffic.labels
        for shard, indices in enumerate(parts):
            assert all(assignment[str(label)] == shard for label in labels[indices])
        assert sum(len(indices) for indices in parts) == len(traffic)

    def test_class_family_policy_with_custom_key(self, traffic):
        column = NSLKDD_SCHEMA.categorical_names[0]
        values = sorted(set(traffic.categorical[column]))
        assignment = {value: index % 2 for index, value in enumerate(values)}
        router = ShardRouter(
            2, "class-family", assignment,
            key=lambda records: records.categorical[column],
        )
        parts = router.route(traffic)
        assert sum(len(indices) for indices in parts) == len(traffic)


class TestShardedDetectionService:
    def test_shard_count_must_match_router(self, detector):
        service = DetectionService(detector)
        with pytest.raises(ValueError, match="router expects"):
            ShardedDetectionService([service], ShardRouter(2, "replica"))

    def test_replica_sharding_matches_single_service_counts(self, detector):
        """Acceptance: a replica-sharded run merges to the exact confusion
        counts (rolling and per phase) of the single-service run."""
        window = 4096  # wider than the stream so nothing is evicted
        single = DetectionService(
            detector, max_batch_size=96, flush_interval=0.0, window=window
        )
        single_report = single.run_stream(make_stream())

        sharded = ShardedDetectionService.replicated(
            detector, 3, max_batch_size=96, flush_interval=0.0, window=window
        )
        merged_report = sharded.run_stream(make_stream())

        assert merged_report.records == single_report.records
        assert merged_report.rolling.as_dict() == single_report.rolling.as_dict()
        assert set(merged_report.phase_reports) == set(single_report.phase_reports)
        for phase, expected in single_report.phase_reports.items():
            assert merged_report.phase_reports[phase].as_dict() == expected.as_dict()
        # Every shard actually served a share of the traffic.
        assert len(merged_report.shard_reports) == 3
        assert all(
            report.records > 0 for report in merged_report.shard_reports.values()
        )

    def test_sharded_run_with_workers_matches_inline_run(self, detector):
        window = 4096
        inline = ShardedDetectionService.replicated(
            detector, 2, max_batch_size=96, flush_interval=0.0, window=window
        )
        inline_report = inline.run_stream(make_stream())
        pooled = ShardedDetectionService.replicated(
            detector, 2, max_batch_size=96, flush_interval=0.0, window=window
        )
        pooled_report = pooled.run_stream(make_stream(), num_workers=2)
        assert pooled_report.records == inline_report.records
        assert pooled_report.rolling.as_dict() == inline_report.rolling.as_dict()
        for phase, expected in inline_report.phase_reports.items():
            assert pooled_report.phase_reports[phase].as_dict() == expected.as_dict()

    def test_class_family_sharding_partitions_the_stream(self, detector):
        assignment = {"normal": 0, "dos": 0, "probe": 1, "r2l": 1, "u2r": 1}
        shards = [
            DetectionService(detector, max_batch_size=96, flush_interval=0.0)
            for _ in range(2)
        ]
        sharded = ShardedDetectionService(
            shards,
            ShardRouter(2, "class-family", assignment),
            names=["volumetric", "stealth"],
        )
        stream = TrafficStream.probe_sweep_scenario(
            nslkdd_generator(), batch_size=48, seed=7
        )
        report = sharded.run_stream(stream)
        assert report.records == stream.total_records
        assert set(report.shard_reports) == {"volumetric", "stealth"}
        # The sweep phases carry probe traffic, so the stealth shard works.
        assert report.shard_reports["stealth"].records > 0
        assert "horizontal-sweep" in report.phase_reports
        assert "family-mix" in report.phase_reports

    def test_run_stream_clears_prequeued_shard_tails_before_attribution(
        self, detector, traffic
    ):
        sharded = ShardedDetectionService.replicated(
            detector, 2, max_batch_size=1024, flush_interval=1e9, window=4096
        )
        sharded.submit(traffic)  # tails stay queued on both shards
        stream = make_stream()
        report = sharded.run_stream(stream)
        assert report.records == stream.total_records + len(traffic)
        assert sum(r.total for r in report.phase_reports.values()) == (
            stream.total_records
        )

    def test_all_empty_stream_does_not_crash(self, detector):
        single = DetectionService(detector)
        single_report = single.run_stream(empty_stream(NSLKDD_SCHEMA))
        assert single_report.records == 0
        assert single_report.rolling is None
        assert single_report.phase_reports == {}

        sharded = ShardedDetectionService.replicated(detector, 2)
        merged = sharded.run_stream(empty_stream(NSLKDD_SCHEMA))
        assert merged.records == 0
        assert merged.batches == 0
        assert merged.rolling is None
        assert merged.throughput == 0.0
        assert merged.phase_reports == {}

    def test_merged_report_sums_unknown_categoricals(self, detector, traffic):
        sharded = ShardedDetectionService.replicated(detector, 2, flush_interval=0.0)
        drifted = traffic.subset(range(len(traffic)))
        column = NSLKDD_SCHEMA.categorical_names[0]
        drifted.categorical[column][:20] = "quic-v2"
        sharded.submit(drifted)
        sharded.flush()
        report = sharded.report()
        assert report.unknown_categoricals[column] == 20
        assert report.records == len(traffic)
