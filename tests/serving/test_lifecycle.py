"""Tests for the detector lifecycle subsystem: checkpoints, shadow
deployment, drift supervision and the zero-drop hot-swap.

The hot-swap acceptance bar — served under live traffic, a swap drops or
duplicates zero records and the confusion counts are bitwise-equal to a
drain-stop-restart deployment at the same boundary — is asserted across
all three execution models (synchronous, worker-pool, sharded).
"""

import threading
import time

import numpy as np
import pytest

from repro.data import load_nslkdd, load_unswnb15, nslkdd_generator
from repro.metrics.ids_metrics import DetectionReport
from repro.nn.inference import weights_epoch
from repro.scenarios import flood_scenario, retrain_recovery_scenario
from repro.serving import (
    DetectionService,
    DetectorCheckpoint,
    DriftPolicy,
    DriftSupervisor,
    ReplayBuffer,
    ShadowDeployment,
    ShardedDetectionService,
    WorkerPool,
)

pytestmark = pytest.mark.timeout(120)


@pytest.fixture(scope="module")
def challenger(detector):
    """A second fitted NSL-KDD detector (the promotion target)."""
    clone = detector.clone_architecture(seed=5)
    clone.fit(load_nslkdd(n_records=300, seed=21))
    return clone


@pytest.fixture()
def stream():
    return flood_scenario(
        nslkdd_generator(), batch_size=32, seed=3,
        baseline_batches=3, burst_batches=2, drift_batches=2,
    )


def _service(detector, **overrides):
    kwargs = dict(max_batch_size=32, flush_interval=0.0, window=1 << 20)
    kwargs.update(overrides)
    return DetectionService(detector, **kwargs)


def _counts(report):
    rolling = report.rolling
    return (rolling.tp, rolling.tn, rolling.fp, rolling.fn)


def _serve_batches(sink, batches):
    """Push stream batches through a submit/flush interface, collecting
    every BatchResult in commit order."""
    results = []
    for stream_batch in batches:
        results.extend(sink.submit(stream_batch.records))
    results.extend(sink.flush())
    return results


def _merged_counts(*reports):
    merged = DetectionReport.merge([r.rolling for r in reports])
    return (merged.tp, merged.tn, merged.fp, merged.fn)


# ---------------------------------------------------------------------- #
# DetectorCheckpoint
# ---------------------------------------------------------------------- #
class TestDetectorCheckpoint:
    def test_roundtrip_is_bitwise_identical(self, detector, tmp_path):
        test_records = load_nslkdd(n_records=120, seed=31)
        reference_fast = detector.predict_proba(test_records, fast=True)
        reference_graph = detector.predict_proba(test_records, fast=False)

        path = DetectorCheckpoint.capture(detector).save(tmp_path / "pelican")
        restored = DetectorCheckpoint.load(path).restore()

        assert np.array_equal(
            restored.predict_proba(test_records, fast=True), reference_fast
        )
        assert np.array_equal(
            restored.predict_proba(test_records, fast=False), reference_graph
        )
        assert np.array_equal(
            restored.predict(test_records, fast=True),
            detector.predict(test_records, fast=True),
        )

    def test_folded_bn_cache_is_rederived_after_load(self, detector, tmp_path):
        """Restoring moves the weights epoch, so the fast path's folded
        batch-norm constants are recomputed from the restored buffers."""
        path = DetectorCheckpoint.capture(detector).save(tmp_path / "d")
        epoch_before = weights_epoch()
        restored = DetectorCheckpoint.load(path).restore()
        assert weights_epoch() > epoch_before
        # The rebuilt network's buffers equal the original's bitwise; the
        # bitwise-equal fast predictions above then prove the folded cache
        # was derived from them, not from the fresh build's zeros/ones.
        for ours, theirs in zip(
            restored.network.get_buffers(), detector.network.get_buffers()
        ):
            assert np.array_equal(ours, theirs)

    def test_preprocessor_statistics_restored_exactly(self, detector, tmp_path):
        path = DetectorCheckpoint.capture(detector).save(tmp_path / "d")
        restored = DetectorCheckpoint.load(path).restore()
        original = detector.preprocessor
        clone = restored.preprocessor
        assert clone.encoder.categories_ == original.encoder.categories_
        assert np.array_equal(clone.scaler.mean_, original.scaler.mean_)
        assert np.array_equal(clone.scaler.scale_, original.scaler.scale_)
        assert clone.label_encoder.classes_ == original.label_encoder.classes_

    def test_restored_detector_is_independent(self, detector, tmp_path):
        path = DetectorCheckpoint.capture(detector).save(tmp_path / "d")
        restored = DetectorCheckpoint.load(path).restore()
        test_records = load_nslkdd(n_records=60, seed=32)
        reference = detector.predict_proba(test_records, fast=True)
        # Corrupt the restored copy; the original must not move.
        restored.network.set_weights(
            [w * 0.5 for w in restored.network.get_weights()]
        )
        assert np.array_equal(
            detector.predict_proba(test_records, fast=True), reference
        )

    def test_capture_requires_a_fitted_detector(self):
        from repro.core import PelicanDetector
        from repro.data import NSLKDD_SCHEMA

        unfitted = PelicanDetector(NSLKDD_SCHEMA, num_blocks=1)
        with pytest.raises(RuntimeError, match="fitted"):
            DetectorCheckpoint.capture(unfitted)

    def test_weight_only_archives_are_rejected(self, detector, tmp_path):
        from repro.nn.serialization import save_weights

        path = save_weights(detector.network, tmp_path / "bare")
        with pytest.raises(ValueError, match="not a detector checkpoint"):
            DetectorCheckpoint.load(path)

    def test_restored_detector_serves(self, detector, stream, tmp_path):
        """End to end: a restored detector drops into the serving tier and
        produces the identical stream report."""
        path = DetectorCheckpoint.capture(detector).save(tmp_path / "d")
        restored = DetectorCheckpoint.load(path).restore()
        report_original = _service(detector).run_stream(stream)
        report_restored = _service(restored).run_stream(stream)
        assert _counts(report_original) == _counts(report_restored)


# ---------------------------------------------------------------------- #
# swap_detector
# ---------------------------------------------------------------------- #
class TestSwapDetector:
    def test_swap_rejects_unfitted_and_wrong_schema(self, detector, unsw_detector):
        from repro.core import PelicanDetector
        from repro.data import NSLKDD_SCHEMA

        service = _service(detector)
        with pytest.raises(RuntimeError, match="fitted"):
            service.swap_detector(PelicanDetector(NSLKDD_SCHEMA, num_blocks=1))
        with pytest.raises(ValueError, match="class order"):
            service.swap_detector(unsw_detector)

    def test_swap_returns_the_retired_detector(self, detector, challenger):
        service = _service(detector)
        retired = service.swap_detector(challenger)
        assert retired is detector
        assert service.detector is challenger

    def test_swap_preserves_monitor_history(self, detector, challenger):
        service = _service(detector)
        records = load_nslkdd(n_records=64, seed=33)
        service.process(records)
        seen_before = service.monitor.seen
        service.swap_detector(challenger)
        assert service.monitor.seen == seen_before
        service.process(records)
        assert service.monitor.seen == seen_before + len(records)

    def test_swap_carries_unknown_categorical_counts(self, detector, challenger):
        service = _service(detector)
        records = load_nslkdd(n_records=32, seed=34)
        records.categorical["service"][:] = "never-seen-service"
        service.process(records)
        assert service.report().unknown_categoricals["service"] == 32
        service.swap_detector(challenger)
        assert service.report().unknown_categoricals["service"] == 32
        service.process(records)
        assert service.report().unknown_categoricals["service"] == 64


# ---------------------------------------------------------------------- #
# Zero-drop hot-swap: bitwise equality with drain-stop-restart
# ---------------------------------------------------------------------- #
class TestHotSwapEquality:
    """The acceptance bar, per execution model: a hot-swap at batch
    boundary k produces record-for-record the results of draining service
    A over batches [0, k), stopping, and restarting service B over
    batches [k, end)."""

    BOUNDARY = 4

    def _baseline(self, detector, challenger, batches, make_sink):
        first = _serve_batches(make_sink(detector), batches[: self.BOUNDARY])
        second = _serve_batches(make_sink(challenger), batches[self.BOUNDARY:])
        return first + second

    @staticmethod
    def _predictions(results):
        return np.concatenate([r.predictions for r in results])

    def test_synchronous(self, detector, challenger, stream):
        batches = list(stream)
        service = _service(detector)
        results = []
        for index, stream_batch in enumerate(batches):
            if index == self.BOUNDARY:
                results.extend(service.flush())
                service.swap_detector(challenger)
            results.extend(service.submit(stream_batch.records))
        results.extend(service.flush())

        baseline = self._baseline(
            detector, challenger, batches, lambda d: _service(d)
        )
        assert np.array_equal(
            self._predictions(results), self._predictions(baseline)
        )
        service_a = _service(detector)
        service_b = _service(challenger)
        _serve_batches(service_a, batches[: self.BOUNDARY])
        _serve_batches(service_b, batches[self.BOUNDARY:])
        assert _counts(service.report()) == _merged_counts(
            service_a.report(), service_b.report()
        )
        assert service.report().records == sum(len(b.records) for b in batches)

    def test_worker_pool(self, detector, challenger, stream):
        batches = list(stream)
        service = _service(detector)
        results = []
        with WorkerPool(service, num_workers=3) as pool:
            for index, stream_batch in enumerate(batches):
                if index == self.BOUNDARY:
                    # flush joins every in-flight batch: the swap commits on
                    # a batch boundary with nothing pending anywhere.
                    results.extend(pool.flush())
                    service.swap_detector(challenger)
                results.extend(pool.submit(stream_batch.records))
            results.extend(pool.flush())

        baseline = self._baseline(
            detector, challenger, batches, lambda d: _service(d)
        )
        assert np.array_equal(
            self._predictions(results), self._predictions(baseline)
        )
        assert service.report().records == sum(len(b.records) for b in batches)

    def test_sharded(self, detector, challenger, stream):
        batches = list(stream)
        sharded = ShardedDetectionService.replicated(
            detector, 2, max_batch_size=32, flush_interval=0.0, window=1 << 20
        )
        results = []
        for index, stream_batch in enumerate(batches):
            if index == self.BOUNDARY:
                results.extend(sharded.flush())
                for shard in sharded.shards:
                    shard.swap_detector(challenger)
            results.extend(sharded.submit(stream_batch.records))
        results.extend(sharded.flush())

        sharded_a = ShardedDetectionService.replicated(
            detector, 2, max_batch_size=32, flush_interval=0.0, window=1 << 20
        )
        sharded_b = ShardedDetectionService.replicated(
            challenger, 2, max_batch_size=32, flush_interval=0.0, window=1 << 20
        )
        _serve_batches(sharded_a, batches[: self.BOUNDARY])
        _serve_batches(sharded_b, batches[self.BOUNDARY:])
        assert _counts(sharded.report()) == _merged_counts(
            sharded_a.report(), sharded_b.report()
        )
        assert sharded.report().records == sum(len(b.records) for b in batches)


# ---------------------------------------------------------------------- #
# ShadowDeployment
# ---------------------------------------------------------------------- #
class TestShadowDeployment:
    def test_identical_challenger_has_zero_deltas(self, detector, stream):
        shadow = ShadowDeployment(_service(detector), detector)
        report = shadow.run_stream(stream)
        assert report.comparison.dr_delta == 0.0
        assert report.comparison.far_delta == 0.0
        assert report.comparison.acc_delta == 0.0
        assert report.challenger.records == report.primary.records
        assert set(report.challenger.phase_reports) == set(
            report.primary.phase_reports
        )

    def test_challenger_scores_every_record(self, detector, challenger, stream):
        shadow = ShadowDeployment(_service(detector), challenger)
        report = shadow.run_stream(stream)
        total = sum(len(b.records) for b in stream)
        assert report.primary.records == total
        assert report.challenger.records == total
        assert report.comparison.records == total
        assert report.comparison.phase_deltas.keys() == (
            report.primary.phase_reports.keys()
        )

    def test_primary_results_are_not_contaminated(self, detector, challenger, stream):
        solo = _service(detector).run_stream(stream)
        shadowed = ShadowDeployment(_service(detector), challenger).run_stream(stream)
        assert _counts(solo) == _counts(shadowed.primary)

    def test_shadow_over_worker_pool(self, detector, challenger, stream):
        pool = WorkerPool(_service(detector), num_workers=2)
        report = ShadowDeployment(pool, challenger).run_stream(stream)
        solo = _service(detector).run_stream(stream)
        assert _counts(report.primary) == _counts(solo)
        assert report.challenger.records == report.primary.records

    def test_shadow_over_sharded(self, detector, challenger, stream):
        sharded = ShardedDetectionService.replicated(
            detector, 2, max_batch_size=32, flush_interval=0.0, window=1 << 20
        )
        report = ShadowDeployment(sharded, challenger).run_stream(stream)
        assert report.challenger.records == report.primary.records

    def test_class_order_mismatch_rejected(self, detector, unsw_detector):
        with pytest.raises(ValueError, match="class order"):
            ShadowDeployment(_service(detector), unsw_detector)

    def test_challenger_wins_gate(self):
        from repro.serving.lifecycle.shadow import ShadowComparison

        better = ShadowComparison(records=100, dr_delta=0.05, far_delta=-0.01,
                                  acc_delta=0.04)
        worse = ShadowComparison(records=100, dr_delta=-0.02, far_delta=0.08,
                                 acc_delta=-0.05)
        assert better.challenger_wins()
        assert not worse.challenger_wins()
        assert not better.challenger_wins(min_dr_gain=0.10)
        assert better.challenger_wins(max_far_regression=0.0)


# ---------------------------------------------------------------------- #
# DriftPolicy / ReplayBuffer
# ---------------------------------------------------------------------- #
class TestDriftPolicy:
    def _report(self, tp, tn, fp, fn):
        from repro.metrics.ids_metrics import evaluate_detection

        true = np.array([1] * (tp + fn) + [0] * (tn + fp))
        predicted = np.array([1] * tp + [0] * fn + [0] * tn + [1] * fp)
        return evaluate_detection(true, predicted, normal_index=0)

    def test_needs_at_least_one_threshold(self):
        with pytest.raises(ValueError, match="at least one"):
            DriftPolicy()

    def test_far_ceiling_trips(self):
        policy = DriftPolicy(far_ceiling=0.10, min_records=10)
        healthy = self._report(tp=40, tn=50, fp=2, fn=2)
        degraded = self._report(tp=40, tn=40, fp=12, fn=2)
        assert policy.check(healthy, 0) is None
        assert "FAR" in policy.check(degraded, 0)

    def test_dr_floor_trips_only_with_attacks_in_window(self):
        policy = DriftPolicy(dr_floor=0.90, min_records=10)
        degraded = self._report(tp=10, tn=70, fp=1, fn=10)
        benign_only = self._report(tp=0, tn=90, fp=1, fn=0)
        assert "DR" in policy.check(degraded, 0)
        assert policy.check(benign_only, 0) is None  # vacuous DR must not trip

    def test_min_records_defers_quality_checks(self):
        policy = DriftPolicy(far_ceiling=0.01, min_records=1000)
        degraded = self._report(tp=10, tn=10, fp=10, fn=10)
        assert policy.check(degraded, 0) is None

    def test_unknown_ceiling_trips_without_quality_data(self):
        policy = DriftPolicy(unknown_ceiling=50)
        assert policy.check(None, 49) is None
        assert "unknown" in policy.check(None, 50)


class TestReplayBuffer:
    def test_evicts_oldest_whole_batches(self):
        buffer = ReplayBuffer(max_records=100)
        first = load_nslkdd(n_records=60, seed=1)
        second = load_nslkdd(n_records=60, seed=2)
        third = load_nslkdd(n_records=30, seed=3)
        buffer.append(first)
        buffer.append(second)
        assert len(buffer) == 60  # first batch evicted to honour the bound
        buffer.append(third)
        assert len(buffer) == 90
        snapshot = buffer.snapshot()
        assert len(snapshot) == 90
        assert np.array_equal(snapshot.labels[:60], second.labels)
        assert np.array_equal(snapshot.labels[60:], third.labels)

    def test_a_single_oversized_batch_is_kept(self):
        buffer = ReplayBuffer(max_records=10)
        big = load_nslkdd(n_records=40, seed=4)
        buffer.append(big)
        assert len(buffer) == 40  # never evicted down to nothing
        assert len(buffer.snapshot()) == 40

    def test_snapshot_of_empty_buffer_raises(self):
        with pytest.raises(RuntimeError, match="empty"):
            ReplayBuffer().snapshot()


# ---------------------------------------------------------------------- #
# DriftSupervisor
# ---------------------------------------------------------------------- #
class TestDriftSupervisor:
    POLICY = DriftPolicy(far_ceiling=0.0, min_records=32)  # trips on any FP

    def _stub_trainer(self, challenger):
        calls = []

        def trainer(records, serving):
            calls.append(len(records))
            return challenger

        trainer.calls = calls
        return trainer

    def test_sync_lifecycle_events_and_swap(self, detector, challenger, stream):
        service = _service(detector)
        trainer = self._stub_trainer(challenger)
        supervisor = DriftSupervisor(
            service, self.POLICY, trainer=trainer, background=False
        )
        outcome = supervisor.run_stream(stream)

        kinds = [event.kind for event in outcome.events]
        assert kinds[:3] == ["drift-detected", "retrain-complete", "promoted"]
        assert outcome.triggered and outcome.promoted
        assert outcome.recovery_batches is not None
        assert outcome.recovery_seconds is not None
        assert service.detector is challenger
        assert trainer.calls, "trainer was never invoked"
        total = sum(len(b.records) for b in stream)
        assert outcome.report.records == total
        assert len(outcome.dr_curve) == len(list(stream))
        assert sum(
            r.total for r in outcome.report.phase_reports.values()
        ) == total

    @pytest.mark.parametrize("model", ["synchronous", "worker-pool", "sharded"])
    def test_supervised_swap_equals_drain_stop_restart(
        self, detector, challenger, stream, model
    ):
        """The acceptance criterion, supervisor-driven, per execution model:
        counts after a supervised hot-swap equal a drain-stop-restart run
        split at the boundary the supervisor actually committed on."""
        batches = list(stream)
        if model == "synchronous":
            target = _service(detector)
        elif model == "worker-pool":
            target = WorkerPool(_service(detector), num_workers=2)
        else:
            target = ShardedDetectionService.replicated(
                detector, 2, max_batch_size=32, flush_interval=0.0,
                window=1 << 20,
            )
        supervisor = DriftSupervisor(
            target, self.POLICY, trainer=self._stub_trainer(challenger),
            background=False,
        )

        def paced():
            # Drain the pool between batches: these tiny batches are all
            # submitted in well under a millisecond, so on a loaded host
            # the pool may commit nothing before the stream ends and the
            # policy would never see a rolling report (a scheduling flake,
            # not a serving bug — the boundary equality below holds for
            # whichever boundary the supervisor picks).
            for stream_batch in batches:
                yield stream_batch
                if isinstance(target, WorkerPool) and target.running:
                    target.join()

        outcome = supervisor.run_stream(paced())
        assert outcome.promoted
        promoted = next(e for e in outcome.events if e.kind == "promoted")
        boundary = promoted.batch_index + 1  # swap commits after that batch

        service_a = _service(detector)
        service_b = _service(challenger)
        _serve_batches(service_a, batches[:boundary])
        _serve_batches(service_b, batches[boundary:])
        assert _counts(outcome.report) == _merged_counts(
            service_a.report(), service_b.report()
        )
        assert outcome.report.records == sum(len(b.records) for b in batches)

    def test_background_retrain_promotes(self, detector, challenger):
        service = _service(detector)
        trained = threading.Event()

        def slow_trainer(records, serving):
            time.sleep(0.02)
            trained.set()
            return challenger

        def paced(batches):
            # Serving continues while the trainer works; pacing guarantees
            # batch boundaries still occur after the retrain completes.
            for stream_batch in batches:
                yield stream_batch
                if not trained.is_set():
                    time.sleep(0.005)

        supervisor = DriftSupervisor(
            service, self.POLICY, trainer=slow_trainer, background=True
        )
        outcome = supervisor.run_stream(paced(self._long_stream()))
        assert outcome.promoted
        assert service.detector is challenger
        assert outcome.report.records == self._long_stream().total_records

    @staticmethod
    def _long_stream():
        return flood_scenario(
            nslkdd_generator(), batch_size=32, seed=3,
            baseline_batches=6, burst_batches=4, drift_batches=4,
        )

    def test_retrain_failure_is_an_event_not_a_crash(self, detector, stream):
        def failing_trainer(records, serving):
            raise RuntimeError("no GPU today")

        service = _service(detector)
        supervisor = DriftSupervisor(
            service, self.POLICY, trainer=failing_trainer, background=False,
            max_retrains=1,
        )
        outcome = supervisor.run_stream(stream)
        kinds = [event.kind for event in outcome.events]
        assert kinds == ["drift-detected", "retrain-failed"]
        assert service.detector is detector
        assert outcome.report.records == sum(len(b.records) for b in stream)

    def test_trial_rejection_keeps_the_primary(self, detector, challenger, stream):
        service = _service(detector)
        supervisor = DriftSupervisor(
            service, self.POLICY, trainer=self._stub_trainer(challenger),
            background=False, shadow_batches=2,
            promote_if=lambda trial, rolling: False,
        )
        outcome = supervisor.run_stream(self._long_stream())
        kinds = [event.kind for event in outcome.events]
        assert "trial-rejected" in kinds
        assert "promoted" not in kinds
        assert service.detector is detector

    def test_trial_approval_promotes_with_detail(self, detector, challenger):
        service = _service(detector)
        supervisor = DriftSupervisor(
            service, self.POLICY, trainer=self._stub_trainer(challenger),
            background=False, shadow_batches=2,
            promote_if=lambda trial, rolling: True,
        )
        outcome = supervisor.run_stream(self._long_stream())
        promoted = next(e for e in outcome.events if e.kind == "promoted")
        assert "trial" in promoted.detail
        assert service.detector is challenger

    def test_unknown_categorical_trigger(self, detector, challenger):
        def inject_unknown(batches):
            for stream_batch in batches:
                stream_batch.records.categorical["service"][:] = "vocab-drift"
                yield stream_batch

        service = _service(detector)
        supervisor = DriftSupervisor(
            service,
            DriftPolicy(unknown_ceiling=64),
            trainer=self._stub_trainer(challenger),
            background=False,
        )
        outcome = supervisor.run_stream(inject_unknown(self._long_stream()))
        detected = next(e for e in outcome.events if e.kind == "drift-detected")
        assert "unknown" in detected.detail["reason"]
        assert outcome.promoted

    def test_worker_pool_with_callback_rejected(self, detector):
        pool = WorkerPool(
            _service(detector), num_workers=1, result_callback=lambda r: None
        )
        with pytest.raises(ValueError, match="result_callback"):
            DriftSupervisor(pool, self.POLICY)

    def test_recovery_on_the_retrain_recovery_preset(self, detector):
        """The headline story: evasion drift tanks DR, the supervisor
        retrains on its replay buffer and post-swap DR recovers."""
        stream = retrain_recovery_scenario(
            nslkdd_generator(), batch_size=48, seed=0,
            baseline_batches=3, onset_batches=4, degraded_batches=6,
            recovery_batches=4,
        )
        unsupervised = _service(detector, window=512).run_stream(stream)
        degraded_dr = unsupervised.phase_reports[
            "recovery-window"
        ].detection_rate

        service = _service(detector, window=512)
        supervisor = DriftSupervisor(
            service,
            DriftPolicy(dr_floor=0.80, far_ceiling=0.20, min_records=128),
            background=False,  # default trainer: clone + fit on the replay
            replay_records=1024,
        )
        outcome = supervisor.run_stream(stream)
        assert outcome.promoted, [str(e) for e in outcome.events]
        recovered_dr = outcome.report.phase_reports[
            "recovery-window"
        ].detection_rate
        assert recovered_dr > degraded_dr + 0.2, (
            f"supervised DR {recovered_dr:.3f} did not recover from "
            f"unsupervised {degraded_dr:.3f}"
        )
