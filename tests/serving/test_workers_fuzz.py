"""Seeded fuzz test for the :class:`WorkerPool` reorder buffer.

A stub detector with *randomised per-batch scoring delays* maximises
commit-order chaos on the thread pool: batches finish in arbitrary order,
so any hole in the reorder buffer's in-order-commit guarantee shows up as
out-of-order results, torn monitor updates or dropped/duplicated records.

Per random schedule the test asserts, against a synchronous run of the
identical submissions:

* committed results arrive in **submission order** (batch size sequence and
  per-record prediction sequence are identical);
* the :class:`ServiceReport` is **record-for-record equal**: same record
  and batch totals, same rolling confusion counts.

~200 seeded schedules run in a few seconds because the stub never touches
a real network: predictions are a cheap deterministic per-record function,
so batch grouping and thread interleaving cannot change them.
"""

import threading
import time

import numpy as np
import pytest

from repro.data import load_nslkdd
from repro.preprocessing.pipeline import IDSPreprocessor
from repro.serving import DetectionService, WorkerPool

pytestmark = pytest.mark.timeout(120)

N_SCHEDULES = 200
N_WORKERS = 4
MAX_DELAY = 0.002  # seconds; enough to shuffle commit order thoroughly


class _StubNetwork:
    """Deterministic per-record scorer with injectable per-batch delays.

    The predicted class is a hash of each record's feature sum — stable
    under any batch grouping or thread interleaving — so sync and
    concurrent runs must agree record for record.
    """

    def __init__(self, num_classes, delays=None):
        self.num_classes = num_classes
        self._delays = list(delays) if delays is not None else []
        self._lock = threading.Lock()

    def predict(self, inputs, batch_size=None, fast=False):
        with self._lock:
            delay = self._delays.pop() if self._delays else 0.0
        if delay:
            time.sleep(delay)
        sums = np.asarray(inputs).reshape(len(inputs), -1).sum(axis=1)
        classes = np.abs((sums * 1e6).astype(np.int64)) % self.num_classes
        probabilities = np.zeros((len(inputs), self.num_classes))
        probabilities[np.arange(len(inputs)), classes] = 1.0
        return probabilities


class _StubDetector:
    """Just enough of the PelicanDetector surface for DetectionService."""

    def __init__(self, preprocessor, delays=None):
        self.preprocessor = preprocessor
        self.schema = preprocessor.schema
        self.network = _StubNetwork(
            num_classes=len(preprocessor.label_encoder.classes_), delays=delays
        )

    @property
    def is_fitted(self):
        return True


@pytest.fixture(scope="module")
def fuzz_traffic():
    return load_nslkdd(n_records=180, seed=17)


@pytest.fixture(scope="module")
def fitted_preprocessor(fuzz_traffic):
    return IDSPreprocessor(fuzz_traffic.schema).fit(fuzz_traffic)


def _submissions(traffic, rng):
    """Split the traffic into randomly sized submissions (1..50 records)."""
    cuts, start = [], 0
    while start < len(traffic):
        size = int(rng.integers(1, 51))
        cuts.append(traffic.subset(range(start, min(start + size, len(traffic)))))
        start += size
    return cuts

def _run_sync(preprocessor, submissions):
    service = DetectionService(
        _StubDetector(preprocessor),
        max_batch_size=48,
        flush_interval=1e9,  # only size-triggered drains + the final flush
        window=1 << 20,
    )
    results = []
    for records in submissions:
        results.extend(service.submit(records))
    results.extend(service.flush())
    return service, results


def _run_pool(preprocessor, submissions, delays):
    service = DetectionService(
        _StubDetector(preprocessor, delays=delays),
        max_batch_size=48,
        flush_interval=1e9,
        window=1 << 20,
    )
    results = []
    # timer_interval=0: no background age timer — with the huge flush
    # interval every batch is size-triggered, identically to the sync run.
    with WorkerPool(service, num_workers=N_WORKERS, timer_interval=0) as pool:
        for records in submissions:
            results.extend(pool.submit(records))
        results.extend(pool.flush())
    return service, results


def _flatten(results, field):
    return np.concatenate([getattr(r, field) for r in results])


def test_reorder_buffer_fuzz(fitted_preprocessor, fuzz_traffic):
    """~200 random delay schedules: in-order commits, reports equal sync."""
    failures = []
    for schedule in range(N_SCHEDULES):
        rng = np.random.default_rng(schedule)
        submissions = _submissions(fuzz_traffic, rng)
        n_batches_upper = len(fuzz_traffic)  # one delay per possible batch
        delays = rng.uniform(0.0, MAX_DELAY, size=n_batches_upper).tolist()

        sync_service, sync_results = _run_sync(fitted_preprocessor, submissions)
        pool_service, pool_results = _run_pool(
            fitted_preprocessor, submissions, delays
        )

        sync_sizes = [r.size for r in sync_results]
        pool_sizes = [r.size for r in pool_results]
        if sync_sizes != pool_sizes:
            failures.append(f"schedule {schedule}: batch split {pool_sizes} "
                            f"!= sync {sync_sizes}")
            continue
        if not np.array_equal(
            _flatten(sync_results, "class_indices"),
            _flatten(pool_results, "class_indices"),
        ):
            failures.append(f"schedule {schedule}: predictions out of order")
            continue
        if not np.array_equal(
            _flatten(sync_results, "true_indices"),
            _flatten(pool_results, "true_indices"),
        ):
            failures.append(f"schedule {schedule}: labels out of order")
            continue

        sync_report = sync_service.report()
        pool_report = pool_service.report()
        if (sync_report.records, sync_report.batches) != (
            pool_report.records, pool_report.batches
        ):
            failures.append(
                f"schedule {schedule}: totals {pool_report.records}/"
                f"{pool_report.batches} != {sync_report.records}/"
                f"{sync_report.batches}"
            )
            continue
        sync_rolling, pool_rolling = sync_report.rolling, pool_report.rolling
        if (sync_rolling.tp, sync_rolling.tn, sync_rolling.fp, sync_rolling.fn) != (
            pool_rolling.tp, pool_rolling.tn, pool_rolling.fp, pool_rolling.fn
        ):
            failures.append(f"schedule {schedule}: confusion counts differ")

    assert not failures, "\n".join(failures[:10])


def test_stub_predictions_are_grouping_invariant(fitted_preprocessor, fuzz_traffic):
    """Sanity check of the fuzz harness itself: the stub's predictions do
    not depend on how records are batched."""
    service = DetectionService(
        _StubDetector(fitted_preprocessor), max_batch_size=48,
        flush_interval=0.0, window=1 << 20,
    )
    whole = service.score(fuzz_traffic)
    halves = [
        service.score(fuzz_traffic.subset(range(0, 90))),
        service.score(fuzz_traffic.subset(range(90, len(fuzz_traffic)))),
    ]
    assert np.array_equal(
        whole.class_indices, np.concatenate([h.class_indices for h in halves])
    )
