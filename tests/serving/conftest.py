"""Shared fixtures for the serving suite: one small fitted detector.

Fitting even a 1-block detector dominates the suite's runtime, so the
service, worker-pool and sharding tests all share this package-scoped
fixture instead of training their own.
"""

import pytest

from repro.core import PelicanDetector
from repro.data import NSLKDD_SCHEMA, load_nslkdd


@pytest.fixture(scope="package")
def detector():
    records = load_nslkdd(n_records=400, seed=11)
    detector = PelicanDetector(
        NSLKDD_SCHEMA, num_blocks=1, epochs=2, batch_size=64,
        dropout_rate=0.3, seed=0,
    )
    detector.fit(records)
    return detector


@pytest.fixture()
def traffic():
    return load_nslkdd(n_records=150, seed=12)
