"""Shared fixtures for the serving suite: small fitted detectors and a
per-test resource-leak check.

Fitting even a 1-block detector dominates the suite's runtime, so the
service, worker-pool, sharding, fleet and scenario-suite tests all share
these package-scoped fixtures (built once per test session) instead of
training their own:

* ``detector`` — the NSL-KDD detector used by most of the suite;
* ``unsw_detector`` — its UNSW-NB15 counterpart;
* ``fleet_detectors`` — both, keyed by schema name, the cheap two-corpus
  fixture behind the cross-dataset fleet tests (ROADMAP: "cross-dataset
  fleet example").

The autouse ``_no_leaked_serving_resources`` fixture asserts after every
test that nothing the serving layer spawns survives it: no extra
non-daemon threads, no live child processes, and no shared-memory
segments still registered by :mod:`repro.serving.transport` — the
resource-tracker assertion the zero-copy data plane is held to (a
SIGKILL'd child must not leak its slot ring).  The check itself lives in
the root ``conftest.py`` (``serving_leak_check``) so the ingest suite's
ingress tests are held to the same standard.
"""

import pytest

from repro.core import PelicanDetector
from repro.data import (
    NSLKDD_SCHEMA,
    UNSWNB15_SCHEMA,
    load_nslkdd,
    load_unswnb15,
)


@pytest.fixture(autouse=True)
def _no_leaked_serving_resources(serving_leak_check):
    """Fail any serving test that leaks a thread, a child process or a
    shared-memory segment past its own teardown (see root conftest)."""
    yield


@pytest.fixture(scope="package")
def detector():
    records = load_nslkdd(n_records=400, seed=11)
    detector = PelicanDetector(
        NSLKDD_SCHEMA, num_blocks=1, epochs=2, batch_size=64,
        dropout_rate=0.3, seed=0,
    )
    detector.fit(records)
    return detector


@pytest.fixture(scope="package")
def unsw_detector():
    records = load_unswnb15(n_records=400, seed=11)
    detector = PelicanDetector(
        UNSWNB15_SCHEMA, num_blocks=1, epochs=2, batch_size=64,
        dropout_rate=0.3, seed=0,
    )
    detector.fit(records)
    return detector


@pytest.fixture(scope="package")
def fleet_detectors(detector, unsw_detector):
    """Two-corpus detector fleet keyed by schema name."""
    return {"nsl-kdd": detector, "unsw-nb15": unsw_detector}


@pytest.fixture()
def traffic():
    return load_nslkdd(n_records=150, seed=12)
