"""Tests for the cached preprocessing pipeline, monitors and DetectionService."""

import numpy as np
import pytest

from repro.core import PelicanDetector
from repro.data import NSLKDD_SCHEMA, TrafficStream, nslkdd_generator
from repro.serving import (
    CachedPreprocessor,
    DetectionService,
    RollingDetectionMonitor,
    ThroughputMonitor,
)


class TestCachedPreprocessor:
    def test_matches_training_pipeline(self, detector, traffic):
        prepared = detector.preprocessor.transform(traffic)
        cached = CachedPreprocessor(detector.preprocessor)
        np.testing.assert_allclose(
            cached.transform_inputs(traffic), prepared.inputs, atol=1e-9, rtol=0
        )
        np.testing.assert_array_equal(
            cached.encode_labels(traffic), prepared.class_indices
        )
        assert cached.normal_index == prepared.normal_index
        assert cached.class_names == prepared.class_names

    def test_decode_inverts_encode(self, detector, traffic):
        cached = CachedPreprocessor(detector.preprocessor)
        decoded = cached.decode_labels(cached.encode_labels(traffic))
        np.testing.assert_array_equal(decoded, traffic.labels)

    def test_requires_fitted_preprocessor(self):
        from repro.preprocessing import IDSPreprocessor

        with pytest.raises(RuntimeError, match="fitted"):
            CachedPreprocessor(IDSPreprocessor(NSLKDD_SCHEMA))


class TestMonitors:
    def test_rolling_report_uses_only_the_window(self):
        monitor = RollingDetectionMonitor(normal_index=0, window=4)
        # First four records: all wrong (attacks missed).
        monitor.update(np.array([1, 1, 1, 1]), np.array([0, 0, 0, 0]))
        assert monitor.report().detection_rate == 0.0
        # Four perfect records push the misses out of the window.
        monitor.update(np.array([1, 1, 0, 0]), np.array([2, 1, 0, 0]))
        report = monitor.report()
        assert report.detection_rate == 1.0
        assert report.false_alarm_rate == 0.0
        assert monitor.seen == 8
        assert monitor.current_size == 4

    def test_empty_monitor_reports_none(self):
        assert RollingDetectionMonitor(normal_index=0).report() is None

    def test_throughput_monitor_aggregates(self):
        # Two back-to-back batches: ends at t=0.5 and t=1.0, each 0.5 long.
        monitor = ThroughputMonitor()
        monitor.update(100, 0.5, end_time=0.5)
        monitor.update(300, 0.5, end_time=1.0)
        assert monitor.total_records == 400
        assert monitor.total_batches == 2
        assert monitor.total_time == pytest.approx(1.0)
        assert monitor.busy_time == pytest.approx(1.0)
        assert monitor.busy_span == pytest.approx(1.0)
        assert monitor.throughput == pytest.approx(400.0)
        assert monitor.mean_latency == pytest.approx(0.5)
        snapshot = monitor.snapshot()
        assert snapshot["records"] == 400.0
        assert snapshot["busy_time_s"] == pytest.approx(1.0)
        assert snapshot["throughput_rps"] == pytest.approx(400.0)

    def test_throughput_overlapping_batches_use_the_wall_clock_span(self):
        """Regression: summed latencies understate concurrent throughput.

        Two workers each score a 1-second batch over the *same* wall-clock
        second.  Dividing by the 2 s latency sum would report half the real
        rate; the busy span (1 s) reports the truth.
        """
        monitor = ThroughputMonitor()
        monitor.update(100, 1.0, end_time=1.0)
        monitor.update(100, 1.0, end_time=1.0)
        assert monitor.total_time == pytest.approx(2.0)
        assert monitor.busy_time == pytest.approx(1.0)
        assert monitor.throughput == pytest.approx(200.0)

    def test_throughput_excludes_idle_gaps_between_batches(self):
        """A long-lived, sporadically loaded service must report serving
        capacity, not records-per-uptime."""
        monitor = ThroughputMonitor()
        monitor.update(1000, 1.0, end_time=1.0)
        monitor.update(1000, 1.0, end_time=3601.0)  # an hour of idle between
        assert monitor.busy_time == pytest.approx(2.0)
        assert monitor.busy_span == pytest.approx(3601.0)
        assert monitor.throughput == pytest.approx(1000.0)

    def test_throughput_degenerate_span_falls_back_to_summed_time(self):
        monitor = ThroughputMonitor()
        monitor.update(100, 0.0, end_time=1.0)  # zero-length span
        assert monitor.busy_span == 0.0
        assert monitor.throughput == 0.0
        monitor.update(100, 0.5, end_time=1.0)
        assert monitor.throughput == pytest.approx(400.0)


class TestDetectionService:
    def test_requires_fitted_detector(self):
        unfitted = PelicanDetector(NSLKDD_SCHEMA, num_blocks=1)
        with pytest.raises(RuntimeError, match="fitted"):
            DetectionService(unfitted)

    def test_process_matches_detector_predictions(self, detector, traffic):
        service = DetectionService(detector)
        result = service.process(traffic)
        np.testing.assert_array_equal(result.predictions, detector.predict(traffic))
        assert result.size == len(traffic)
        assert result.latency >= 0.0

    def test_fast_and_graph_service_agree(self, detector, traffic):
        fast = DetectionService(detector, fast=True).process(traffic)
        graph = DetectionService(detector, fast=False).process(traffic)
        np.testing.assert_array_equal(fast.class_indices, graph.class_indices)

    def test_submit_respects_micro_batching(self, detector, traffic):
        service = DetectionService(detector, max_batch_size=64, flush_interval=1e9)
        results = service.submit(traffic)  # 150 records -> two 64-record batches
        assert [r.size for r in results] == [64, 64]
        assert service.batcher.pending_count == 22
        (tail,) = service.flush()
        assert tail.size == 22
        assert service.throughput.total_records == len(traffic)

    def test_empty_submission_is_safe(self, detector, traffic):
        service = DetectionService(detector)
        assert service.submit(traffic.subset(range(0))) == []
        assert service.flush() == []

    def test_process_empty_batch_is_safe(self, detector, traffic):
        service = DetectionService(detector)
        result = service.process(traffic.subset(range(0)))
        assert result.size == 0
        assert result.predictions.shape == (0,)

    def test_monitor_tracks_rolling_quality(self, detector, traffic):
        service = DetectionService(detector, window=128)
        service.process(traffic)
        report = service.report()
        assert report.records == len(traffic)
        assert report.rolling is not None
        assert report.rolling.total == 128  # clipped to the window

    def test_run_stream_clears_prequeued_records_before_attribution(
        self, detector, traffic
    ):
        """Records queued before the stream belong to no phase; they must be
        flushed through instead of consuming the attribution FIFO."""
        service = DetectionService(
            detector, max_batch_size=1024, flush_interval=1e9, window=4096
        )
        service.submit(traffic)  # stays queued below every trigger
        stream = TrafficStream.flood_scenario(
            nslkdd_generator(), batch_size=48, seed=11
        )
        report = service.run_stream(stream)
        assert report.records == stream.total_records + len(traffic)
        assert sum(r.total for r in report.phase_reports.values()) == (
            stream.total_records
        )

    def test_unknown_categorical_values_are_counted_not_swallowed(
        self, detector, traffic
    ):
        """Vocabulary drift: a protocol the detector never trained on must be
        surfaced in the report, not silently zero-encoded."""
        service = DetectionService(detector)
        clean = service.process(traffic)
        assert all(
            count == 0 for count in service.report().unknown_categoricals.values()
        )
        drifted = traffic.subset(range(len(traffic)))
        column = NSLKDD_SCHEMA.categorical_names[0]
        drifted.categorical[column][:10] = "quic-v2"  # outside the vocabulary
        service.process(drifted)
        report = service.report()
        assert report.unknown_categoricals[column] == 10
        assert sum(report.unknown_categoricals.values()) == 10
        assert "unknown-categoricals=10" in str(report)
        # The drifted records still score (zero block, like training-time
        # unseen values): the record count keeps growing.
        assert report.records == clean.size + len(drifted)
