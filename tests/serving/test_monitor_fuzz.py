"""Seeded fuzz test for the ThroughputMonitor busy-time interval merge.

Under process- or thread-parallel scoring, batches commit in arbitrary
order with arbitrarily overlapping ``[end - latency, end]`` intervals.
The busy-time union must hold its invariants under *any* commit order:

* ``busy_time`` equals the exact measure of the interval union whenever
  the number of simultaneously pending disjoint intervals stays within
  the merge's bound (every realistic schedule);
* ``max(latency) <= busy_time <= busy_span`` and
  ``busy_time <= total_time`` — no double counting, no time invented
  outside the span, and never less than the single longest batch;
* commit order is irrelevant: shuffled commits of the same intervals
  produce the same busy time.

A regression case pins the bug this replaced: a batch committing fully
behind the high-water mark used to contribute *nothing* (an admitted
undercount that grows under out-of-order parallel commits); its uncovered
portion now counts.
"""

import numpy as np
import pytest

from repro.serving import ThroughputMonitor

N_SCHEDULES = 200


def _union_measure(intervals):
    """Exact measure of a union of [start, end] intervals (offline oracle)."""
    total = 0.0
    covered_until = None
    for start, end in sorted(intervals):
        if covered_until is None or start > covered_until:
            total += end - start
            covered_until = end
        elif end > covered_until:
            total += end - covered_until
            covered_until = end
    return total


def _random_intervals(rng, n):
    """n intervals with a mix of overlaps, nesting, gaps and duplicates."""
    starts = rng.uniform(0.0, 50.0, size=n)
    lengths = rng.uniform(0.0, 5.0, size=n)
    return [(float(s), float(s + d)) for s, d in zip(starts, lengths)]


class TestBusyTimeFuzz:
    def test_shuffled_overlapping_commits_match_the_exact_union(self):
        failures = []
        for schedule in range(N_SCHEDULES):
            rng = np.random.default_rng(schedule)
            n = int(rng.integers(1, ThroughputMonitor.MAX_PENDING_INTERVALS))
            intervals = _random_intervals(rng, n)
            order = rng.permutation(n)

            monitor = ThroughputMonitor()
            for index in order:
                start, end = intervals[index]
                monitor.update(1, end - start, end_time=end)

            exact = _union_measure(intervals)
            latencies = [end - start for start, end in intervals]
            busy = monitor.busy_time
            span = monitor.busy_span
            checks = [
                (abs(busy - exact) < 1e-9, f"busy {busy} != union {exact}"),
                (busy <= span + 1e-9, f"busy {busy} > span {span}"),
                (
                    busy <= monitor.total_time + 1e-9,
                    f"busy {busy} > summed latencies {monitor.total_time}",
                ),
                (
                    max(latencies) <= busy + 1e-9,
                    f"busy {busy} < longest batch {max(latencies)}",
                ),
            ]
            for ok, message in checks:
                if not ok:
                    failures.append(f"schedule {schedule}: {message}")
        assert not failures, "\n".join(failures[:10])

    def test_commit_order_is_irrelevant(self):
        rng = np.random.default_rng(7)
        intervals = _random_intervals(rng, 40)
        totals = set()
        for _ in range(5):
            order = rng.permutation(len(intervals))
            monitor = ThroughputMonitor()
            for index in order:
                start, end = intervals[index]
                monitor.update(1, end - start, end_time=end)
            totals.add(round(monitor.busy_time, 12))
        assert len(totals) == 1

    def test_straggler_behind_the_mark_still_counts(self):
        """Regression: [10, 20] then [0, 5] — the old high-water-mark merge
        dropped the second batch entirely (busy 10); its 5 uncovered
        seconds must count (busy 15)."""
        monitor = ThroughputMonitor()
        monitor.update(1, 10.0, end_time=20.0)
        monitor.update(1, 5.0, end_time=5.0)
        assert monitor.busy_time == pytest.approx(15.0)
        assert monitor.busy_span == pytest.approx(20.0)

    def test_straggler_inside_covered_time_adds_nothing(self):
        monitor = ThroughputMonitor()
        monitor.update(1, 10.0, end_time=20.0)
        monitor.update(1, 2.0, end_time=15.0)  # nested: fully covered
        assert monitor.busy_time == pytest.approx(10.0)

    def test_partial_overlap_counts_only_the_uncovered_portion(self):
        monitor = ThroughputMonitor()
        monitor.update(1, 4.0, end_time=10.0)   # [6, 10]
        monitor.update(1, 4.0, end_time=8.0)    # [4, 8]: 2 new seconds
        assert monitor.busy_time == pytest.approx(6.0)

    def test_bounded_memory_never_overcounts(self):
        """Far more reordered disjoint intervals than the pending bound:
        the frozen floor may undercount stragglers, but the total must stay
        a lower bound of the exact union and within the span."""
        cap = ThroughputMonitor.MAX_PENDING_INTERVALS
        n = cap * 4
        # Disjoint unit intervals [2k, 2k+1], committed in reverse order —
        # the worst case for a bounded pending set.
        intervals = [(2.0 * k, 2.0 * k + 1.0) for k in range(n)]
        monitor = ThroughputMonitor()
        for start, end in reversed(intervals):
            monitor.update(1, end - start, end_time=end)
        exact = _union_measure(intervals)
        assert monitor.busy_time <= exact + 1e-9
        assert monitor.busy_time <= monitor.busy_span + 1e-9
        # Reverse order is the bounded merge's worst case: once the floor
        # freezes, every later (earlier-in-time) interval is clipped away.
        # The undercount is bounded by the pending cap — at least the first
        # cap+1 intervals were counted in full before the first freeze.
        assert monitor.busy_time >= float(cap + 1) - 1e-9

    def test_pending_intervals_stay_bounded(self):
        cap = ThroughputMonitor.MAX_PENDING_INTERVALS
        monitor = ThroughputMonitor()
        for k in range(cap * 10):
            monitor.update(1, 0.5, end_time=2.0 * k + 1.0)
        assert len(monitor._pending_intervals) <= cap
