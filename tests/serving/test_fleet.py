"""Cross-dataset fleet serving: two corpora, dataset routing, one report."""

import numpy as np
import pytest

from repro.scenarios import build_fleet_service, fleet_scenario
from repro.serving import DetectionService


@pytest.fixture()
def fleet_stream():
    return fleet_scenario(batch_size=32, seed=0)


class TestBuildFleetService:
    def test_one_shard_per_detector_with_dataset_routing(self, fleet_detectors):
        fleet = build_fleet_service(fleet_detectors)
        assert fleet.names == ["nsl-kdd", "unsw-nb15"]
        assert fleet.router.policy == "dataset"
        assert fleet.router.assignment == {"nsl-kdd": 0, "unsw-nb15": 1}

    def test_mis_keyed_detector_is_rejected(self, detector):
        with pytest.raises(ValueError, match="fitted on schema"):
            build_fleet_service({"unsw-nb15": detector})
        with pytest.raises(ValueError, match="at least one detector"):
            build_fleet_service({})

    def test_service_kwargs_reach_the_shards(self, fleet_detectors):
        fleet = build_fleet_service(fleet_detectors, max_batch_size=32, window=64)
        assert all(shard.batcher.max_batch_size == 32 for shard in fleet.shards)
        assert all(shard.monitor.window == 64 for shard in fleet.shards)


class TestFleetServing:
    def test_records_route_to_their_corpus_shard(self, fleet_detectors, fleet_stream):
        fleet = build_fleet_service(
            fleet_detectors, max_batch_size=64, flush_interval=0.0, window=4096
        )
        report = fleet.run_stream(fleet_stream)
        per_corpus = {
            stream.schema.name: stream.total_records
            for stream in fleet_stream.streams
        }
        assert report.records == fleet_stream.total_records
        for name, shard_report in report.shard_reports.items():
            assert shard_report.records == per_corpus[name]

    def test_phase_reports_keep_the_corpus_prefix(self, fleet_detectors, fleet_stream):
        fleet = build_fleet_service(
            fleet_detectors, max_batch_size=64, flush_interval=0.0, window=4096
        )
        report = fleet.run_stream(fleet_stream)
        expected = {
            f"{stream.schema.name}:{phase.name}"
            for stream in fleet_stream.streams
            for phase in stream.phases
        }
        assert set(report.phase_reports) == expected
        phase_total = sum(r.total for r in report.phase_reports.values())
        assert phase_total == fleet_stream.total_records

    def test_merged_counts_equal_per_corpus_single_services(
        self, fleet_detectors, fleet_stream
    ):
        fleet = build_fleet_service(
            fleet_detectors, max_batch_size=64, flush_interval=0.0, window=4096
        )
        merged = fleet.run_stream(fleet_stream).rolling
        totals = np.zeros(4, dtype=np.int64)
        for stream in fleet_stream.streams:
            service = DetectionService(
                fleet_detectors[stream.schema.name],
                max_batch_size=64, flush_interval=0.0, window=4096,
            )
            rolling = service.run_stream(stream).rolling
            totals += np.array([rolling.tp, rolling.tn, rolling.fp, rolling.fn])
        assert (merged.tp, merged.tn, merged.fp, merged.fn) == tuple(totals)

    def test_worker_pools_do_not_change_the_counts(
        self, fleet_detectors, fleet_stream
    ):
        def run(num_workers):
            fleet = build_fleet_service(
                fleet_detectors, max_batch_size=64, flush_interval=0.0, window=4096
            )
            rolling = fleet.run_stream(fleet_stream, num_workers=num_workers).rolling
            return (rolling.tp, rolling.tn, rolling.fp, rolling.fn)

        assert run(2) == run(0)

    def test_unknown_corpus_fails_loudly(self, detector):
        fleet = build_fleet_service({"nsl-kdd": detector})
        stream = fleet_scenario(batch_size=16, seed=0)
        with pytest.raises(KeyError, match="unsw-nb15"):
            fleet.run_stream(stream)
