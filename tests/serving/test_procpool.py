"""Tests for the process-parallel execution model (ProcessWorkerPool).

The tier-1 acceptance bar, mirrored from the thread pool's:

* a stream served through child processes is **bit-equal** to the
  synchronous run — confusion counts, record/batch totals and the
  per-phase breakdown (tiny segments, spawn start method, so the smoke
  stays cheap and safe under the threaded test runner);
* a hot-swap re-ships the challenger's checkpoint to every child and the
  run's counts equal a drain-stop-restart deployment at the same boundary
  — including under a :class:`DriftSupervisor`;
* per-shard process pools behind :class:`ShardedDetectionService` merge to
  the same counts as the inline run.

Scaling claims live in the ``multicore``-marked test, skipped on
single-core hosts (the dev container), and in
``benchmarks/test_bench_serving_throughput.py``.
"""

import numpy as np
import pytest

from repro.data import nslkdd_generator
from repro.scenarios import flood_scenario
from repro.serving import (
    DetectionService,
    DriftPolicy,
    DriftSupervisor,
    ProcessWorkerPool,
    ShardedDetectionService,
)

pytestmark = pytest.mark.timeout(300)


def _service(detector, **overrides):
    kwargs = dict(max_batch_size=32, flush_interval=0.0, window=1 << 20)
    kwargs.update(overrides)
    return DetectionService(detector, **kwargs)


def _counts(report):
    rolling = report.rolling
    return (rolling.tp, rolling.tn, rolling.fp, rolling.fn)


def _serve_batches(sink, batches):
    results = []
    for stream_batch in batches:
        results.extend(sink.submit(stream_batch.records))
    results.extend(sink.flush())
    return results


def _tiny_stream(seed=3):
    return flood_scenario(
        nslkdd_generator(), batch_size=32, seed=seed,
        baseline_batches=3, burst_batches=2, drift_batches=2,
    )


@pytest.fixture(scope="module")
def challenger(detector):
    """A second fitted NSL-KDD detector (the swap target)."""
    from repro.data import load_nslkdd

    clone = detector.clone_architecture(seed=5)
    clone.fit(load_nslkdd(n_records=300, seed=21))
    return clone


class TestProcessPoolBitEquality:
    def test_stream_report_equals_the_synchronous_run(self, detector):
        stream = _tiny_stream()
        sync_report = _service(detector).run_stream(stream)
        pool_report = ProcessWorkerPool(
            _service(detector), num_workers=2
        ).run_stream(stream)

        assert _counts(pool_report) == _counts(sync_report)
        assert pool_report.records == sync_report.records
        assert pool_report.batches == sync_report.batches
        assert set(pool_report.phase_reports) == set(sync_report.phase_reports)
        for phase, sync_phase in sync_report.phase_reports.items():
            pool_phase = pool_report.phase_reports[phase]
            assert (
                sync_phase.tp, sync_phase.tn, sync_phase.fp, sync_phase.fn
            ) == (
                pool_phase.tp, pool_phase.tn, pool_phase.fp, pool_phase.fn
            ), f"{phase}: per-phase counts diverge"

    def test_submit_flush_results_commit_in_submission_order(self, detector):
        batches = list(_tiny_stream())
        sync_results = _serve_batches(_service(detector), batches)
        service = _service(detector)
        with ProcessWorkerPool(service, num_workers=2) as pool:
            pool_results = _serve_batches(pool, batches)

        assert [r.size for r in pool_results] == [r.size for r in sync_results]
        assert np.array_equal(
            np.concatenate([r.class_indices for r in pool_results]),
            np.concatenate([r.class_indices for r in sync_results]),
        )
        assert np.array_equal(
            np.concatenate([r.true_indices for r in pool_results]),
            np.concatenate([r.true_indices for r in sync_results]),
        )

    def test_unknown_categorical_counts_flow_back_to_the_parent(self, detector, traffic):
        """Children tally vocabulary drift; the parent's report must show
        it exactly as a synchronous run would."""
        drifted = traffic.subset(range(len(traffic)))
        drifted.categorical["service"] = np.array(
            ["no-such-service"] * len(drifted), dtype=object
        )
        sync_service = _service(detector)
        sync_service.process(drifted)
        service = _service(detector)
        with ProcessWorkerPool(service, num_workers=2) as pool:
            pool.submit(drifted)
            pool.flush()
        assert (
            service.report().unknown_categoricals
            == sync_service.report().unknown_categoricals
        )

    def test_refuses_submissions_when_not_running(self, detector, traffic):
        pool = ProcessWorkerPool(_service(detector))
        with pytest.raises(RuntimeError, match="not running"):
            pool.submit(traffic)

    def test_a_killed_child_surfaces_an_error_instead_of_hanging(self, detector):
        """Robustness bar: SIGTERM one child mid-run (the OOM-kill stand-in)
        and the pool must keep serving on the survivor, then raise the
        recorded death on the next flush — never deadlock.  This is the
        scenario that motivated per-child result queues: a child killed
        between a queue write and the lock release would wedge every other
        writer of a shared queue forever."""
        import time as time_module

        batches = list(_tiny_stream())
        service = _service(detector)
        pool = ProcessWorkerPool(service, num_workers=2)
        pool.start()
        try:
            pool.submit(batches[0].records)
            pool.submit(batches[1].records)
            pool.join()  # both children demonstrably serving
            pool._slots[0].process.terminate()
            pool._slots[0].process.join()
            time_module.sleep(0.3)  # let the liveness check diagnose it
            with pytest.raises(RuntimeError, match="exited unexpectedly"):
                for stream_batch in batches[2:]:
                    pool.submit(stream_batch.records)
                pool.flush()
        finally:
            try:
                pool.close()
            except RuntimeError:
                pass  # the recorded death may surface here again
        # The survivor kept scoring: everything either committed or was
        # written off explicitly — nothing is silently stuck in flight.
        assert pool._inflight == {}


class TestSharedMemoryTransport:
    """The zero-copy data plane: slot-ring traffic must be bit-equal to the
    queue transport (and therefore to sync), fall back inline gracefully,
    and never leak a segment — even when its child is killed."""

    def test_shm_stream_report_equals_the_synchronous_run(self, detector):
        stream = _tiny_stream()
        sync_report = _service(detector).run_stream(stream)
        pool = ProcessWorkerPool(_service(detector), num_workers=2, transport="shm")
        shm_report = pool.run_stream(stream)

        assert _counts(shm_report) == _counts(sync_report)
        assert shm_report.records == sync_report.records
        assert shm_report.batches == sync_report.batches
        for phase, sync_phase in sync_report.phase_reports.items():
            shm_phase = shm_report.phase_reports[phase]
            assert (
                sync_phase.tp, sync_phase.tn, sync_phase.fp, sync_phase.fn
            ) == (
                shm_phase.tp, shm_phase.tn, shm_phase.fp, shm_phase.fn
            ), f"{phase}: per-phase counts diverge"

    def test_batches_travel_in_slots_not_pickles(self, detector):
        """Batcher-sized batches must ride the slot ring whenever a slot is
        free; the pickled path is a fallback, not the steady state.  Drain
        between submissions so the ring never starves (a deeper backlog
        than the ring legitimately falls back inline — covered below)."""
        service = _service(detector)
        pool = ProcessWorkerPool(service, num_workers=2, transport="shm")
        with pool:
            for stream_batch in _tiny_stream():
                pool.submit(stream_batch.records)
                pool.join()
            pool.flush()
            counters = pool.transport_counters()
        assert counters["slot_batches"] > 0
        assert counters["inline_batches"] == 0

    def test_out_of_schema_categoricals_ride_the_exception_path(
        self, detector, traffic
    ):
        """Vocabulary-drift values cannot be vocabulary-coded; they cross on
        the control message and the drift report must still equal sync."""
        drifted = traffic.subset(range(len(traffic)))
        drifted.categorical["service"] = np.array(
            ["no-such-service"] * len(drifted), dtype=object
        )
        sync_service = _service(detector)
        sync_service.process(drifted)
        service = _service(detector)
        with ProcessWorkerPool(service, num_workers=2, transport="shm") as pool:
            pool.submit(drifted)
            pool.flush()
            counters = pool.transport_counters()
        assert counters["slot_batches"] > 0
        assert (
            service.report().unknown_categoricals
            == sync_service.report().unknown_categoricals
        )

    def test_oversized_batches_fall_back_inline_with_equal_counts(
        self, detector
    ):
        """A transport sized below the batcher's trigger forces the inline
        fallback on every batch — counts must not care."""
        from repro.serving import SharedMemoryTransport

        stream = _tiny_stream()
        sync_report = _service(detector).run_stream(stream)
        service = _service(detector)
        tiny_slots = SharedMemoryTransport(detector.schema, slot_records=8)
        pool = ProcessWorkerPool(service, num_workers=2, transport=tiny_slots)
        with pool:
            for stream_batch in stream:
                pool.submit(stream_batch.records)
            pool.flush()
            counters = pool.transport_counters()
        assert counters["inline_batches"] > 0
        report = service.report()
        assert _counts(report) == _counts(sync_report)
        assert report.records == sync_report.records

    def test_a_killed_child_does_not_leak_its_segment(self, detector):
        """The resource-tracker assertion: SIGKILL a child and its slot ring
        must be unlinked as soon as the death is diagnosed — attaching by
        name fails and the module registry no longer lists it."""
        import time as time_module
        from multiprocessing import shared_memory

        from repro.serving.transport import live_segments

        batches = list(_tiny_stream())
        service = _service(detector)
        pool = ProcessWorkerPool(service, num_workers=2, transport="shm")
        pool.start()
        try:
            pool.submit(batches[0].records)
            pool.submit(batches[1].records)
            pool.join()
            victim = pool._slots[0]
            segment_name = victim.channel.segment_name
            assert segment_name in live_segments()
            victim.process.kill()
            victim.process.join()
            deadline = time_module.monotonic() + 5.0
            while time_module.monotonic() < deadline:
                if victim.token in pool._failed_workers:
                    break
                time_module.sleep(0.05)
            assert victim.token in pool._failed_workers
            assert segment_name not in live_segments()
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=segment_name)
        finally:
            try:
                pool.close()
            except RuntimeError:
                pass  # the recorded death surfaces here
        assert live_segments() == []

    def test_resize_reclaims_retired_segments(self, detector):
        """Shrinking retires children through the graveyard; their slot
        rings must be reclaimed at the clean-exit diagnosis, not held until
        pool close."""
        import time as time_module

        from repro.serving.transport import live_segments

        service = _service(detector)
        with ProcessWorkerPool(service, num_workers=3, transport="shm") as pool:
            assert len(live_segments()) == 3
            retired_name = pool._slots[2].channel.segment_name
            pool.resize(1)
            deadline = time_module.monotonic() + 10.0
            while time_module.monotonic() < deadline:
                if retired_name not in live_segments():
                    break
                time_module.sleep(0.05)
            assert retired_name not in live_segments()
            # The survivor still serves on its own ring.
            for stream_batch in _tiny_stream():
                pool.submit(stream_batch.records)
            pool.flush()
        assert live_segments() == []

    def test_swap_reships_the_checkpoint_over_shm(self, detector, challenger):
        """Hot-swap semantics are transport-independent: the checkpoint
        still travels the control queue and the boundary still lands
        between batches."""
        batches = list(_tiny_stream())
        boundary = 3
        service = _service(detector)
        results = []
        with ProcessWorkerPool(service, num_workers=2, transport="shm") as pool:
            for index, stream_batch in enumerate(batches):
                if index == boundary:
                    results.extend(pool.flush())
                    assert pool.swap_detector(challenger) is detector
                results.extend(pool.submit(stream_batch.records))
            results.extend(pool.flush())
        baseline = _serve_batches(
            _service(detector), batches[:boundary]
        ) + _serve_batches(_service(challenger), batches[boundary:])
        assert np.array_equal(
            np.concatenate([r.predictions for r in results]),
            np.concatenate([r.predictions for r in baseline]),
        )

    def test_unknown_transport_is_rejected(self, detector):
        with pytest.raises(ValueError, match="transport"):
            ProcessWorkerPool(_service(detector), transport="carrier-pigeon")


class TestPoolStats:
    def test_stats_counts_shipped_and_buffered_not_counter_distance(
        self, detector
    ):
        """Regression for the inherited-stats blind spot: the base snapshot
        infers in_flight from sequence-counter distance, which under
        head-of-line blocking reads reorder-buffer-parked replies as busy
        children.  The override must report from the pool's own books."""
        from repro.serving import PoolStats, WorkerPool

        pool = ProcessWorkerPool(_service(detector), num_workers=2)
        # White-box head-of-line scenario: 6 batches dispatched, none
        # committed (sequence 0's reply is missing), children owe replies
        # for 2, and 4 replies are parked in the reorder buffer.
        pool._next_sequence = 6
        pool._next_commit = 0
        pool._inflight = {0: (None, 0, 0.0), 3: (None, 1, 0.0)}
        pool._out_of_order = {1: None, 2: None, 4: None, 5: None}

        base = WorkerPool.stats(pool)
        stats = pool.stats()

        assert base.in_flight == 6  # the blind spot: counter distance
        assert base.busy_fraction == 1.0
        assert isinstance(stats, PoolStats)
        assert stats.in_flight == 6  # 2 owed + 4 buffered — all accounted
        assert stats.busy_fraction == 1.0  # 2 owed across 2 workers

        # Now the pure head-of-line case: every reply arrived except the
        # committed prefix — the children are idle, and the override must
        # say so while the base formula still reads "saturated".
        pool._inflight = {}
        pool._out_of_order = {1: None, 2: None, 3: None, 4: None, 5: None}
        base = WorkerPool.stats(pool)
        stats = pool.stats()
        assert base.busy_fraction == 1.0
        assert stats.busy_fraction == 0.0
        assert stats.in_flight == 5  # buffered only; nothing owed


class TestProcessPoolHotSwap:
    BOUNDARY = 4

    def test_swap_reships_the_checkpoint_to_children(
        self, detector, challenger
    ):
        """After swap_detector, child predictions come from the challenger:
        the run equals a drain-stop-restart deployment at the boundary."""
        batches = list(_tiny_stream())
        service = _service(detector)
        results = []
        with ProcessWorkerPool(service, num_workers=2) as pool:
            for index, stream_batch in enumerate(batches):
                if index == self.BOUNDARY:
                    results.extend(pool.flush())
                    retired = pool.swap_detector(challenger)
                    assert retired is detector
                results.extend(pool.submit(stream_batch.records))
            results.extend(pool.flush())

        baseline = _serve_batches(
            _service(detector), batches[: self.BOUNDARY]
        ) + _serve_batches(_service(challenger), batches[self.BOUNDARY:])
        assert np.array_equal(
            np.concatenate([r.predictions for r in results]),
            np.concatenate([r.predictions for r in baseline]),
        )
        assert service.report().records == sum(len(b.records) for b in batches)

    def test_supervised_swap_equals_drain_stop_restart(
        self, detector, challenger
    ):
        """The acceptance bar: a DriftSupervisor over a process pool
        re-ships the checkpoint at promotion, and the run's confusion
        counts equal serving [0, boundary) on the old model and
        [boundary, end) on the new one."""
        from repro.metrics.ids_metrics import DetectionReport

        stream = _tiny_stream(seed=7)
        batches = list(stream)
        service = _service(detector)
        pool = ProcessWorkerPool(service, num_workers=2)
        supervisor = DriftSupervisor(
            pool,
            policy=DriftPolicy(far_ceiling=0.0, min_records=1),
            trainer=lambda records, serving: challenger,
            background=False,
        )

        def paced():
            # Drain between batches: the tiny stream would otherwise be
            # fully submitted before the spawned children commit anything,
            # and the policy would never see a rolling report.
            for stream_batch in batches:
                yield stream_batch
                if pool.running:
                    pool.join()

        outcome = supervisor.run_stream(paced())
        assert outcome.promoted, [str(e) for e in outcome.events]
        promoted = next(e for e in outcome.events if e.kind == "promoted")
        boundary = promoted.batch_index + 1  # the swap commits after that batch

        service_a = _service(detector)
        service_b = _service(challenger)
        _serve_batches(service_a, batches[:boundary])
        _serve_batches(service_b, batches[boundary:])
        merged = DetectionReport.merge(
            [service_a.monitor.report(), service_b.monitor.report()]
        )
        supervised = service.monitor.report()
        assert (supervised.tp, supervised.tn, supervised.fp, supervised.fn) == (
            merged.tp, merged.tn, merged.fp, merged.fn
        )
        assert outcome.report.records == sum(len(b.records) for b in batches)


class TestShardedProcessBackend:
    def test_replica_shards_on_process_pools_match_the_inline_run(
        self, detector
    ):
        stream = _tiny_stream()

        def fleet():
            return ShardedDetectionService.replicated(
                detector, 2, max_batch_size=32, flush_interval=0.0,
                window=1 << 20,
            )

        inline = fleet().run_stream(stream)
        pooled = fleet().run_stream(
            stream, num_workers=1, worker_backend="process"
        )
        assert _counts(pooled) == _counts(inline)
        assert pooled.records == inline.records

    def test_unknown_backend_is_rejected(self, detector):
        fleet = ShardedDetectionService.replicated(
            detector, 2, max_batch_size=32, flush_interval=0.0
        )
        with pytest.raises(ValueError, match="worker backend"):
            fleet.run_stream(iter(()), num_workers=1, worker_backend="mpi")


@pytest.mark.multicore(2)
def test_process_pool_scales_past_the_gil(detector):
    """Only meaningful with real cores (skipped on single-core hosts):
    two checkpoint-rehydrated children must beat the synchronous path on
    a serving workload the GIL caps for the thread pool.  The margin is
    deliberately loose — this is a does-parallelism-exist gate, not the
    benchmark (see BENCH_serving.json for the curve)."""
    stream = flood_scenario(
        nslkdd_generator(), batch_size=64, seed=0,
        baseline_batches=30, burst_batches=20, drift_batches=20,
    )
    sync_report = _service(detector, max_batch_size=64).run_stream(stream)
    pool_report = ProcessWorkerPool(
        _service(detector, max_batch_size=64), num_workers=2
    ).run_stream(stream)
    assert _counts(pool_report) == _counts(sync_report)
    assert pool_report.throughput >= 1.1 * sync_report.throughput, (
        f"2-process pool reached {pool_report.throughput:,.0f} rec/s vs "
        f"{sync_report.throughput:,.0f} synchronous on a multi-core host"
    )
