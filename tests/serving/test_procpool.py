"""Tests for the process-parallel execution model (ProcessWorkerPool).

The tier-1 acceptance bar, mirrored from the thread pool's:

* a stream served through child processes is **bit-equal** to the
  synchronous run — confusion counts, record/batch totals and the
  per-phase breakdown (tiny segments, spawn start method, so the smoke
  stays cheap and safe under the threaded test runner);
* a hot-swap re-ships the challenger's checkpoint to every child and the
  run's counts equal a drain-stop-restart deployment at the same boundary
  — including under a :class:`DriftSupervisor`;
* per-shard process pools behind :class:`ShardedDetectionService` merge to
  the same counts as the inline run.

Scaling claims live in the ``multicore``-marked test, skipped on
single-core hosts (the dev container), and in
``benchmarks/test_bench_serving_throughput.py``.
"""

import numpy as np
import pytest

from repro.data import nslkdd_generator
from repro.scenarios import flood_scenario
from repro.serving import (
    DetectionService,
    DriftPolicy,
    DriftSupervisor,
    ProcessWorkerPool,
    ShardedDetectionService,
)

pytestmark = pytest.mark.timeout(300)


def _service(detector, **overrides):
    kwargs = dict(max_batch_size=32, flush_interval=0.0, window=1 << 20)
    kwargs.update(overrides)
    return DetectionService(detector, **kwargs)


def _counts(report):
    rolling = report.rolling
    return (rolling.tp, rolling.tn, rolling.fp, rolling.fn)


def _serve_batches(sink, batches):
    results = []
    for stream_batch in batches:
        results.extend(sink.submit(stream_batch.records))
    results.extend(sink.flush())
    return results


def _tiny_stream(seed=3):
    return flood_scenario(
        nslkdd_generator(), batch_size=32, seed=seed,
        baseline_batches=3, burst_batches=2, drift_batches=2,
    )


@pytest.fixture(scope="module")
def challenger(detector):
    """A second fitted NSL-KDD detector (the swap target)."""
    from repro.data import load_nslkdd

    clone = detector.clone_architecture(seed=5)
    clone.fit(load_nslkdd(n_records=300, seed=21))
    return clone


class TestProcessPoolBitEquality:
    def test_stream_report_equals_the_synchronous_run(self, detector):
        stream = _tiny_stream()
        sync_report = _service(detector).run_stream(stream)
        pool_report = ProcessWorkerPool(
            _service(detector), num_workers=2
        ).run_stream(stream)

        assert _counts(pool_report) == _counts(sync_report)
        assert pool_report.records == sync_report.records
        assert pool_report.batches == sync_report.batches
        assert set(pool_report.phase_reports) == set(sync_report.phase_reports)
        for phase, sync_phase in sync_report.phase_reports.items():
            pool_phase = pool_report.phase_reports[phase]
            assert (
                sync_phase.tp, sync_phase.tn, sync_phase.fp, sync_phase.fn
            ) == (
                pool_phase.tp, pool_phase.tn, pool_phase.fp, pool_phase.fn
            ), f"{phase}: per-phase counts diverge"

    def test_submit_flush_results_commit_in_submission_order(self, detector):
        batches = list(_tiny_stream())
        sync_results = _serve_batches(_service(detector), batches)
        service = _service(detector)
        with ProcessWorkerPool(service, num_workers=2) as pool:
            pool_results = _serve_batches(pool, batches)

        assert [r.size for r in pool_results] == [r.size for r in sync_results]
        assert np.array_equal(
            np.concatenate([r.class_indices for r in pool_results]),
            np.concatenate([r.class_indices for r in sync_results]),
        )
        assert np.array_equal(
            np.concatenate([r.true_indices for r in pool_results]),
            np.concatenate([r.true_indices for r in sync_results]),
        )

    def test_unknown_categorical_counts_flow_back_to_the_parent(self, detector, traffic):
        """Children tally vocabulary drift; the parent's report must show
        it exactly as a synchronous run would."""
        drifted = traffic.subset(range(len(traffic)))
        drifted.categorical["service"] = np.array(
            ["no-such-service"] * len(drifted), dtype=object
        )
        sync_service = _service(detector)
        sync_service.process(drifted)
        service = _service(detector)
        with ProcessWorkerPool(service, num_workers=2) as pool:
            pool.submit(drifted)
            pool.flush()
        assert (
            service.report().unknown_categoricals
            == sync_service.report().unknown_categoricals
        )

    def test_refuses_submissions_when_not_running(self, detector, traffic):
        pool = ProcessWorkerPool(_service(detector))
        with pytest.raises(RuntimeError, match="not running"):
            pool.submit(traffic)

    def test_a_killed_child_surfaces_an_error_instead_of_hanging(self, detector):
        """Robustness bar: SIGTERM one child mid-run (the OOM-kill stand-in)
        and the pool must keep serving on the survivor, then raise the
        recorded death on the next flush — never deadlock.  This is the
        scenario that motivated per-child result queues: a child killed
        between a queue write and the lock release would wedge every other
        writer of a shared queue forever."""
        import time as time_module

        batches = list(_tiny_stream())
        service = _service(detector)
        pool = ProcessWorkerPool(service, num_workers=2)
        pool.start()
        try:
            pool.submit(batches[0].records)
            pool.submit(batches[1].records)
            pool.join()  # both children demonstrably serving
            pool._slots[0].process.terminate()
            pool._slots[0].process.join()
            time_module.sleep(0.3)  # let the liveness check diagnose it
            with pytest.raises(RuntimeError, match="exited unexpectedly"):
                for stream_batch in batches[2:]:
                    pool.submit(stream_batch.records)
                pool.flush()
        finally:
            try:
                pool.close()
            except RuntimeError:
                pass  # the recorded death may surface here again
        # The survivor kept scoring: everything either committed or was
        # written off explicitly — nothing is silently stuck in flight.
        assert pool._inflight == {}


class TestProcessPoolHotSwap:
    BOUNDARY = 4

    def test_swap_reships_the_checkpoint_to_children(
        self, detector, challenger
    ):
        """After swap_detector, child predictions come from the challenger:
        the run equals a drain-stop-restart deployment at the boundary."""
        batches = list(_tiny_stream())
        service = _service(detector)
        results = []
        with ProcessWorkerPool(service, num_workers=2) as pool:
            for index, stream_batch in enumerate(batches):
                if index == self.BOUNDARY:
                    results.extend(pool.flush())
                    retired = pool.swap_detector(challenger)
                    assert retired is detector
                results.extend(pool.submit(stream_batch.records))
            results.extend(pool.flush())

        baseline = _serve_batches(
            _service(detector), batches[: self.BOUNDARY]
        ) + _serve_batches(_service(challenger), batches[self.BOUNDARY:])
        assert np.array_equal(
            np.concatenate([r.predictions for r in results]),
            np.concatenate([r.predictions for r in baseline]),
        )
        assert service.report().records == sum(len(b.records) for b in batches)

    def test_supervised_swap_equals_drain_stop_restart(
        self, detector, challenger
    ):
        """The acceptance bar: a DriftSupervisor over a process pool
        re-ships the checkpoint at promotion, and the run's confusion
        counts equal serving [0, boundary) on the old model and
        [boundary, end) on the new one."""
        from repro.metrics.ids_metrics import DetectionReport

        stream = _tiny_stream(seed=7)
        batches = list(stream)
        service = _service(detector)
        pool = ProcessWorkerPool(service, num_workers=2)
        supervisor = DriftSupervisor(
            pool,
            policy=DriftPolicy(far_ceiling=0.0, min_records=1),
            trainer=lambda records, serving: challenger,
            background=False,
        )

        def paced():
            # Drain between batches: the tiny stream would otherwise be
            # fully submitted before the spawned children commit anything,
            # and the policy would never see a rolling report.
            for stream_batch in batches:
                yield stream_batch
                if pool.running:
                    pool.join()

        outcome = supervisor.run_stream(paced())
        assert outcome.promoted, [str(e) for e in outcome.events]
        promoted = next(e for e in outcome.events if e.kind == "promoted")
        boundary = promoted.batch_index + 1  # the swap commits after that batch

        service_a = _service(detector)
        service_b = _service(challenger)
        _serve_batches(service_a, batches[:boundary])
        _serve_batches(service_b, batches[boundary:])
        merged = DetectionReport.merge(
            [service_a.monitor.report(), service_b.monitor.report()]
        )
        supervised = service.monitor.report()
        assert (supervised.tp, supervised.tn, supervised.fp, supervised.fn) == (
            merged.tp, merged.tn, merged.fp, merged.fn
        )
        assert outcome.report.records == sum(len(b.records) for b in batches)


class TestShardedProcessBackend:
    def test_replica_shards_on_process_pools_match_the_inline_run(
        self, detector
    ):
        stream = _tiny_stream()

        def fleet():
            return ShardedDetectionService.replicated(
                detector, 2, max_batch_size=32, flush_interval=0.0,
                window=1 << 20,
            )

        inline = fleet().run_stream(stream)
        pooled = fleet().run_stream(
            stream, num_workers=1, worker_backend="process"
        )
        assert _counts(pooled) == _counts(inline)
        assert pooled.records == inline.records

    def test_unknown_backend_is_rejected(self, detector):
        fleet = ShardedDetectionService.replicated(
            detector, 2, max_batch_size=32, flush_interval=0.0
        )
        with pytest.raises(ValueError, match="worker backend"):
            fleet.run_stream(iter(()), num_workers=1, worker_backend="mpi")


@pytest.mark.multicore(2)
def test_process_pool_scales_past_the_gil(detector):
    """Only meaningful with real cores (skipped on single-core hosts):
    two checkpoint-rehydrated children must beat the synchronous path on
    a serving workload the GIL caps for the thread pool.  The margin is
    deliberately loose — this is a does-parallelism-exist gate, not the
    benchmark (see BENCH_serving.json for the curve)."""
    stream = flood_scenario(
        nslkdd_generator(), batch_size=64, seed=0,
        baseline_batches=30, burst_batches=20, drift_batches=20,
    )
    sync_report = _service(detector, max_batch_size=64).run_stream(stream)
    pool_report = ProcessWorkerPool(
        _service(detector, max_batch_size=64), num_workers=2
    ).run_stream(stream)
    assert _counts(pool_report) == _counts(sync_report)
    assert pool_report.throughput >= 1.1 * sync_report.throughput, (
        f"2-process pool reached {pool_report.throughput:,.0f} rec/s vs "
        f"{sync_report.throughput:,.0f} synchronous on a multi-core host"
    )
