"""Tests for the worker-pool execution model.

The contract under test: scoring fans out to threads, but monitor updates
and phase attribution commit in submission order, so every report matches
the synchronous run record for record.
"""

import threading
import time

import numpy as np
import pytest

from repro.data import TrafficStream, nslkdd_generator
from repro.serving import DetectionService, WorkerPool


def make_stream(seed=11, batch_size=48):
    return TrafficStream.flood_scenario(nslkdd_generator(), batch_size=batch_size, seed=seed)


class TestWorkerPoolApi:
    def test_invalid_configuration_raises(self, detector):
        service = DetectionService(detector)
        with pytest.raises(ValueError, match="num_workers"):
            WorkerPool(service, num_workers=0)
        with pytest.raises(ValueError, match="timer_interval"):
            WorkerPool(service, timer_interval=-1.0)

    def test_dispatch_requires_started_pool(self, detector, traffic):
        service = DetectionService(detector, max_batch_size=32)
        pool = WorkerPool(service, num_workers=2)
        with pytest.raises(RuntimeError, match="not running"):
            pool.submit(traffic)  # 150 records trip the size trigger
        # The refusal must come before the batcher is drained — otherwise
        # the due batches would be lost instead of scored after start().
        assert service.batcher.pending_count == 0
        assert service.throughput.total_records == 0
        with pytest.raises(RuntimeError, match="not running"):
            pool.flush()
        with pytest.raises(RuntimeError, match="not running"):
            pool.poll()

    def test_results_commit_in_submission_order(self, detector, traffic):
        service = DetectionService(
            detector, max_batch_size=64, flush_interval=1e9
        )
        with WorkerPool(service, num_workers=4, timer_interval=0) as pool:
            results = pool.submit(traffic)  # two 64-record batches dispatched
            results += pool.flush()         # tail of 22 + barrier
        assert [r.size for r in results] == [64, 64, 22]
        served = np.concatenate([r.predictions for r in results])
        offline = detector.predict(traffic)
        np.testing.assert_array_equal(served, offline)
        assert service.throughput.total_records == len(traffic)

    def test_empty_submission_is_safe(self, detector, traffic):
        service = DetectionService(detector)
        with WorkerPool(service, num_workers=2, timer_interval=0) as pool:
            assert pool.submit(traffic.subset(range(0))) == []
            assert pool.flush() == []

    def test_scoring_errors_surface_on_flush(self, detector, traffic):
        service = DetectionService(detector, max_batch_size=32)

        def explode(records):
            raise RuntimeError("scoring blew up")

        service.score = explode
        with pytest.raises(RuntimeError, match="scoring blew up"):
            with WorkerPool(service, num_workers=2, timer_interval=0) as pool:
                pool.submit(traffic)
                pool.flush()

    def test_join_times_out_when_work_is_outstanding(self, detector, traffic):
        service = DetectionService(detector, max_batch_size=32)
        release = threading.Event()
        original = service.score

        def blocked(records):
            release.wait(5.0)
            return original(records)

        service.score = blocked
        with WorkerPool(service, num_workers=1, timer_interval=0) as pool:
            pool.submit(traffic.subset(range(40)))
            with pytest.raises(TimeoutError, match="outstanding"):
                pool.join(timeout=0.05)
            release.set()
            pool.join(timeout=5.0)


class TestWorkerPoolStream:
    @pytest.mark.parametrize("num_workers", [1, 4])
    def test_report_matches_synchronous_run(self, detector, num_workers):
        """The acceptance contract: identical quality reports, any worker count."""
        sync_service = DetectionService(
            detector, max_batch_size=96, flush_interval=0.0, window=512
        )
        sync_report = sync_service.run_stream(make_stream())

        pooled_service = DetectionService(
            detector, max_batch_size=96, flush_interval=0.0, window=512
        )
        pool = WorkerPool(pooled_service, num_workers=num_workers)
        pooled_report = pool.run_stream(make_stream())
        assert not pool.running  # run_stream owns the lifecycle here

        assert pooled_report.records == sync_report.records
        assert pooled_report.batches == sync_report.batches
        assert pooled_report.rolling.as_dict() == sync_report.rolling.as_dict()
        assert set(pooled_report.phase_reports) == set(sync_report.phase_reports)
        for phase, expected in sync_report.phase_reports.items():
            assert pooled_report.phase_reports[phase].as_dict() == expected.as_dict()

    def test_run_stream_on_running_pool_drains_prior_work_first(
        self, detector, traffic
    ):
        """A tail queued before run_stream must not consume phase records."""
        service = DetectionService(
            detector, max_batch_size=1024, flush_interval=1e9, window=4096
        )
        stream = make_stream()
        with WorkerPool(service, num_workers=2, timer_interval=0) as pool:
            pool.submit(traffic.subset(range(10)))  # stays queued (no trigger)
            report = pool.run_stream(stream)
            # The pre-stream tail was scored outside the attribution FIFO
            # and stays collectable; the phase breakdown covers exactly the
            # stream's records.
            leftover = pool.collect()
        assert [r.size for r in leftover] == [10]
        assert report.records == stream.total_records + 10
        assert sum(r.total for r in report.phase_reports.values()) == (
            stream.total_records
        )

    def test_submit_is_rejected_while_a_stream_is_running(self, detector, traffic):
        """External submissions mid-stream would corrupt phase attribution,
        so run_stream owns the pool until it returns."""
        service = DetectionService(detector, max_batch_size=96, flush_interval=0.0)
        first_served = threading.Event()
        resume = threading.Event()

        def gated_stream():
            batches = list(make_stream())
            yield batches[0]
            first_served.set()
            assert resume.wait(5.0)
            yield from batches[1:]

        with WorkerPool(service, num_workers=2) as pool:
            runner = threading.Thread(target=pool.run_stream, args=(gated_stream(),))
            runner.start()
            assert first_served.wait(5.0)
            with pytest.raises(RuntimeError, match="serving a stream"):
                pool.submit(traffic)
            resume.set()
            runner.join(10.0)
            assert not runner.is_alive()
            # Ownership is released once the stream completed.
            pool.submit(traffic.subset(range(5)))
            pool.flush()

    def test_run_stream_keeps_feeding_a_standing_result_callback(self, detector):
        service = DetectionService(
            detector, max_batch_size=96, flush_interval=0.0
        )
        delivered = []
        stream = make_stream()
        pool = WorkerPool(service, num_workers=2, result_callback=delivered.append)
        pool.run_stream(stream)
        assert sum(result.size for result in delivered) == stream.total_records

    @pytest.mark.slow
    def test_age_trigger_fires_on_the_timer(self, detector, traffic):
        """A partial batch must be scored without any further service calls.

        Real-time test (the flush interval has to actually elapse), so it
        runs under --runslow only.
        """
        service = DetectionService(
            detector, max_batch_size=1024, flush_interval=0.02
        )
        scored = threading.Event()
        with WorkerPool(
            service,
            num_workers=2,
            result_callback=lambda result: scored.set(),
        ) as pool:
            pool.submit(traffic.subset(range(10)))  # far below the size trigger
            assert scored.wait(timeout=5.0), "timer never fired the age trigger"
        report = service.report()
        assert report.records == 10


class TestThreadSafetyUnderLoad:
    def test_concurrent_submitters_lose_no_records(self, detector, traffic):
        """Several threads hammering submit() while the timer drains partials:
        every record must be scored exactly once."""
        service = DetectionService(
            detector, max_batch_size=32, flush_interval=0.0
        )
        chunks = [traffic.subset(range(i, len(traffic), 5)) for i in range(5)]
        with WorkerPool(service, num_workers=4, timer_interval=0.001) as pool:
            threads = [
                threading.Thread(target=pool.submit, args=(chunk,))
                for chunk in chunks
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            pool.flush()
        assert service.throughput.total_records == len(traffic)
        assert service.monitor.seen == len(traffic)
